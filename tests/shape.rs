//! Shape-regression tests: the paper's *qualitative* evaluation claims,
//! locked in as assertions. All inputs are deterministic (fixed seeds,
//! fixed budgets), so these are stable regression tests, not flaky
//! statistics.

use icb::core::search::{Search, SearchConfig, Strategy};
use icb::statevm::{reachable_states, ExplicitConfig, ExplicitIcb};
use icb::workloads::wsq::{wsq_model, WsqVariant};

/// Figure 2's ordering: at a fixed execution budget on the
/// work-stealing queue, icb > random ≫ dfs ≈ db:40 > db:20 in distinct
/// states covered.
#[test]
fn figure2_strategy_ordering_holds() {
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let budget = 5_000;
    let config = SearchConfig::with_max_executions(budget);
    let run = |strategy: Strategy| {
        Search::over(&model)
            .strategy(strategy)
            .config(config.clone())
            .run()
            .unwrap()
    };
    let icb = run(Strategy::Icb);
    let random = run(Strategy::Random { seed: 0x1cb });
    let dfs = run(Strategy::Dfs);
    let db20 = run(Strategy::DepthBounded(20));

    assert!(
        icb.distinct_states > random.distinct_states,
        "icb {} !> random {}",
        icb.distinct_states,
        random.distinct_states
    );
    assert!(
        random.distinct_states > 4 * dfs.distinct_states,
        "random {} !≫ dfs {}",
        random.distinct_states,
        dfs.distinct_states
    );
    // dfs and db:20 cluster together far below the others (their
    // pairwise order flips with the budget, as in the paper's tangle of
    // bottom curves).
    let dfs_family_best = dfs.distinct_states.max(db20.distinct_states);
    assert!(
        random.distinct_states > 4 * dfs_family_best,
        "random {} !≫ best dfs-family {}",
        random.distinct_states,
        dfs_family_best
    );
}

/// Figure 1's saturation: ≥ 90 % of the WSQ state space is covered by a
/// small preemption bound, and 100 % before the maximum preemption count
/// observed in the space.
#[test]
fn figure1_small_bounds_cover_most_states() {
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let total = reachable_states(&model, 50_000_000);
    let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
    assert!(report.completed);
    assert_eq!(report.distinct_states, total);

    let coverage_at = |bound: usize| {
        report
            .bound_history
            .iter()
            .find(|b| b.bound == bound)
            .map_or(total, |b| b.cumulative_states)
    };
    assert!(
        coverage_at(4) as f64 >= 0.90 * total as f64,
        "bound 4 covers {} of {total}",
        coverage_at(4)
    );
    // Full coverage strictly before the deepest bound the queue-based
    // search had to visit would be reached by naive preemption counts
    // (the paper: covered by 13 while 35-preemption executions exist).
    let full_at = report
        .bound_history
        .iter()
        .find(|b| b.cumulative_states == total)
        .expect("reaches full coverage")
        .bound;
    assert!(full_at <= 8, "full coverage only at bound {full_at}");
}

/// Section 2's headline: per-bound execution counts grow polynomially
/// (each bound multiplies work by a bounded factor), while the total
/// schedule count is astronomically larger than what ICB needs for full
/// state coverage.
#[test]
fn growth_per_bound_is_tame() {
    let model = wsq_model(WsqVariant::Correct, 2, 1);
    let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
    assert!(report.completed);
    let mut prev = 0usize;
    for b in &report.bound_history {
        if prev > 100 {
            // Work per bound grows by a modest factor, not explosively.
            assert!(
                b.work_items < prev * 12,
                "bound {}: {} work items after {}",
                b.bound,
                b.work_items,
                prev
            );
        }
        prev = b.work_items;
    }
}

/// The headline bug-finding claim: every seeded bug in the suite is
/// reachable within a context bound of 2 — and bound-1 search alone
/// (cheap!) already finds more than half of them.
#[test]
fn small_bounds_find_most_bugs() {
    use icb::workloads::registry::all_benchmarks;
    let mut found_at_or_below_1 = 0;
    let mut total = 0;
    for bench in all_benchmarks() {
        for bug in &bench.bugs {
            assert!(bug.expected_bound <= 2, "{}: bound > 2", bug.name);
            if bug.expected_faults > 0 {
                // The fault-injection extension is outside the paper's
                // Table 2 tally (its bugs need no preemptions at all).
                continue;
            }
            total += 1;
            if bug.expected_bound <= 1 {
                found_at_or_below_1 += 1;
            }
        }
    }
    assert_eq!(total, 16);
    assert!(
        found_at_or_below_1 * 2 > total,
        "only {found_at_or_below_1}/{total} within bound 1"
    );
}
