//! Cross-validation of the two checkers: the explicit-state searcher
//! (ZING analog, state caching) and the stateless searches (CHESS
//! analog, replay) must agree on state spaces and minimal bug bounds
//! when run over the same VM models.

use icb::core::search::{Search, SearchConfig, Strategy};
use icb::statevm::{reachable_states, ExplicitConfig, ExplicitIcb, Model};
use icb::workloads::ape::ape_model;
use icb::workloads::bluetooth::{bluetooth_model, BluetoothVariant};
use icb::workloads::dryad::dryad_model;
use icb::workloads::filesystem::{filesystem_model, FsParams};
use icb::workloads::txnmgr::{txnmgr_model, TxnVariant};
use icb::workloads::wsq::{wsq_model, WsqVariant};

/// Models small enough to exhaust *statelessly* (no state caching) in
/// a debug-profile test run. The work-stealing queue is excluded: its
/// schedule tree has ~1.4M executions, which only the cached explicit
/// checker should chew through here.
fn clean_models_stateless() -> Vec<(&'static str, Model)> {
    vec![
        ("bluetooth", bluetooth_model(BluetoothVariant::Fixed, 2)),
        (
            "filesystem",
            filesystem_model(FsParams {
                threads: 3,
                inodes: 2,
                blocks: 2,
            }),
        ),
        ("txnmgr", txnmgr_model(TxnVariant::Correct)),
    ]
}

fn clean_models() -> Vec<(&'static str, Model)> {
    vec![
        ("bluetooth", bluetooth_model(BluetoothVariant::Fixed, 2)),
        (
            "filesystem",
            filesystem_model(FsParams {
                threads: 3,
                inodes: 2,
                blocks: 2,
            }),
        ),
        ("txnmgr", txnmgr_model(TxnVariant::Correct)),
        ("wsq", wsq_model(WsqVariant::Correct, 2, 1)),
        ("ape", ape_model(2)),
        ("dryad", dryad_model(2, 2)),
    ]
}

#[test]
fn explicit_and_stateless_state_counts_agree() {
    for (name, model) in clean_models_stateless() {
        let explicit = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        let stateless = Search::over(&model)
            .config(SearchConfig {
                max_executions: None,
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert!(explicit.completed, "{name}: explicit did not complete");
        assert!(stateless.completed, "{name}: stateless did not complete");
        assert_eq!(
            explicit.distinct_states, stateless.distinct_states,
            "{name}: checkers disagree on the state count"
        );
    }
}

#[test]
fn reachability_is_the_common_denominator() {
    for (name, model) in clean_models() {
        let total = reachable_states(&model, 10_000_000);
        let explicit = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        assert_eq!(
            explicit.distinct_states, total,
            "{name}: explicit search must cover exactly the reachable set"
        );
    }
}

#[test]
fn stateless_dfs_agrees_with_stateless_icb() {
    for (name, model) in clean_models_stateless() {
        let icb = Search::over(&model)
            .config(SearchConfig {
                max_executions: None,
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        let dfs = Search::over(&model)
            .strategy(Strategy::Dfs)
            .config(SearchConfig {
                max_executions: None,
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert!(icb.completed && dfs.completed, "{name} did not complete");
        assert_eq!(icb.executions, dfs.executions, "{name}: execution counts");
        assert_eq!(icb.distinct_states, dfs.distinct_states, "{name}: states");
        assert_eq!(icb.buggy_executions, 0, "{name} is a clean model");
        assert_eq!(dfs.buggy_executions, 0, "{name} is a clean model");
    }
}

#[test]
fn minimal_bug_bounds_agree_across_checkers() {
    let buggy: Vec<(&str, Model)> = vec![
        ("bluetooth", bluetooth_model(BluetoothVariant::Buggy, 2)),
        ("txnmgr-toctou", txnmgr_model(TxnVariant::CommitToctou)),
        ("txnmgr-torn", txnmgr_model(TxnVariant::TornFlush)),
        ("wsq-steal", wsq_model(WsqVariant::NonAtomicSteal, 3, 2)),
    ];
    for (name, model) in buggy {
        let explicit = ExplicitIcb::new(ExplicitConfig {
            stop_on_first_bug: true,
            ..ExplicitConfig::default()
        })
        .run(&model);
        let explicit_bound = explicit.bugs.first().map(|b| b.bound);
        let stateless_bound = Search::over(&model)
            .config(SearchConfig {
                max_executions: Some(2_000_000),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
            .first_bug()
            .map(|b| b.preemptions);
        assert_eq!(
            explicit_bound, stateless_bound,
            "{name}: checkers disagree on the minimal bound"
        );
        assert!(explicit_bound.is_some(), "{name}: bug not found");
    }
}

#[test]
fn explicit_witness_replays_in_the_stateless_checker() {
    let model = txnmgr_model(TxnVariant::UnlockedScan);
    let explicit = ExplicitIcb::new(ExplicitConfig {
        stop_on_first_bug: true,
        ..ExplicitConfig::default()
    })
    .run(&model);
    let bug = explicit.bugs.first().expect("bug found");
    let schedule: icb::core::Schedule = bug.schedule.iter().copied().collect();
    let mut replay = icb::core::ReplayScheduler::new(schedule);
    let result =
        icb::core::ControlledProgram::execute(&model, &mut replay, &mut icb::core::NullSink);
    match result.outcome {
        icb::core::ExecutionOutcome::AssertionFailure { message, .. } => {
            assert_eq!(message, bug.message);
        }
        other => panic!("expected the same assertion failure, got {other}"),
    }
}
