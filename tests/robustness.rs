//! Robustness: no false positives on the correct benchmark variants
//! under any strategy, and honest failures on contract violations.

use std::sync::atomic::{AtomicUsize, Ordering};

use icb::core::search::{Search, SearchConfig, Strategy};
use icb::core::{
    ControlledProgram, ExecStats, ExecutionOutcome, ExecutionResult, SchedulePoint, Scheduler,
    StateSink, Tid, Trace, TraceEntry,
};
use icb::workloads::registry::all_benchmarks;

#[test]
fn no_strategy_reports_false_positives_on_correct_variants() {
    for bench in all_benchmarks() {
        let program = (bench.correct)();
        let budget = 400;
        let random = Search::over(&program)
            .strategy(Strategy::Random { seed: 99 })
            .config(SearchConfig::with_max_executions(budget))
            .run()
            .unwrap();
        assert!(
            random.bugs.is_empty(),
            "{}: random search false positive: {:?}",
            bench.name,
            random.bugs.first().map(|b| &b.outcome)
        );
        let icb = Search::over(&program)
            .config(SearchConfig::with_max_executions(budget))
            .run()
            .unwrap();
        assert!(
            icb.bugs.is_empty(),
            "{}: icb false positive: {:?}",
            bench.name,
            icb.bugs.first().map(|b| &b.outcome)
        );
        let bf = Search::over(&program)
            .strategy(Strategy::BestFirst)
            .config(SearchConfig::with_max_executions(budget))
            .run()
            .unwrap();
        assert!(
            bf.bugs.is_empty(),
            "{}: best-first false positive: {:?}",
            bench.name,
            bf.bugs.first().map(|b| &b.outcome)
        );
    }
}

#[test]
fn every_seeded_bug_is_found_by_icb_at_its_expected_bound() {
    for bench in all_benchmarks() {
        for bug in &bench.bugs {
            let program = (bug.build)();
            let found = Search::over(&program)
                .config(SearchConfig {
                    max_executions: Some(500_000),
                    stop_on_first_bug: true,
                    fault_bound: bug.expected_faults,
                    ..SearchConfig::default()
                })
                .run()
                .unwrap()
                .bugs
                .into_iter()
                .next()
                .unwrap_or_else(|| panic!("{}/{} not found", bench.name, bug.name));
            assert_eq!(
                (found.preemptions, found.faults),
                (bug.expected_bound, bug.expected_faults),
                "{}/{}: bound drifted",
                bench.name,
                bug.name
            );
        }
    }
}

#[test]
fn fault_bugs_are_invisible_below_their_fault_bound() {
    // The fault dimension is real: searching the fault-dependent bugs
    // with fault_bound 0 — even exhaustively — finds nothing.
    for bench in all_benchmarks() {
        for bug in bench.bugs.iter().filter(|bug| bug.expected_faults > 0) {
            let program = (bug.build)();
            let report = Search::over(&program)
                .config(SearchConfig::with_max_executions(100_000))
                .run()
                .unwrap();
            assert!(
                report.completed,
                "{}/{}: fault-free space must exhaust",
                bench.name, bug.name
            );
            assert!(
                report.bugs.is_empty(),
                "{}/{}: found without faults: {:?}",
                bench.name,
                bug.name,
                report.bugs
            );
        }
    }
}

/// A program that violates the determinism contract: its enabled sets
/// depend on how often it has run.
struct FlipFlop {
    runs: AtomicUsize,
}

impl ControlledProgram for FlipFlop {
    fn execute(&self, scheduler: &mut dyn Scheduler, _sink: &mut dyn StateSink) -> ExecutionResult {
        let run = self.runs.fetch_add(1, Ordering::Relaxed);
        let mut trace = Trace::new();
        // Thread count flips between runs: any schedule recorded on one
        // run diverges on the next.
        let threads = if run.is_multiple_of(2) { 2 } else { 1 };
        let mut done = vec![false; threads];
        let mut current: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..threads).filter(|&i| !done[i]).map(Tid).collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|c| !done[c.index()]);
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            trace.push(TraceEntry::new(
                chosen,
                enabled,
                current,
                current_enabled,
                false,
            ));
            done[chosen.index()] = true;
            current = Some(chosen);
        }
        ExecutionResult {
            outcome: ExecutionOutcome::Terminated,
            stats: ExecStats::from_trace(&trace),
            trace,
        }
    }
}

#[test]
fn replay_divergence_is_quarantined_not_a_wrong_answer() {
    // Nondeterministic programs violate the ControlledProgram contract;
    // the search quarantines each diverging trace and forfeits the
    // subtree rooted there instead of crashing or silently exploring
    // garbage — and never reports the divergence as a program bug.
    let program = FlipFlop {
        runs: AtomicUsize::new(0),
    };
    let report = Search::over(&program)
        .config(SearchConfig::with_max_executions(100))
        .run()
        .unwrap();
    assert!(
        report.bugs.is_empty() && report.buggy_executions == 0,
        "divergence is not a program bug: {report:?}"
    );
    assert!(
        report.quarantined_total >= 1,
        "the diverging trace must be quarantined: {report:?}"
    );
    let text = report.to_string();
    assert!(
        text.contains("quarantined") && text.contains("forfeited"),
        "the report must state the forfeited space: {text}"
    );
}

#[test]
fn bug_report_cap_limits_memory_not_detection() {
    // A program failing in many interleavings: the report keeps at most
    // `max_bug_reports` but counts every buggy execution.
    use icb::statevm::ModelBuilder;
    let mut m = ModelBuilder::new();
    let g = m.global("g", 0);
    for _ in 0..2 {
        m.thread("w", |t| {
            let v = t.local();
            t.fetch_add(g, 1, v);
            t.load(g, v);
            t.assert(v.eq(1), "observes the other writer"); // fails often
        });
    }
    let model = m.build();
    let report = Search::over(&model)
        .config(SearchConfig {
            max_bug_reports: 2,
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    assert_eq!(report.bugs.len(), 2);
    assert!(report.buggy_executions > 2);
}
