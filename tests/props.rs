//! Property-based tests: random small VM models are generated and the
//! core invariants of the search algorithms are checked against brute
//! force.
//!
//! Models are generated from seeded [`SplitMix64`] streams (the
//! workspace builds offline, so there is no proptest); every case is
//! deterministic and reproducible from its seed.

use icb::core::bounds;
use icb::core::rng::SplitMix64;
use icb::core::search::{Search, SearchConfig, Strategy};
use icb::core::{ControlledProgram, NullSink, ReplayScheduler};
use icb::statevm::{reachable_states, ExplicitConfig, ExplicitIcb, Model, ModelBuilder};

/// One generated operation of a thread.
#[derive(Clone, Debug)]
enum GenOp {
    Load(usize),
    Store(usize, i64),
    FetchAdd(usize, i64),
    Yield,
    /// A critical section over one of the locks, with simple ops inside.
    Critical(usize, Vec<SimpleOp>),
}

#[derive(Clone, Debug)]
enum SimpleOp {
    Load(usize),
    Store(usize, i64),
    FetchAdd(usize, i64),
}

const GLOBALS: usize = 2;
const LOCKS: usize = 2;

fn simple_op(rng: &mut SplitMix64) -> SimpleOp {
    match rng.gen_index(3) {
        0 => SimpleOp::Load(rng.gen_index(GLOBALS)),
        1 => SimpleOp::Store(rng.gen_index(GLOBALS), rng.gen_index(4) as i64),
        _ => SimpleOp::FetchAdd(rng.gen_index(GLOBALS), rng.gen_range(1, 3) as i64),
    }
}

fn gen_op(rng: &mut SplitMix64) -> GenOp {
    match rng.gen_index(5) {
        0 => GenOp::Load(rng.gen_index(GLOBALS)),
        1 => GenOp::Store(rng.gen_index(GLOBALS), rng.gen_index(4) as i64),
        2 => GenOp::FetchAdd(rng.gen_index(GLOBALS), rng.gen_range(1, 3) as i64),
        3 => GenOp::Yield,
        _ => {
            let lock = rng.gen_index(LOCKS);
            let body = (0..rng.gen_index(2)).map(|_| simple_op(rng)).collect();
            GenOp::Critical(lock, body)
        }
    }
}

/// A generated program: 2 main threads plus an optional third thread,
/// and an optional final assertion on global 0.
#[derive(Clone, Debug)]
struct GenModel {
    threads: Vec<Vec<GenOp>>,
    assert_g0_eq: Option<i64>,
}

fn gen_ops(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<GenOp> {
    (0..rng.gen_range(lo, hi)).map(|_| gen_op(rng)).collect()
}

fn gen_model(rng: &mut SplitMix64) -> GenModel {
    let mut threads = vec![gen_ops(rng, 1, 4), gen_ops(rng, 1, 4)];
    if rng.gen_bool() {
        threads.push(gen_ops(rng, 1, 2));
    }
    let assert_g0_eq = if rng.gen_bool() {
        Some(rng.gen_index(5) as i64)
    } else {
        None
    };
    GenModel {
        threads,
        assert_g0_eq,
    }
}

fn build(gen: &GenModel) -> Model {
    let mut m = ModelBuilder::new();
    let globals: Vec<_> = (0..GLOBALS)
        .map(|i| m.global(&format!("g{i}"), 0))
        .collect();
    let locks: Vec<_> = (0..LOCKS).map(|i| m.lock(&format!("l{i}"))).collect();
    for (ix, ops) in gen.threads.iter().enumerate() {
        m.thread(&format!("t{ix}"), |t| {
            let scratch = t.local();
            for op in ops {
                match op {
                    GenOp::Load(g) => t.load(globals[*g], scratch),
                    GenOp::Store(g, v) => t.store(globals[*g], *v),
                    GenOp::FetchAdd(g, v) => t.fetch_add(globals[*g], *v, scratch),
                    GenOp::Yield => t.yield_point(),
                    GenOp::Critical(l, body) => {
                        t.acquire(locks[*l]);
                        for s in body {
                            match s {
                                SimpleOp::Load(g) => t.load(globals[*g], scratch),
                                SimpleOp::Store(g, v) => t.store(globals[*g], *v),
                                SimpleOp::FetchAdd(g, v) => t.fetch_add(globals[*g], *v, scratch),
                            }
                        }
                        t.release(locks[*l]);
                    }
                }
            }
            if ix == 0 {
                if let Some(x) = gen.assert_g0_eq {
                    t.load(globals[0], scratch);
                    t.assert(scratch.eq(x), "generated assertion");
                }
            }
        });
    }
    m.build()
}

fn unbounded() -> SearchConfig {
    SearchConfig {
        max_executions: Some(2_000_000),
        max_bug_reports: 4096,
        ..SearchConfig::default()
    }
}

const CASES: usize = 24;

/// Runs `CASES` generated models through a checker closure. The seed
/// stream is per-test so each property sees a distinct model population.
fn for_generated_models(seed: u64, mut check: impl FnMut(&GenModel, Model)) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..CASES {
        let gen = gen_model(&mut rng);
        let model = build(&gen);
        check(&gen, model);
    }
}

/// Exhaustive ICB, exhaustive DFS and plain BFS reachability all visit
/// exactly the same state set; ICB and DFS run exactly the same number
/// of executions.
#[test]
fn icb_dfs_bfs_agree() {
    for_generated_models(0x1CB0, |gen, model| {
        let icb = Search::over(&model).config(unbounded()).run().unwrap();
        let dfs = Search::over(&model)
            .strategy(Strategy::Dfs)
            .config(unbounded())
            .run()
            .unwrap();
        assert!(icb.completed && dfs.completed);
        assert_eq!(icb.executions, dfs.executions, "model {gen:?}");
        assert_eq!(icb.distinct_states, dfs.distinct_states);
        if gen.assert_g0_eq.is_none() {
            let total = reachable_states(&model, 10_000_000);
            assert_eq!(icb.distinct_states, total);
        }
    });
}

/// The first bug ICB reports has the minimal preemption count over ALL
/// failing executions (validated against an exhaustive DFS).
#[test]
fn icb_first_bug_is_minimal() {
    for_generated_models(0x1CB1, |gen, model| {
        let icb = Search::over(&model).config(unbounded()).run().unwrap();
        let dfs = Search::over(&model)
            .strategy(Strategy::Dfs)
            .config(unbounded())
            .run()
            .unwrap();
        assert!(icb.completed && dfs.completed);
        let dfs_min = dfs.bugs.iter().map(|b| b.preemptions).min();
        let icb_first = icb.first_bug().map(|b| b.preemptions);
        assert_eq!(icb_first, dfs_min, "model {gen:?}");
    });
}

/// Per-bound execution counts respect Theorem 1's ceiling
/// `C(nk, c) · (nb + c)!` (using conservative totals for k and b).
#[test]
fn theorem1_ceiling_holds() {
    for_generated_models(0x1CB2, |gen, model| {
        let report = Search::over(&model).config(unbounded()).run().unwrap();
        assert!(report.completed);
        let n = gen.threads.len() as u64;
        let k = report.max_stats.steps as u64; // ≥ per-thread max
        let b = report.max_stats.blocking_steps as u64 + n; // + terminations
        for bh in &report.bound_history {
            if let Some(ceiling) = bounds::executions_with_preemptions(n, k, b, bh.bound as u64) {
                assert!(
                    (bh.executions as u128) <= ceiling,
                    "bound {}: {} > {}",
                    bh.bound,
                    bh.executions,
                    ceiling
                );
            }
        }
    });
}

/// Coverage curves are nondecreasing and end at the reported total.
#[test]
fn coverage_curves_are_monotone() {
    for_generated_models(0x1CB3, |_gen, model| {
        let report = Search::over(&model).config(unbounded()).run().unwrap();
        let mut prev = 0;
        for &(x, y) in &report.coverage_curve {
            assert!(x >= 1);
            assert!(y >= prev);
            prev = y;
        }
        assert_eq!(prev, report.distinct_states);
    });
}

/// Every reported bug schedule replays to the same outcome.
#[test]
fn bug_schedules_replay() {
    for_generated_models(0x1CB4, |_gen, model| {
        let report = Search::over(&model)
            .config(SearchConfig {
                stop_on_first_bug: true,
                ..unbounded()
            })
            .run()
            .unwrap();
        if let Some(bug) = report.first_bug() {
            let mut replay = ReplayScheduler::new(bug.schedule.clone());
            let result = model.execute(&mut replay, &mut NullSink);
            assert_eq!(&result.outcome, &bug.outcome);
            assert_eq!(result.stats.preemptions, bug.preemptions);
        }
    });
}

/// The explicit-state checker agrees with the stateless one on the
/// minimal bug bound.
#[test]
fn explicit_minimal_bound_matches() {
    for_generated_models(0x1CB5, |gen, model| {
        let stateless = Search::over(&model)
            .config(SearchConfig {
                stop_on_first_bug: true,
                ..unbounded()
            })
            .run()
            .unwrap();
        let explicit = ExplicitIcb::new(ExplicitConfig {
            stop_on_first_bug: true,
            ..ExplicitConfig::default()
        })
        .run(&model);
        let a = stateless.first_bug().map(|b| b.preemptions);
        let b = explicit.bugs.first().map(|b| b.bound);
        assert_eq!(a, b, "model {gen:?}");
    });
}

/// Sleep-set partial-order reduction never changes the bug verdict and
/// never explores more transitions than plain DFS.
#[test]
fn por_preserves_bug_verdicts() {
    use icb::statevm::por::{sleep_set_dfs, PorConfig};
    for_generated_models(0x1CB6, |_gen, model| {
        let plain = sleep_set_dfs(
            &model,
            &PorConfig {
                sleep_sets: false,
                ..PorConfig::default()
            },
        );
        let reduced = sleep_set_dfs(&model, &PorConfig::default());
        assert!(plain.completed && reduced.completed);
        assert_eq!(plain.has_bug(), reduced.has_bug());
        assert!(reduced.transitions <= plain.transitions);
        // Distinct assertion messages must coincide (same bugs, maybe
        // fewer witnesses).
        let msgs = |r: &icb::statevm::por::PorReport| {
            let mut v: Vec<&str> = r
                .assertion_failures
                .iter()
                .map(|(m, _)| m.as_str())
                .collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(String::from).collect::<Vec<_>>()
        };
        assert_eq!(msgs(&plain), msgs(&reduced));
        assert_eq!(plain.deadlocks.is_empty(), reduced.deadlocks.is_empty());
    });
}

/// Completing bound c at bound-limited search explores a subset of what
/// bound c+1 explores, and coverage is monotone in the bound.
#[test]
fn coverage_monotone_in_bound() {
    for_generated_models(0x1CB7, |_gen, model| {
        let mut prev_states = 0;
        let mut prev_execs = 0;
        for bound in 0..3 {
            let report = Search::over(&model)
                .config(SearchConfig {
                    preemption_bound: Some(bound),
                    ..unbounded()
                })
                .run()
                .unwrap();
            assert!(report.distinct_states >= prev_states);
            assert!(report.executions >= prev_execs);
            prev_states = report.distinct_states;
            prev_execs = report.executions;
        }
    });
}
