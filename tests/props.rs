//! Property-based tests: random small VM models are generated and the
//! core invariants of the search algorithms are checked against brute
//! force.

use proptest::prelude::*;

use icb::core::bounds;
use icb::core::search::{DfsSearch, IcbSearch, SearchConfig};
use icb::core::{ControlledProgram, NullSink, ReplayScheduler};
use icb::statevm::{reachable_states, ExplicitConfig, ExplicitIcb, Model, ModelBuilder};

/// One generated operation of a thread.
#[derive(Clone, Debug)]
enum GenOp {
    Load(usize),
    Store(usize, i64),
    FetchAdd(usize, i64),
    Yield,
    /// A critical section over one of the locks, with simple ops inside.
    Critical(usize, Vec<SimpleOp>),
}

#[derive(Clone, Debug)]
enum SimpleOp {
    Load(usize),
    Store(usize, i64),
    FetchAdd(usize, i64),
}

const GLOBALS: usize = 2;
const LOCKS: usize = 2;

fn simple_op() -> impl Strategy<Value = SimpleOp> {
    prop_oneof![
        (0..GLOBALS).prop_map(SimpleOp::Load),
        ((0..GLOBALS), (0..4i64)).prop_map(|(g, v)| SimpleOp::Store(g, v)),
        ((0..GLOBALS), (1..3i64)).prop_map(|(g, v)| SimpleOp::FetchAdd(g, v)),
    ]
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0..GLOBALS).prop_map(GenOp::Load),
        ((0..GLOBALS), (0..4i64)).prop_map(|(g, v)| GenOp::Store(g, v)),
        ((0..GLOBALS), (1..3i64)).prop_map(|(g, v)| GenOp::FetchAdd(g, v)),
        Just(GenOp::Yield),
        ((0..LOCKS), proptest::collection::vec(simple_op(), 0..2))
            .prop_map(|(l, body)| GenOp::Critical(l, body)),
    ]
}

/// A generated program: 2 main threads plus an optional third thread,
/// and an optional final assertion on global 0.
#[derive(Clone, Debug)]
struct GenModel {
    threads: Vec<Vec<GenOp>>,
    assert_g0_eq: Option<i64>,
}

fn gen_model() -> impl Strategy<Value = GenModel> {
    (
        proptest::collection::vec(gen_op(), 1..4),
        proptest::collection::vec(gen_op(), 1..4),
        proptest::option::of(proptest::collection::vec(gen_op(), 1..2)),
        proptest::option::of(0..5i64),
    )
        .prop_map(|(t0, t1, t2, assert_g0_eq)| {
            let mut threads = vec![t0, t1];
            if let Some(t2) = t2 {
                threads.push(t2);
            }
            GenModel {
                threads,
                assert_g0_eq,
            }
        })
}

fn build(gen: &GenModel) -> Model {
    let mut m = ModelBuilder::new();
    let globals: Vec<_> = (0..GLOBALS)
        .map(|i| m.global(&format!("g{i}"), 0))
        .collect();
    let locks: Vec<_> = (0..LOCKS).map(|i| m.lock(&format!("l{i}"))).collect();
    for (ix, ops) in gen.threads.iter().enumerate() {
        m.thread(&format!("t{ix}"), |t| {
            let scratch = t.local();
            for op in ops {
                match op {
                    GenOp::Load(g) => t.load(globals[*g], scratch),
                    GenOp::Store(g, v) => t.store(globals[*g], *v),
                    GenOp::FetchAdd(g, v) => t.fetch_add(globals[*g], *v, scratch),
                    GenOp::Yield => t.yield_point(),
                    GenOp::Critical(l, body) => {
                        t.acquire(locks[*l]);
                        for s in body {
                            match s {
                                SimpleOp::Load(g) => t.load(globals[*g], scratch),
                                SimpleOp::Store(g, v) => t.store(globals[*g], *v),
                                SimpleOp::FetchAdd(g, v) => {
                                    t.fetch_add(globals[*g], *v, scratch)
                                }
                            }
                        }
                        t.release(locks[*l]);
                    }
                }
            }
            if ix == 0 {
                if let Some(x) = gen.assert_g0_eq {
                    t.load(globals[0], scratch);
                    t.assert(scratch.eq(x), "generated assertion");
                }
            }
        });
    }
    m.build()
}

fn unbounded() -> SearchConfig {
    SearchConfig {
        max_executions: Some(2_000_000),
        max_bug_reports: 4096,
        ..SearchConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive ICB, exhaustive DFS and plain BFS reachability all
    /// visit exactly the same state set; ICB and DFS run exactly the
    /// same number of executions.
    #[test]
    fn icb_dfs_bfs_agree(gen in gen_model()) {
        let model = build(&gen);
        let icb = IcbSearch::new(unbounded()).run(&model);
        let dfs = DfsSearch::new(unbounded()).run(&model);
        prop_assert!(icb.completed && dfs.completed);
        prop_assert_eq!(icb.executions, dfs.executions);
        prop_assert_eq!(icb.distinct_states, dfs.distinct_states);
        if gen.assert_g0_eq.is_none() {
            let total = reachable_states(&model, 10_000_000);
            prop_assert_eq!(icb.distinct_states, total);
        }
    }

    /// The first bug ICB reports has the minimal preemption count over
    /// ALL failing executions (validated against an exhaustive DFS).
    #[test]
    fn icb_first_bug_is_minimal(gen in gen_model()) {
        let model = build(&gen);
        let icb = IcbSearch::new(unbounded()).run(&model);
        let dfs = DfsSearch::new(unbounded()).run(&model);
        prop_assert!(icb.completed && dfs.completed);
        let dfs_min = dfs.bugs.iter().map(|b| b.preemptions).min();
        let icb_first = icb.first_bug().map(|b| b.preemptions);
        prop_assert_eq!(icb_first, dfs_min);
    }

    /// Per-bound execution counts respect Theorem 1's ceiling
    /// `C(nk, c) · (nb + c)!` (using conservative totals for k and b).
    #[test]
    fn theorem1_ceiling_holds(gen in gen_model()) {
        let model = build(&gen);
        let report = IcbSearch::new(unbounded()).run(&model);
        prop_assert!(report.completed);
        let n = gen.threads.len() as u64;
        let k = report.max_stats.steps as u64; // ≥ per-thread max
        let b = report.max_stats.blocking_steps as u64 + n; // + terminations
        for bh in &report.bound_history {
            if let Some(ceiling) = bounds::executions_with_preemptions(n, k, b, bh.bound as u64) {
                prop_assert!(
                    (bh.executions as u128) <= ceiling,
                    "bound {}: {} > {}", bh.bound, bh.executions, ceiling
                );
            }
        }
    }

    /// Coverage curves are nondecreasing and end at the reported total.
    #[test]
    fn coverage_curves_are_monotone(gen in gen_model()) {
        let model = build(&gen);
        let report = IcbSearch::new(unbounded()).run(&model);
        let mut prev = 0;
        for &(x, y) in &report.coverage_curve {
            prop_assert!(x >= 1);
            prop_assert!(y >= prev);
            prev = y;
        }
        prop_assert_eq!(prev, report.distinct_states);
    }

    /// Every reported bug schedule replays to the same outcome.
    #[test]
    fn bug_schedules_replay(gen in gen_model()) {
        let model = build(&gen);
        let report = IcbSearch::new(SearchConfig {
            stop_on_first_bug: true,
            ..unbounded()
        }).run(&model);
        if let Some(bug) = report.first_bug() {
            let mut replay = ReplayScheduler::new(bug.schedule.clone());
            let result = model.execute(&mut replay, &mut NullSink);
            prop_assert_eq!(&result.outcome, &bug.outcome);
            prop_assert_eq!(result.stats.preemptions, bug.preemptions);
        }
    }

    /// The explicit-state checker agrees with the stateless one on the
    /// minimal bug bound.
    #[test]
    fn explicit_minimal_bound_matches(gen in gen_model()) {
        let model = build(&gen);
        let stateless = IcbSearch::new(SearchConfig {
            stop_on_first_bug: true,
            ..unbounded()
        }).run(&model);
        let explicit = ExplicitIcb::new(ExplicitConfig {
            stop_on_first_bug: true,
            ..ExplicitConfig::default()
        }).run(&model);
        let a = stateless.first_bug().map(|b| b.preemptions);
        let b = explicit.bugs.first().map(|b| b.bound);
        prop_assert_eq!(a, b);
    }

    /// Sleep-set partial-order reduction never changes the bug verdict
    /// and never explores more transitions than plain DFS.
    #[test]
    fn por_preserves_bug_verdicts(gen in gen_model()) {
        use icb::statevm::por::{sleep_set_dfs, PorConfig};
        let model = build(&gen);
        let plain = sleep_set_dfs(&model, &PorConfig {
            sleep_sets: false,
            ..PorConfig::default()
        });
        let reduced = sleep_set_dfs(&model, &PorConfig::default());
        prop_assert!(plain.completed && reduced.completed);
        prop_assert_eq!(plain.has_bug(), reduced.has_bug());
        prop_assert!(reduced.transitions <= plain.transitions);
        // Distinct assertion messages must coincide (same bugs, maybe
        // fewer witnesses).
        let msgs = |r: &icb::statevm::por::PorReport| {
            let mut v: Vec<&str> = r.assertion_failures.iter().map(|(m, _)| m.as_str()).collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(String::from).collect::<Vec<_>>()
        };
        prop_assert_eq!(msgs(&plain), msgs(&reduced));
        prop_assert_eq!(plain.deadlocks.is_empty(), reduced.deadlocks.is_empty());
    }

    /// Completing bound c at bound-limited search explores a subset of
    /// what bound c+1 explores, and coverage is monotone in the bound.
    #[test]
    fn coverage_monotone_in_bound(gen in gen_model()) {
        let model = build(&gen);
        let mut prev_states = 0;
        let mut prev_execs = 0;
        for bound in 0..3 {
            let report = IcbSearch::new(SearchConfig {
                preemption_bound: Some(bound),
                ..unbounded()
            }).run(&model);
            prop_assert!(report.distinct_states >= prev_states);
            prop_assert!(report.executions >= prev_execs);
            prev_states = report.distinct_states;
            prev_execs = report.executions;
        }
    }
}
