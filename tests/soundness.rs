//! Empirical checks of the Section 3.1 soundness claims: preempting only
//! at synchronization operations, combined with data-race checking, must
//! not hide any bug of a race-free program (Theorems 2 and 3).

use std::sync::Arc;

use icb::core::search::{BugReport, Search, SearchConfig, Strategy};
use icb::core::ControlledProgram;
use icb::core::ExecutionOutcome;
use icb::runtime::{
    sync::{AtomicUsize, Mutex},
    thread, DataVar, RuntimeConfig, RuntimeProgram,
};

/// A race-free program with a real (lock-granularity) atomicity bug:
/// the read and the write of the balance live in different critical
/// sections.
fn lost_update(config: RuntimeConfig) -> RuntimeProgram {
    RuntimeProgram::with_config(config, || {
        let balance = Arc::new(Mutex::new(0i64));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let balance = Arc::clone(&balance);
                thread::spawn(move || {
                    let v = *balance.lock();
                    *balance.lock() = v + 1;
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        assert_eq!(*balance.lock(), 2, "lost update");
    })
}

/// Minimal-preemption bug hunt via the builder (the old
/// `IcbSearch::find_minimal_bug` convenience).
fn minimal_bug(program: &(dyn ControlledProgram + Sync), budget: usize) -> Option<BugReport> {
    Search::over(program)
        .config(SearchConfig {
            max_executions: Some(budget),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .unwrap()
        .bugs
        .into_iter()
        .next()
}

#[test]
fn reduced_search_finds_the_same_bug_as_full_interleaving() {
    // Theorem 2/3 in practice: the sync-only reduction must expose the
    // lost update at the same minimal preemption count as the unreduced
    // full-interleaving search.
    let reduced = minimal_bug(&lost_update(RuntimeConfig::default()), 500_000)
        .expect("reduced search finds the bug");
    let full = minimal_bug(&lost_update(RuntimeConfig::full_interleaving()), 500_000)
        .expect("full search finds the bug");
    assert_eq!(reduced.preemptions, full.preemptions);
    assert_eq!(reduced.preemptions, 1);
}

/// A race-free program over plain shared memory (`DataVar`s guarded by
/// a lock): the variables the Section 3.1 reduction applies to.
fn data_var_program(config: RuntimeConfig) -> RuntimeProgram {
    RuntimeProgram::with_config(config, || {
        let lock = Arc::new(Mutex::new(()));
        let x = Arc::new(DataVar::new(0u32));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let (lock, x) = (Arc::clone(&lock), Arc::clone(&x));
                thread::spawn(move || {
                    let _g = lock.lock();
                    x.with_mut(|v| *v += 1);
                    x.with_mut(|v| *v += 1);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        assert_eq!(x.read(), 4);
    })
}

#[test]
fn reduced_search_explores_fewer_executions() {
    // The whole point of the reduction: same verdict, smaller space —
    // data-variable accesses stop being scheduling points.
    let config = SearchConfig {
        preemption_bound: Some(1),
        ..SearchConfig::default()
    };
    let reduced_prog = data_var_program(RuntimeConfig::default());
    let full_prog = data_var_program(RuntimeConfig::full_interleaving());
    let reduced = Search::over(&reduced_prog)
        .config(config.clone())
        .run()
        .unwrap();
    let full = Search::over(&full_prog).config(config).run().unwrap();
    assert!(
        reduced.executions < full.executions,
        "reduced {} !< full {}",
        reduced.executions,
        full.executions
    );
    assert!(reduced.max_stats.steps < full.max_stats.steps);
    // Same verdict: the program is correct under both searches.
    assert!(reduced.bugs.is_empty() && full.bugs.is_empty());
}

#[test]
fn races_invalidate_the_reduction_and_are_reported() {
    // If the program is NOT race-free, the reduction is unsound — which
    // is exactly why the checker reports the race as a first-class bug.
    let racy = RuntimeProgram::new(|| {
        let x = Arc::new(DataVar::named("shared", 0u32));
        let t = {
            let x = Arc::clone(&x);
            thread::spawn(move || x.write(1))
        };
        x.write(2);
        t.join();
    });
    let bug = minimal_bug(&racy, 100_000).expect("race reported");
    assert!(matches!(bug.outcome, ExecutionOutcome::DataRace { .. }));
}

#[test]
fn race_free_verdict_holds_for_sync_only_scheduling() {
    // A correctly synchronized program: the reduced search must verify
    // it without a single race or assertion report.
    let program = RuntimeProgram::new(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let data = Arc::new(Mutex::new(Vec::new()));
        let ts: Vec<_> = (0..2)
            .map(|i| {
                let counter = Arc::clone(&counter);
                let data = Arc::clone(&data);
                thread::spawn(move || {
                    data.lock().push(i);
                    counter.fetch_add(1);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        assert_eq!(counter.load(), 2);
        assert_eq!(data.lock().len(), 2);
    });
    let config = SearchConfig {
        preemption_bound: Some(2),
        ..SearchConfig::default()
    };
    let report = Search::over(&program).config(config).run().unwrap();
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn icb_enumerates_in_preemption_order() {
    // The defining property of Algorithm 1: the first failing execution
    // ICB reports carries the globally minimal preemption count. Verify
    // against an exhaustive DFS that collects every failing execution.
    let program = lost_update(RuntimeConfig::default());
    let icb_bug = minimal_bug(&program, 500_000).expect("bug");
    let dfs = Search::over(&program)
        .strategy(Strategy::Dfs)
        .config(SearchConfig {
            max_executions: Some(500_000),
            max_bug_reports: 1024,
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    assert!(dfs.completed, "DFS must exhaust this small program");
    let dfs_min = dfs
        .bugs
        .iter()
        .map(|b| b.preemptions)
        .min()
        .expect("DFS finds bugs too");
    assert_eq!(icb_bug.preemptions, dfs_min);
}

#[test]
fn bound_zero_reaches_terminating_executions() {
    // "It is always possible to drive a terminating program to
    // completion without incurring a preemption": bound 0 must produce
    // complete executions, not truncated ones.
    let program = lost_update(RuntimeConfig::default());
    let report = Search::over(&program)
        .config(SearchConfig {
            preemption_bound: Some(0),
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    assert!(report.executions > 0);
    assert_eq!(report.max_stats.preemptions, 0);
    // Every bound-0 execution ran to completion (termination, not limit).
    assert!(report.bugs.is_empty()); // the lost update needs 1 preemption
    assert!(report.max_stats.steps > 10, "executions go deep at bound 0");
}
