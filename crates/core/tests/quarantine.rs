//! Divergence quarantine: a program that breaks the determinism
//! contract must not bring the search down (the pre-quarantine behavior
//! was a panic that unwound through the whole run), must not be reported
//! as a program bug, and must be called out in the final report.

use std::sync::atomic::{AtomicUsize, Ordering};

use icb_core::search::{Search, SearchConfig, Strategy};
use icb_core::{
    ControlledProgram, ExecutionOutcome, ExecutionResult, SchedulePoint, Scheduler, SearchObserver,
    StateSink, Tid, Trace, TraceEntry,
};

/// Two threads × `k` steps, deliberately nondeterministic: on every
/// odd-numbered run, thread 1 is blocked until thread 0 finishes. A
/// schedule recorded on an even run (thread 1 free to go first) diverges
/// when replayed on an odd run — exactly the failure mode quarantine
/// exists for.
struct FlakyCounters {
    k: usize,
    runs: AtomicUsize,
}

impl FlakyCounters {
    fn new(k: usize) -> Self {
        FlakyCounters {
            k,
            runs: AtomicUsize::new(0),
        }
    }
}

impl ControlledProgram for FlakyCounters {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        let run = self.runs.fetch_add(1, Ordering::Relaxed);
        let constrained = run % 2 == 1;
        let mut pos = [0usize; 2];
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..2)
                .filter(|&i| pos[i] < self.k && !(constrained && i == 1 && pos[0] < self.k))
                .map(Tid)
                .collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|t| enabled.contains(&t));
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            trace.push(TraceEntry::new(
                chosen,
                enabled,
                current,
                current_enabled,
                false,
            ));
            pos[chosen.index()] += 1;
            current = Some(chosen);
            let fp = (pos[0] as u64) << 32 | pos[1] as u64;
            sink.visit(icb_core::coverage::mix64(fp));
        }
        ExecutionResult::from_trace(ExecutionOutcome::Terminated, trace)
    }
}

#[test]
fn icb_quarantines_diverging_subtrees_and_keeps_searching() {
    let program = FlakyCounters::new(2);
    let report = Search::over(&program)
        .config(SearchConfig::with_max_executions(500))
        .run()
        .unwrap();
    assert!(
        report.quarantined_total > 0,
        "nondeterministic workload must trip quarantine: {report}"
    );
    assert!(
        !report.quarantined.is_empty(),
        "quarantined traces must be listed"
    );
    // Divergence is an infrastructure failure, not a program bug.
    assert_eq!(report.buggy_executions, 0, "{report}");
    assert!(report.bugs.is_empty());
    // The search survived and kept exploring past the divergence.
    assert!(report.executions > 1);
    // The final report states the forfeited space.
    let text = report.to_string();
    assert!(text.contains("quarantined"), "{text}");
    assert!(text.contains("forfeited"), "{text}");
}

#[test]
fn quarantined_traces_carry_the_divergence_details() {
    let program = FlakyCounters::new(2);
    let report = Search::over(&program)
        .config(SearchConfig::with_max_executions(500))
        .run()
        .unwrap();
    let q = report
        .quarantined
        .first()
        .expect("at least one quarantined trace");
    assert!(
        !q.actual.contains(&q.expected),
        "the expected thread must be missing from the enabled set"
    );
}

#[test]
fn dfs_quarantines_instead_of_crashing() {
    let program = FlakyCounters::new(2);
    let report = Search::over(&program)
        .strategy(Strategy::Dfs)
        .config(SearchConfig::with_max_executions(500))
        .run()
        .unwrap();
    assert!(report.quarantined_total > 0, "{report}");
    assert_eq!(report.buggy_executions, 0);
}

#[test]
fn best_first_quarantines_instead_of_crashing() {
    let program = FlakyCounters::new(2);
    let report = Search::over(&program)
        .strategy(Strategy::BestFirst)
        .config(SearchConfig::with_max_executions(500))
        .run()
        .unwrap();
    assert!(report.quarantined_total > 0, "{report}");
    assert_eq!(report.buggy_executions, 0);
}

/// Two threads × `k` steps; panics (a raw unwind, not a bug outcome)
/// whenever thread 1 is scheduled first. The panic is deterministic in
/// the schedule, so a requeued item panics again on its retry and must
/// be quarantined on the second strike.
struct PanicsOnT1First {
    k: usize,
}

impl ControlledProgram for PanicsOnT1First {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        let mut pos = [0usize; 2];
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..2).filter(|&i| pos[i] < self.k).map(Tid).collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|t| enabled.contains(&t));
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            if trace.is_empty() && chosen == Tid(1) {
                panic!("drill: thread 1 scheduled first");
            }
            trace.push(TraceEntry::new(
                chosen,
                enabled,
                current,
                current_enabled,
                false,
            ));
            pos[chosen.index()] += 1;
            current = Some(chosen);
            let fp = (pos[0] as u64) << 32 | pos[1] as u64;
            sink.visit(icb_core::coverage::mix64(fp));
        }
        ExecutionResult::from_trace(ExecutionOutcome::Terminated, trace)
    }
}

/// Records every `worker_panic` event the pump emits.
#[derive(Default)]
struct PanicCounter {
    panics: Vec<(usize, String)>,
}

impl SearchObserver for PanicCounter {
    fn worker_panic(&mut self, worker: usize, message: &str) {
        self.panics.push((worker, message.to_string()));
    }
}

#[test]
fn parallel_workers_requeue_a_panicking_item_once_then_quarantine_it() {
    let program = PanicsOnT1First { k: 2 };
    let mut counter = PanicCounter::default();
    // Keep the default hook from spamming the test output: the panics
    // below are deliberate and caught by the workers.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = Search::over(&program)
        .config(SearchConfig::with_max_executions(500))
        .jobs(4)
        .observer(&mut counter)
        .run()
        .unwrap();
    std::panic::set_hook(hook);

    // The search survived the unwinds and kept exploring the healthy
    // (thread-0-first) half of the tree.
    assert!(report.executions > 0, "{report}");
    // A panicking run is an infrastructure failure, not a program bug.
    assert_eq!(report.buggy_executions, 0, "{report}");
    assert!(report.bugs.is_empty());
    // Every panic surfaced as a worker-panic event with the payload.
    assert!(
        counter.panics.len() >= 2,
        "first strike + retry must both be reported: {:?}",
        counter.panics
    );
    assert!(
        counter
            .panics
            .iter()
            .all(|(_, m)| m.contains("drill: thread 1 scheduled first")),
        "{:?}",
        counter.panics
    );
    // Second strike forfeits the item: it shows up as quarantined, and
    // each quarantined item panicked exactly twice (once on first
    // strike, once on its single retry).
    assert!(report.quarantined_total > 0, "{report}");
    assert!(
        counter.panics.len() >= 2 * report.quarantined_total,
        "{} panics for {} quarantined item(s)",
        counter.panics.len(),
        report.quarantined_total
    );
}

#[test]
fn divergence_count_is_capped_but_total_is_not() {
    let program = FlakyCounters::new(3);
    let config = SearchConfig {
        max_executions: Some(2000),
        max_bug_reports: 2,
        ..SearchConfig::default()
    };
    let report = Search::over(&program).config(config).run().unwrap();
    if report.quarantined_total > 2 {
        assert_eq!(
            report.quarantined.len(),
            2,
            "list capped at max_bug_reports"
        );
    }
    assert!(report.quarantined_total >= report.quarantined.len());
}
