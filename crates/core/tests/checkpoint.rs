//! Crash-resilience properties of the checkpoint/resume machinery,
//! exercised through the public API only.
//!
//! The crash model: checkpoints are written atomically, so a crash at
//! any moment leaves the latest fully-written snapshot on disk; resuming
//! from it redoes the executions lost after the write and must end in a
//! final report identical to the uninterrupted run's. The tests simulate
//! the crash by copying the live checkpoint file aside mid-search (as if
//! the process had been killed right after that write) and resuming from
//! the copy.

use std::path::{Path, PathBuf};

use icb_core::search::{IcbSearch, Search, SearchConfig, SearchReport, Strategy};
use icb_core::snapshot::{Checkpointer, SearchSnapshot, SnapshotError, StrategyState};
use icb_core::telemetry::SearchObserver;
use icb_core::{
    ControlledProgram, ExecutionOutcome, ExecutionResult, NoopObserver, SchedulePoint, Scheduler,
    StateSink, Tid, Trace, TraceEntry,
};

/// `n` threads × `k` increments of a shared counter; an optional bug
/// fires when `bug_thread`'s step `bug_step` observes `counter ==
/// bug_value`. Fully deterministic — the workhorse for exact-resume
/// checks.
struct Counters {
    n: usize,
    k: usize,
    bug: Option<(usize, usize, u32)>,
}

impl ControlledProgram for Counters {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        let mut counter: u32 = 0;
        let mut pos = vec![0usize; self.n];
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        let mut failure: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..self.n).filter(|&i| pos[i] < self.k).map(Tid).collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|t| pos[t.index()] < self.k);
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            trace.push(TraceEntry::new(
                chosen,
                enabled,
                current,
                current_enabled,
                false,
            ));
            if let Some((bt, bs, bv)) = self.bug {
                if chosen.index() == bt && pos[bt] == bs && counter == bv {
                    failure = Some(chosen);
                }
            }
            counter += 1;
            pos[chosen.index()] += 1;
            current = Some(chosen);
            let mut bytes = Vec::with_capacity(4 + self.n * 8);
            bytes.extend_from_slice(&counter.to_le_bytes());
            for p in &pos {
                bytes.extend_from_slice(&(*p as u64).to_le_bytes());
            }
            sink.visit(icb_core::coverage::fingerprint_bytes(&bytes));
            if failure.is_some() {
                break;
            }
        }
        let outcome = match failure {
            Some(thread) => ExecutionOutcome::AssertionFailure {
                thread,
                message: "bug pattern hit".into(),
            },
            None => ExecutionOutcome::Terminated,
        };
        ExecutionResult::from_trace(outcome, trace)
    }
}

/// Observer that snapshots the live checkpoint file aside after its
/// `at`-th write — freezing the exact state a crash at that moment would
/// leave on disk.
struct CrashCopier {
    live: PathBuf,
    frozen: PathBuf,
    at: usize,
    seen: usize,
}

impl SearchObserver for CrashCopier {
    fn checkpoint_written(&mut self, _executions: usize) {
        self.seen += 1;
        if self.seen == self.at {
            std::fs::copy(&self.live, &self.frozen).expect("freeze checkpoint copy");
        }
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("icb-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn assert_reports_identical(resumed: &SearchReport, reference: &SearchReport) {
    assert_eq!(resumed.executions, reference.executions, "executions");
    assert_eq!(
        resumed.distinct_states, reference.distinct_states,
        "distinct states"
    );
    assert_eq!(resumed.bugs, reference.bugs, "bug reports");
    assert_eq!(
        resumed.buggy_executions, reference.buggy_executions,
        "buggy executions"
    );
    assert_eq!(resumed.completed, reference.completed, "completed");
    assert_eq!(
        resumed.completed_bound, reference.completed_bound,
        "completed bound"
    );
    assert_eq!(
        resumed.bound_history, reference.bound_history,
        "bound history"
    );
    assert_eq!(
        resumed.coverage_curve, reference.coverage_curve,
        "coverage curve"
    );
    assert_eq!(resumed.max_stats, reference.max_stats, "max stats");
}

fn freeze_mid_search<F>(live: &Path, frozen: &Path, every: usize, at: usize, run: F) -> SearchReport
where
    F: FnOnce(&mut CrashCopier, Checkpointer) -> SearchReport,
{
    let ck = Checkpointer::new(live, every);
    let mut copier = CrashCopier {
        live: live.to_path_buf(),
        frozen: frozen.to_path_buf(),
        at,
        seen: 0,
    };
    let report = run(&mut copier, ck);
    assert!(
        copier.seen >= at,
        "search wrote only {} checkpoints, test wanted to freeze the {at}-th",
        copier.seen
    );
    report
}

#[test]
fn icb_resume_reproduces_the_uninterrupted_report() {
    let program = Counters {
        n: 2,
        k: 3,
        bug: Some((1, 1, 3)),
    };
    let config = SearchConfig::default();
    let reference = Search::over(&program).config(config.clone()).run().unwrap();
    assert!(reference.completed, "test workload must be exhaustible");
    assert!(!reference.bugs.is_empty(), "test workload must have a bug");

    let dir = TempDir::new("icb");
    let live = dir.path("live.ck");
    let frozen = dir.path("frozen.ck");
    let checkpointed = freeze_mid_search(&live, &frozen, 3, 2, |copier, ck| {
        Search::over(&program)
            .config(config.clone())
            .observer(copier)
            .checkpoint(ck)
            .run()
            .unwrap()
    });
    // Checkpointing must not perturb the search itself…
    assert_reports_identical(&checkpointed, &reference);
    // …and a completed run leaves nothing to resume.
    assert!(!live.exists(), "completed run must remove its checkpoint");

    // "Crash" after the 2nd write: resume from the frozen snapshot.
    let snapshot = SearchSnapshot::read_from(&frozen).expect("read frozen checkpoint");
    assert!(matches!(snapshot.state, StrategyState::Icb(_)));
    let resumed = Search::over(&program)
        .resume_from(snapshot)
        .run()
        .expect("resume icb");
    assert_reports_identical(&resumed, &reference);
}

#[test]
fn icb_resume_from_every_checkpoint_matches() {
    // Stress the boundary logic: freeze after each of the first 6 writes
    // at --checkpoint-every 1 granularity (mid-bound, mid-item, bound
    // switches) and demand an identical final report from each.
    let program = Counters {
        n: 3,
        k: 2,
        bug: None,
    };
    let config = SearchConfig::default();
    let reference = Search::over(&program).config(config.clone()).run().unwrap();
    for at in 1..=6 {
        let dir = TempDir::new(&format!("icb-all-{at}"));
        let live = dir.path("live.ck");
        let frozen = dir.path("frozen.ck");
        freeze_mid_search(&live, &frozen, 1, at, |copier, ck| {
            Search::over(&program)
                .config(config.clone())
                .observer(copier)
                .checkpoint(ck)
                .run()
                .unwrap()
        });
        let snapshot = SearchSnapshot::read_from(&frozen).unwrap();
        let resumed = Search::over(&program)
            .resume_from(snapshot)
            .run()
            .unwrap_or_else(|e| panic!("resume from write {at}: {e}"));
        assert_reports_identical(&resumed, &reference);
    }
}

#[test]
fn dfs_resume_reproduces_the_uninterrupted_report() {
    let program = Counters {
        n: 2,
        k: 3,
        bug: Some((1, 1, 3)),
    };
    let config = SearchConfig::default();
    let reference = Search::over(&program)
        .strategy(Strategy::Dfs)
        .config(config.clone())
        .run()
        .unwrap();
    assert!(reference.completed);

    let dir = TempDir::new("dfs");
    let live = dir.path("live.ck");
    let frozen = dir.path("frozen.ck");
    let checkpointed = freeze_mid_search(&live, &frozen, 4, 2, |copier, ck| {
        Search::over(&program)
            .strategy(Strategy::Dfs)
            .config(config.clone())
            .observer(copier)
            .checkpoint(ck)
            .run()
            .unwrap()
    });
    assert_reports_identical(&checkpointed, &reference);
    assert!(!live.exists());

    let snapshot = SearchSnapshot::read_from(&frozen).unwrap();
    let resumed = Search::over(&program)
        .resume_from(snapshot)
        .run()
        .expect("resume dfs");
    assert_reports_identical(&resumed, &reference);
}

#[test]
fn random_resume_continues_the_exact_stream() {
    let program = Counters {
        n: 3,
        k: 2,
        bug: None,
    };
    let config = SearchConfig::with_max_executions(40);
    let reference = Search::over(&program)
        .strategy(Strategy::Random { seed: 7 })
        .config(config.clone())
        .run()
        .unwrap();

    let dir = TempDir::new("random");
    let live = dir.path("live.ck");
    let frozen = dir.path("frozen.ck");
    freeze_mid_search(&live, &frozen, 5, 3, |copier, ck| {
        Search::over(&program)
            .strategy(Strategy::Random { seed: 7 })
            .config(config.clone())
            .observer(copier)
            .checkpoint(ck)
            .run()
            .unwrap()
    });

    let snapshot = SearchSnapshot::read_from(&frozen).unwrap();
    let resumed = Search::over(&program)
        .resume_from(snapshot)
        .run()
        .expect("resume random");
    // Identical stream ⇒ identical walk ⇒ identical curve.
    assert_eq!(resumed.executions, reference.executions);
    assert_eq!(resumed.distinct_states, reference.distinct_states);
    assert_eq!(resumed.coverage_curve, reference.coverage_curve);
}

#[test]
fn resume_rejects_a_snapshot_from_another_strategy() {
    // The builder derives the strategy from the snapshot itself, so this
    // mismatch can only arise on the legacy per-strategy resume surface.
    let program = Counters {
        n: 2,
        k: 2,
        bug: None,
    };
    let dir = TempDir::new("wrong-strategy");
    let live = dir.path("live.ck");
    let frozen = dir.path("frozen.ck");
    freeze_mid_search(&live, &frozen, 2, 1, |copier, ck| {
        Search::over(&program)
            .strategy(Strategy::Random { seed: 3 })
            .config(SearchConfig::with_max_executions(10))
            .observer(copier)
            .checkpoint(ck)
            .run()
            .unwrap()
    });
    let snapshot = SearchSnapshot::read_from(&frozen).unwrap();
    #[allow(deprecated)] // shim regression: the legacy resume still validates
    let err = IcbSearch::resume(&program, snapshot, &mut NoopObserver, None).unwrap_err();
    assert!(
        matches!(err, SnapshotError::WrongStrategy { .. }),
        "got {err:?}"
    );
    let rendered = err.to_string();
    assert!(
        rendered.contains("random") && rendered.contains("icb"),
        "{rendered}"
    );
}

#[test]
fn resumed_budget_stopped_run_does_not_overrun_the_budget() {
    // A snapshot written exactly at an exhausted execution budget must
    // resume into an immediate (0-extra-executions) report.
    let program = Counters {
        n: 3,
        k: 2,
        bug: None,
    };
    let config = SearchConfig::with_max_executions(9);
    let dir = TempDir::new("budget");
    let live = dir.path("live.ck");
    let stopped = Search::over(&program)
        .config(config.clone())
        .checkpoint(Checkpointer::new(&live, 4))
        .run()
        .unwrap();
    assert_eq!(stopped.executions, 9);
    assert!(live.exists(), "aborted run must leave a final checkpoint");

    let snapshot = SearchSnapshot::read_from(&live).unwrap();
    let resumed = Search::over(&program).resume_from(snapshot).run().unwrap();
    assert_eq!(resumed.executions, 9, "resume must not exceed the budget");
    assert_eq!(resumed.distinct_states, stopped.distinct_states);
}
