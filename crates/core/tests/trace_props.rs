//! Property tests of the trace algebra against an independent
//! implementation of Appendix A's definitions.

use proptest::prelude::*;

use icb_core::search::{DfsSearch, SearchConfig};
use icb_core::{
    ControlledProgram, ExecutionOutcome, ExecutionResult, SchedulePoint, Scheduler, StateSink,
    Tid, Trace, TraceEntry,
};

/// A deterministic little interpreter over `steps[i] = thread of step i`
/// plans: thread t is enabled while it has steps left. This regenerates
/// honest traces (consistent `enabled`/`current_enabled` fields) for
/// arbitrary generated schedules.
struct Planned {
    steps_per_thread: Vec<usize>,
}

impl ControlledProgram for Planned {
    fn execute(&self, scheduler: &mut dyn Scheduler, _sink: &mut dyn StateSink) -> ExecutionResult {
        let n = self.steps_per_thread.len();
        let mut left = self.steps_per_thread.clone();
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..n).filter(|&i| left[i] > 0).map(Tid).collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|c| left[c.index()] > 0);
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            trace.push(TraceEntry::new(chosen, enabled, current, current_enabled, false));
            left[chosen.index()] -= 1;
            current = Some(chosen);
        }
        ExecutionResult::from_trace(ExecutionOutcome::Terminated, trace)
    }
}

/// Appendix A, literally:
/// `NP(t) = 0`;
/// `NP(a·t) = NP(a)` if `t = L(a)` or `L(a) ∉ enabled(a)`, else `+1`.
fn np_appendix_a(steps_per_thread: &[usize], schedule: &[Tid]) -> usize {
    let mut left = steps_per_thread.to_vec();
    let mut np = 0;
    let mut last: Option<Tid> = None;
    for &t in schedule {
        if let Some(l) = last {
            let l_enabled = left[l.index()] > 0;
            if t != l && l_enabled {
                np += 1;
            }
        }
        left[t.index()] -= 1;
        last = Some(t);
    }
    np
}

fn plans() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..4, 2..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random schedules through a planned program yield traces that
    /// satisfy the Appendix-A preemption recurrence, the switch
    /// accounting identity, and the schedule-length invariant.
    #[test]
    fn traces_satisfy_appendix_a(steps in plans()) {
        let program = Planned { steps_per_thread: steps.clone() };
        for seed in 0..20u64 {
            let mut rng = RecordingScheduler::random(seed);
            let result = program.execute(&mut rng, &mut icb_core::NullSink);
            let trace = &result.trace;
            let schedule: Vec<Tid> = trace.schedule().iter().collect();
            prop_assert_eq!(
                trace.preemptions(),
                np_appendix_a(&steps, &schedule),
                "schedule {:?}", schedule
            );
            prop_assert_eq!(
                trace.context_switches(),
                trace.preemptions() + trace.nonpreempting_switches()
            );
            prop_assert_eq!(schedule.len(), steps.iter().sum::<usize>());
        }
    }

    /// Exhaustive DFS over the planned program never records a trace
    /// violating the recurrence either (systematic rather than sampled
    /// coverage of the small plans).
    #[test]
    fn dfs_bug_free_and_complete(steps in plans()) {
        let program = Planned { steps_per_thread: steps.clone() };
        let report = DfsSearch::new(SearchConfig {
            max_executions: Some(100_000),
            ..SearchConfig::default()
        }).run(&program);
        prop_assert!(report.completed);
        prop_assert_eq!(report.buggy_executions, 0);
        // The multinomial count of distinct schedules.
        let mut expected = 1f64;
        let mut acc = 1usize;
        for &k in &steps {
            for i in 1..=k {
                expected *= acc as f64 / i as f64;
                acc += 1;
            }
        }
        prop_assert_eq!(report.executions, expected.round() as usize);
    }
}

/// A tiny deterministic pseudo-random scheduler (no rand dependency in
/// the hot loop; SplitMix-based).
struct RecordingScheduler {
    state: u64,
}

impl RecordingScheduler {
    fn random(seed: u64) -> Self {
        RecordingScheduler {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Scheduler for RecordingScheduler {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        point.enabled[(self.next() as usize) % point.enabled.len()]
    }
}
