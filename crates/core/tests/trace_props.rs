//! Property tests of the trace algebra against an independent
//! implementation of Appendix A's definitions.
//!
//! Inputs are generated from seeded [`SplitMix64`] streams (the
//! repository builds without external crates, so there is no proptest);
//! every case is deterministic and reproducible from its seed.

use icb_core::rng::SplitMix64;
use icb_core::search::{Search, SearchConfig, Strategy};
use icb_core::{
    ControlledProgram, ExecutionOutcome, ExecutionResult, SchedulePoint, Scheduler, StateSink, Tid,
    Trace, TraceEntry,
};

/// A deterministic little interpreter over `steps[i] = thread of step i`
/// plans: thread t is enabled while it has steps left. This regenerates
/// honest traces (consistent `enabled`/`current_enabled` fields) for
/// arbitrary generated schedules.
struct Planned {
    steps_per_thread: Vec<usize>,
}

impl ControlledProgram for Planned {
    fn execute(&self, scheduler: &mut dyn Scheduler, _sink: &mut dyn StateSink) -> ExecutionResult {
        let n = self.steps_per_thread.len();
        let mut left = self.steps_per_thread.clone();
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..n).filter(|&i| left[i] > 0).map(Tid).collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|c| left[c.index()] > 0);
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            trace.push(TraceEntry::new(
                chosen,
                enabled,
                current,
                current_enabled,
                false,
            ));
            left[chosen.index()] -= 1;
            current = Some(chosen);
        }
        ExecutionResult::from_trace(ExecutionOutcome::Terminated, trace)
    }
}

/// Appendix A, literally:
/// `NP(t) = 0`;
/// `NP(a·t) = NP(a)` if `t = L(a)` or `L(a) ∉ enabled(a)`, else `+1`.
fn np_appendix_a(steps_per_thread: &[usize], schedule: &[Tid]) -> usize {
    let mut left = steps_per_thread.to_vec();
    let mut np = 0;
    let mut last: Option<Tid> = None;
    for &t in schedule {
        if let Some(l) = last {
            let l_enabled = left[l.index()] > 0;
            if t != l && l_enabled {
                np += 1;
            }
        }
        left[t.index()] -= 1;
        last = Some(t);
    }
    np
}

/// A generated plan: 2–3 threads, each with 1–3 steps.
fn gen_plan(rng: &mut SplitMix64) -> Vec<usize> {
    let threads = rng.gen_range(2, 4);
    (0..threads).map(|_| rng.gen_range(1, 4)).collect()
}

/// Random schedules through a planned program yield traces that satisfy
/// the Appendix-A preemption recurrence, the switch accounting identity,
/// and the schedule-length invariant.
#[test]
fn traces_satisfy_appendix_a() {
    let mut gen = SplitMix64::new(0xA11CE);
    for _case in 0..32 {
        let steps = gen_plan(&mut gen);
        let program = Planned {
            steps_per_thread: steps.clone(),
        };
        for seed in 0..20u64 {
            let mut rng = RandomScheduler::new(seed);
            let result = program.execute(&mut rng, &mut icb_core::NullSink);
            let trace = &result.trace;
            let schedule: Vec<Tid> = trace.schedule().iter().collect();
            assert_eq!(
                trace.preemptions(),
                np_appendix_a(&steps, &schedule),
                "schedule {schedule:?}"
            );
            assert_eq!(
                trace.context_switches(),
                trace.preemptions() + trace.nonpreempting_switches()
            );
            assert_eq!(schedule.len(), steps.iter().sum::<usize>());
        }
    }
}

/// Exhaustive DFS over the planned program never records a trace
/// violating the recurrence either (systematic rather than sampled
/// coverage of the small plans).
#[test]
fn dfs_bug_free_and_complete() {
    let mut gen = SplitMix64::new(0xDF5);
    for _case in 0..32 {
        let steps = gen_plan(&mut gen);
        let program = Planned {
            steps_per_thread: steps.clone(),
        };
        let report = Search::over(&program)
            .strategy(Strategy::Dfs)
            .config(SearchConfig {
                max_executions: Some(100_000),
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.buggy_executions, 0);
        // The multinomial count of distinct schedules.
        let mut expected = 1f64;
        let mut acc = 1usize;
        for &k in &steps {
            for i in 1..=k {
                expected *= acc as f64 / i as f64;
                acc += 1;
            }
        }
        assert_eq!(
            report.executions,
            expected.round() as usize,
            "plan {steps:?}"
        );
    }
}

/// A uniformly random scheduler over the enabled set.
struct RandomScheduler {
    rng: SplitMix64,
}

impl RandomScheduler {
    fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        point.enabled[self.rng.gen_index(point.enabled.len())]
    }
}
