//! The parallel driver's determinism contract, exercised through the
//! public `Search` builder:
//!
//! * the same workload at any `jobs >= 2` yields the *identical*
//!   `SearchReport` — bugs, bound stats, coverage counts, curve — no
//!   matter how the OS schedules the workers;
//! * `jobs = 1` and `jobs >= 2` agree on every order-independent field
//!   (the parallel driver renumbers executions in arrival order, so
//!   per-execution indices may differ);
//! * the stitched telemetry stream carries a `worker_stamp` for every
//!   parallel execution, with per-worker sequence numbers that are
//!   1-based and contiguous — no stamp lost, none duplicated;
//! * sequential searches emit no stamps at all, keeping their event
//!   streams byte-identical to the pre-parallel releases;
//! * all of the above hold with fault injection on (`fault_bound >= 1`):
//!   fault decisions are part of the schedule, so reports and rendered
//!   witnesses stay byte-identical across worker counts and across a
//!   kill-and-resume.

use std::collections::BTreeMap;
use std::path::PathBuf;

use icb_core::search::{Search, SearchConfig, SearchReport, Strategy};
use icb_core::snapshot::{Checkpointer, SearchSnapshot};
use icb_core::telemetry::SearchObserver;
use icb_core::{
    ControlledProgram, ExecutionOutcome, ExecutionResult, ExplainedWitness, FaultPoint,
    SchedulePoint, Scheduler, SiteId, StateSink, Tid, Trace, TraceEntry,
};

/// `n` threads × `k` increments of a shared counter; an optional bug
/// fires when `bug_thread`'s step `bug_step` observes `counter ==
/// bug_value`. Fully deterministic.
struct Counters {
    n: usize,
    k: usize,
    bug: Option<(usize, usize, u32)>,
}

impl ControlledProgram for Counters {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        let mut counter: u32 = 0;
        let mut pos = vec![0usize; self.n];
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        let mut failure: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..self.n).filter(|&i| pos[i] < self.k).map(Tid).collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|t| pos[t.index()] < self.k);
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            trace.push(TraceEntry::new(
                chosen,
                enabled,
                current,
                current_enabled,
                false,
            ));
            if let Some((bt, bs, bv)) = self.bug {
                if chosen.index() == bt && pos[bt] == bs && counter == bv {
                    failure = Some(chosen);
                }
            }
            counter += 1;
            pos[chosen.index()] += 1;
            current = Some(chosen);
            let mut bytes = Vec::with_capacity(4 + self.n * 8);
            bytes.extend_from_slice(&counter.to_le_bytes());
            for p in &pos {
                bytes.extend_from_slice(&(*p as u64).to_le_bytes());
            }
            sink.visit(icb_core::coverage::fingerprint_bytes(&bytes));
            if failure.is_some() {
                break;
            }
        }
        let outcome = match failure {
            Some(thread) => ExecutionOutcome::AssertionFailure {
                thread,
                message: "bug pattern hit".into(),
            },
            None => ExecutionOutcome::Terminated,
        };
        ExecutionResult::from_trace(outcome, trace)
    }
}

/// `n` threads × `k` increments where every increment is a fallible
/// operation the scheduler may fault, losing the update. The final
/// counter is asserted at join: the bug is invisible at `fault_bound: 0`
/// and has a minimum witness of zero preemptions and one fault.
struct FaultyCounters {
    n: usize,
    k: usize,
}

impl ControlledProgram for FaultyCounters {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        let mut counter: u32 = 0;
        let mut pos = vec![0usize; self.n];
        let mut trace = Trace::new();
        let mut current: Option<Tid> = None;
        loop {
            let enabled: Vec<Tid> = (0..self.n).filter(|&i| pos[i] < self.k).map(Tid).collect();
            if enabled.is_empty() {
                break;
            }
            let current_enabled = current.is_some_and(|t| pos[t.index()] < self.k);
            let chosen = scheduler.pick(SchedulePoint {
                step_index: trace.len(),
                current,
                current_enabled,
                enabled: &enabled,
            });
            let site = SiteId::at(chosen.index() as u32, "incr", pos[chosen.index()] as u32);
            let fault = scheduler.decide_fault(FaultPoint {
                step_index: trace.len(),
                tid: chosen,
                site,
            });
            trace.push(
                TraceEntry::new(chosen, enabled, current, current_enabled, false)
                    .with_site(site)
                    .with_fault(fault),
            );
            if !fault {
                counter += 1;
            }
            pos[chosen.index()] += 1;
            current = Some(chosen);
            let mut bytes = Vec::with_capacity(4 + self.n * 8);
            bytes.extend_from_slice(&counter.to_le_bytes());
            for p in &pos {
                bytes.extend_from_slice(&(*p as u64).to_le_bytes());
            }
            sink.visit(icb_core::coverage::fingerprint_bytes(&bytes));
        }
        let expected = (self.n * self.k) as u32;
        let outcome = if counter == expected {
            ExecutionOutcome::Terminated
        } else {
            ExecutionOutcome::AssertionFailure {
                thread: Tid(0),
                message: format!("lost update: counter {counter} != {expected}"),
            }
        };
        ExecutionResult::from_trace(outcome, trace)
    }
}

fn buggy() -> Counters {
    Counters {
        n: 2,
        k: 3,
        bug: Some((1, 1, 3)),
    }
}

fn clean() -> Counters {
    Counters {
        n: 3,
        k: 2,
        bug: None,
    }
}

fn run(
    program: &(dyn ControlledProgram + Sync),
    strategy: Strategy,
    config: SearchConfig,
    jobs: usize,
) -> SearchReport {
    Search::over(program)
        .strategy(strategy)
        .config(config)
        .jobs(jobs)
        .run()
        .unwrap()
}

/// The order-independent slice of the contract: everything except
/// per-execution numbering.
fn assert_order_independent_match(par: &SearchReport, seq: &SearchReport) {
    assert_eq!(par.executions, seq.executions, "executions");
    assert_eq!(par.distinct_states, seq.distinct_states, "distinct states");
    assert_eq!(par.buggy_executions, seq.buggy_executions, "buggy count");
    assert_eq!(par.completed, seq.completed, "completed");
    assert_eq!(par.completed_bound, seq.completed_bound, "completed bound");
    assert_eq!(par.bound_history, seq.bound_history, "bound history");
    assert_eq!(par.max_stats, seq.max_stats, "max stats");
    // Sequential drivers report bugs in discovery order; the parallel
    // merge canonicalizes to (preemptions, faults, schedule). Compare
    // the sets.
    let canonical = |r: &SearchReport| {
        let mut bugs: Vec<_> = r
            .bugs
            .iter()
            .map(|b| (b.preemptions, b.faults, b.schedule.clone()))
            .collect();
        bugs.sort();
        bugs
    };
    assert_eq!(canonical(par), canonical(seq), "bug sets");
}

#[test]
fn icb_same_report_at_jobs_1_2_8() {
    for program in [buggy(), clean()] {
        let seq = run(&program, Strategy::Icb, SearchConfig::default(), 1);
        let par2 = run(&program, Strategy::Icb, SearchConfig::default(), 2);
        let par8 = run(&program, Strategy::Icb, SearchConfig::default(), 8);
        // Any two parallel worker counts: full report equality.
        assert_eq!(par2, par8, "parallel reports must be worker-count-free");
        // Sequential vs parallel: all order-independent fields.
        assert_order_independent_match(&par2, &seq);
    }
}

#[test]
fn dfs_same_report_at_jobs_1_2_8() {
    for program in [buggy(), clean()] {
        let seq = run(&program, Strategy::Dfs, SearchConfig::default(), 1);
        let par2 = run(&program, Strategy::Dfs, SearchConfig::default(), 2);
        let par8 = run(&program, Strategy::Dfs, SearchConfig::default(), 8);
        assert_eq!(par2, par8, "parallel reports must be worker-count-free");
        assert_order_independent_match(&par2, &seq);
    }
}

#[test]
fn random_same_report_at_any_parallel_worker_count() {
    // Parallel random walk derives one RNG stream per walk *index*, so
    // the sampled set — and therefore the whole report — is a function
    // of (seed, budget) alone, not of the worker count. (The sequential
    // driver threads a single RNG through the walks and samples a
    // different — equally valid — set; the two are not comparable.)
    let program = clean();
    let config = SearchConfig::with_max_executions(64);
    let strategy = Strategy::Random { seed: 0x1cb };
    let par2 = run(&program, strategy, config.clone(), 2);
    let par8 = run(&program, strategy, config, 8);
    assert_eq!(par2, par8, "parallel random must be worker-count-free");
    assert_eq!(par2.executions, 64);
}

#[test]
fn repeated_parallel_runs_are_identical() {
    // Same jobs count twice: the merge must not leak scheduling noise.
    let program = buggy();
    let a = run(&program, Strategy::Icb, SearchConfig::default(), 4);
    let b = run(&program, Strategy::Icb, SearchConfig::default(), 4);
    assert_eq!(a, b);
}

/// Records every `worker_stamp` and counts executions, to prove the
/// stitched stream lost and duplicated nothing.
#[derive(Default)]
struct StampAudit {
    stamps: Vec<(usize, u64)>,
    executions: usize,
}

impl SearchObserver for StampAudit {
    fn worker_stamp(&mut self, worker: usize, seq: u64, _at: std::time::Duration) {
        self.stamps.push((worker, seq));
    }
    fn execution_started(&mut self, _index: usize) {
        self.executions += 1;
    }
}

#[test]
fn worker_stamps_are_contiguous_per_worker() {
    for jobs in [2usize, 4, 8] {
        let program = clean();
        let mut audit = StampAudit::default();
        let report = Search::over(&program)
            .jobs(jobs)
            .observer(&mut audit)
            .run()
            .unwrap();
        assert_eq!(
            audit.stamps.len(),
            report.executions,
            "jobs={jobs}: one stamp per merged execution"
        );
        assert_eq!(audit.executions, report.executions, "jobs={jobs}");
        // Group by worker: each worker's sequence must be exactly
        // 1..=n with no gaps and no duplicates.
        let mut per_worker: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for (worker, seq) in &audit.stamps {
            assert!(*worker < jobs, "jobs={jobs}: worker id {worker} in range");
            per_worker.entry(*worker).or_default().push(*seq);
        }
        for (worker, mut seqs) in per_worker {
            seqs.sort_unstable();
            let expect: Vec<u64> = (1..=seqs.len() as u64).collect();
            assert_eq!(
                seqs, expect,
                "jobs={jobs}: worker {worker} stamps are 1-based and contiguous"
            );
        }
    }
}

/// Explains the report's first bug and renders the bundle-format JSON.
/// The explanation is a pure function of (program, schedule), so any two
/// reports agreeing on the minimal witness must yield identical bytes.
fn witness_json(program: &dyn ControlledProgram, report: &SearchReport) -> String {
    let bug = report.first_bug().expect("report carries a bug");
    ExplainedWitness::explain(program, &bug.schedule).to_json()
}

/// Observer that copies the live checkpoint file aside after its `at`-th
/// write, freezing the state a crash at that instant would leave behind.
struct FreezeCheckpoint {
    live: PathBuf,
    frozen: PathBuf,
    at: usize,
    seen: usize,
}

impl SearchObserver for FreezeCheckpoint {
    fn checkpoint_written(&mut self, _executions: usize) {
        self.seen += 1;
        if self.seen == self.at {
            std::fs::copy(&self.live, &self.frozen).expect("freeze checkpoint copy");
        }
    }
}

#[test]
fn explained_witness_json_is_byte_identical_across_worker_counts() {
    // The `explore explain` bundle promises byte-identical witness.json
    // no matter how many workers found the bug. Sequential and parallel
    // drivers agree on the canonical minimal witness, so the rendered
    // explanation — schedule, attribution, nearest-passing diff — must
    // agree byte for byte.
    let program = buggy();
    let seq = run(&program, Strategy::Icb, SearchConfig::default(), 1);
    let par2 = run(&program, Strategy::Icb, SearchConfig::default(), 2);
    let par8 = run(&program, Strategy::Icb, SearchConfig::default(), 8);
    let reference = witness_json(&program, &seq);
    assert!(!reference.is_empty());
    assert_eq!(
        witness_json(&program, &par2),
        reference,
        "jobs=2 witness.json must match jobs=1 byte for byte"
    );
    assert_eq!(
        witness_json(&program, &par8),
        reference,
        "jobs=8 witness.json must match jobs=1 byte for byte"
    );
}

#[test]
fn explained_witness_json_is_byte_identical_via_resume() {
    // Same contract across a crash: a search resumed from a mid-run
    // checkpoint reports the same minimal witness, hence the same
    // explanation bytes, as the uninterrupted run.
    let program = buggy();
    let reference = {
        let report = run(&program, Strategy::Icb, SearchConfig::default(), 1);
        witness_json(&program, &report)
    };

    let dir = std::env::temp_dir().join(format!("icb-witness-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let live = dir.join("live.ck");
    let frozen = dir.join("frozen.ck");
    let mut copier = FreezeCheckpoint {
        live: live.clone(),
        frozen: frozen.clone(),
        at: 2,
        seen: 0,
    };
    let full = Search::over(&program)
        .config(SearchConfig::default())
        .observer(&mut copier)
        .checkpoint(Checkpointer::new(&live, 1))
        .run()
        .unwrap();
    assert!(
        copier.seen >= 2,
        "search wrote too few checkpoints to freeze"
    );
    assert_eq!(
        witness_json(&program, &full),
        reference,
        "checkpointing must not perturb the witness"
    );

    let snapshot = SearchSnapshot::read_from(&frozen).expect("read frozen checkpoint");
    let resumed = Search::over(&program)
        .resume_from(snapshot)
        .run()
        .expect("resume icb");
    assert_eq!(
        witness_json(&program, &resumed),
        reference,
        "resumed witness.json must match the uninterrupted run byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One injected fault allowed on top of the usual preemption bounds.
fn fault_config() -> SearchConfig {
    SearchConfig {
        fault_bound: 1,
        ..SearchConfig::default()
    }
}

#[test]
fn fault_bound_same_report_at_jobs_1_2_8() {
    let program = FaultyCounters { n: 2, k: 2 };
    // The lost-update bug needs an injected fault: the exhaustive search
    // at fault_bound 0 completes without finding anything.
    let baseline = run(&program, Strategy::Icb, SearchConfig::default(), 1);
    assert!(baseline.completed, "{baseline}");
    assert!(
        baseline.bugs.is_empty(),
        "bug must be invisible without faults: {baseline}"
    );

    let seq = run(&program, Strategy::Icb, fault_config(), 1);
    let par2 = run(&program, Strategy::Icb, fault_config(), 2);
    let par8 = run(&program, Strategy::Icb, fault_config(), 8);
    assert_eq!(
        par2, par8,
        "parallel fault-bound reports must be worker-count-free"
    );
    assert_order_independent_match(&par2, &seq);
    let bug = seq.first_bug().expect("fault bug found");
    assert_eq!(
        (bug.preemptions, bug.faults),
        (0, 1),
        "the iterative (c, f) levels surface the minimum witness first"
    );
}

#[test]
fn fault_witness_json_is_byte_identical_across_worker_counts() {
    let program = FaultyCounters { n: 2, k: 3 };
    let seq = run(&program, Strategy::Icb, fault_config(), 1);
    let par2 = run(&program, Strategy::Icb, fault_config(), 2);
    let par8 = run(&program, Strategy::Icb, fault_config(), 8);
    let reference = witness_json(&program, &seq);
    assert!(
        reference.contains("\"fault_steps\": ["),
        "witness records its injected faults: {reference}"
    );
    assert_eq!(
        witness_json(&program, &par2),
        reference,
        "jobs=2 fault witness.json must match jobs=1 byte for byte"
    );
    assert_eq!(
        witness_json(&program, &par8),
        reference,
        "jobs=8 fault witness.json must match jobs=1 byte for byte"
    );
}

#[test]
fn fault_witness_json_is_byte_identical_via_resume() {
    // The resume contract with fault injection on: a search resumed from
    // a mid-run checkpoint (the state a kill -9 leaves behind) reports
    // the same minimal fault witness, hence the same explanation bytes,
    // as the uninterrupted run. The checkpoint carries the fault bound,
    // so the resumed search needs no re-configuration.
    let program = FaultyCounters { n: 2, k: 3 };
    let reference = {
        let report = run(&program, Strategy::Icb, fault_config(), 1);
        witness_json(&program, &report)
    };
    assert!(reference.contains("\"fault_steps\": ["), "{reference}");

    let dir = std::env::temp_dir().join(format!("icb-fault-witness-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let live = dir.join("live.ck");
    let frozen = dir.join("frozen.ck");
    let mut copier = FreezeCheckpoint {
        live: live.clone(),
        frozen: frozen.clone(),
        at: 2,
        seen: 0,
    };
    let full = Search::over(&program)
        .config(fault_config())
        .observer(&mut copier)
        .checkpoint(Checkpointer::new(&live, 1))
        .run()
        .unwrap();
    assert!(
        copier.seen >= 2,
        "search wrote too few checkpoints to freeze"
    );
    assert_eq!(
        witness_json(&program, &full),
        reference,
        "checkpointing must not perturb the fault witness"
    );

    let snapshot = SearchSnapshot::read_from(&frozen).expect("read frozen checkpoint");
    let resumed = Search::over(&program)
        .resume_from(snapshot)
        .run()
        .expect("resume icb with fault bound");
    assert_eq!(
        witness_json(&program, &resumed),
        reference,
        "resumed fault witness.json must match the uninterrupted run byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequential_runs_emit_no_worker_stamps() {
    let program = clean();
    let mut audit = StampAudit::default();
    let report = Search::over(&program).observer(&mut audit).run().unwrap();
    assert!(
        audit.stamps.is_empty(),
        "jobs=1 streams must stay byte-identical to pre-parallel output"
    );
    assert_eq!(audit.executions, report.executions);
}
