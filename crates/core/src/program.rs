//! The interface between programs under test and search strategies.

use crate::coverage::StateSink;
use crate::telemetry::{SearchObserver, SiteId};
use crate::tid::Tid;
use crate::trace::ExecutionResult;

/// A scheduling point: the information available to the scheduler when it
/// must decide which thread runs next.
///
/// A point is reached after every *step* of the program, where a step is
/// the execution of one shared-variable access (Section 2 of the paper) —
/// or, under the sound reduction of Section 3.1, one synchronization
/// operation.
#[derive(Clone, Copy, Debug)]
pub struct SchedulePoint<'a> {
    /// Index of this point within the execution (0 = initial point).
    pub step_index: usize,
    /// The thread that executed the previous step; `None` at the initial
    /// point.
    pub current: Option<Tid>,
    /// Whether `current` is still enabled. Choosing a different thread
    /// while this is `true` incurs a preemption.
    pub current_enabled: bool,
    /// The enabled threads, sorted by id. Never empty: if no thread is
    /// enabled the program reports termination or deadlock instead of
    /// consulting the scheduler.
    pub enabled: &'a [Tid],
}

impl SchedulePoint<'_> {
    /// Returns `true` if `tid` is enabled at this point.
    pub fn is_enabled(&self, tid: Tid) -> bool {
        self.enabled.contains(&tid)
    }

    /// The default, preemption-free policy: keep running the current
    /// thread while it is enabled; otherwise run the lowest-id enabled
    /// thread (a nonpreempting context switch).
    ///
    /// Starting from any state, following this policy drives a terminating
    /// program to completion without incurring a single preemption — the
    /// reason context bounding does not limit execution depth.
    pub fn default_choice(&self) -> Tid {
        match self.current {
            Some(c) if self.current_enabled => c,
            _ => self.enabled[0],
        }
    }
}

/// A fallible operation about to execute: the information available to
/// the scheduler when it must decide whether to inject a fault.
///
/// Program hosts reach a fault point immediately after the scheduling
/// decision of a step whose operation is *designated fallible* — a
/// `try_lock` (may fail even when the lock is free), a condvar wait (may
/// wake spuriously), a bounded channel send (may observe a full
/// channel), or an explicit `fail_point(site)`. The scheduler answers
/// with a binary decision, making environmental failure a searched
/// dimension exactly like preemption.
#[derive(Clone, Copy, Debug)]
pub struct FaultPoint {
    /// Index of the step this fault decision belongs to (the same index
    /// the preceding [`SchedulePoint`] carried).
    pub step_index: usize,
    /// The thread executing the fallible operation.
    pub tid: Tid,
    /// The site of the fallible operation, as resolved by the host.
    pub site: SiteId,
}

/// Decides which thread runs at every scheduling point.
///
/// Implementations range from trivial (replay a fixed schedule, pick at
/// random) to full search drivers (the nested depth-first exploration
/// inside [`crate::search::IcbSearch`]).
pub trait Scheduler {
    /// Chooses one of `point.enabled`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if they cannot make a choice (e.g. a
    /// replay scheduler observing a divergent execution); the driving
    /// search treats this as a hard error in the program under test.
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid;

    /// Decides whether to inject a fault into the fallible operation at
    /// `point`. Called by the program host right after
    /// [`pick`](Scheduler::pick) chose the thread, for the same step,
    /// and only for designated fallible operations.
    ///
    /// The default never injects — schedulers that predate fault
    /// bounding (and any search at fault bound 0) behave exactly as
    /// before.
    fn decide_fault(&mut self, point: FaultPoint) -> bool {
        let _ = point;
        false
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        (**self).pick(point)
    }

    fn decide_fault(&mut self, point: FaultPoint) -> bool {
        (**self).decide_fault(point)
    }
}

/// A program whose scheduling is fully controlled by a [`Scheduler`].
///
/// This is the *stateless checker* interface (the paper's CHESS): the
/// search cannot capture or restore states, only re-execute the program
/// from its unique initial state under different schedules. Both the
/// controlled runtime (`icb-runtime`) and the explicit-state VM
/// (`icb-statevm`) implement it.
///
/// # Contract
///
/// * The program must be deterministic apart from scheduling: the same
///   sequence of choices must yield the identical execution.
/// * At every scheduling point, the program must consult the scheduler
///   with the accurate enabled set and record the decision in the
///   returned trace.
/// * The program must terminate under every schedule (possibly via the
///   step limit escape hatch of its host).
pub trait ControlledProgram {
    /// Runs one complete execution under `scheduler`, reporting every
    /// visited state fingerprint to `sink`.
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult;

    /// Like [`execute`](ControlledProgram::execute), additionally
    /// reporting in-execution telemetry (currently: data races, through
    /// [`SearchObserver::race_detected`]) to `observer`.
    ///
    /// The default implementation ignores the observer; hosts with an
    /// in-execution event source (the controlled runtime's race detector)
    /// override it.
    fn execute_observed(
        &self,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn StateSink,
        observer: &mut dyn SearchObserver,
    ) -> ExecutionResult {
        let _ = observer;
        self.execute(scheduler, sink)
    }

    /// Number of executions to charge per `execute` call when accounting
    /// against execution budgets. Always 1 for real programs; exists so
    /// wrappers (e.g. multi-replay reducers) can be honest about cost.
    fn executions_per_run(&self) -> usize {
        1
    }

    /// Whether equal state fingerprints imply equal concrete states.
    ///
    /// The explicit-state VM hashes the full concrete state, so a
    /// fingerprint match there identifies the state exactly and
    /// fingerprint-based subtree pruning is sound. The stateless
    /// runtime's happens-before fingerprints are a heuristic (equal
    /// fingerprints mean equivalent interleavings of the *prefix*, not
    /// an identical continuation), so pruning on them may miss states.
    /// The default is the conservative `false`; only hosts with exact
    /// state hashing override it.
    fn fingerprints_are_exact(&self) -> bool {
        false
    }
}

impl<P: ControlledProgram + ?Sized> ControlledProgram for &P {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        (**self).execute(scheduler, sink)
    }

    fn execute_observed(
        &self,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn StateSink,
        observer: &mut dyn SearchObserver,
    ) -> ExecutionResult {
        (**self).execute_observed(scheduler, sink, observer)
    }

    fn executions_per_run(&self) -> usize {
        (**self).executions_per_run()
    }

    fn fingerprints_are_exact(&self) -> bool {
        (**self).fingerprints_are_exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_choice_continues_current() {
        let enabled = [Tid(0), Tid(2)];
        let p = SchedulePoint {
            step_index: 3,
            current: Some(Tid(2)),
            current_enabled: true,
            enabled: &enabled,
        };
        assert_eq!(p.default_choice(), Tid(2));
    }

    #[test]
    fn default_choice_switches_when_current_disabled() {
        let enabled = [Tid(1), Tid(3)];
        let p = SchedulePoint {
            step_index: 3,
            current: Some(Tid(0)),
            current_enabled: false,
            enabled: &enabled,
        };
        assert_eq!(p.default_choice(), Tid(1));
    }

    #[test]
    fn default_choice_at_initial_point() {
        let enabled = [Tid(0), Tid(1)];
        let p = SchedulePoint {
            step_index: 0,
            current: None,
            current_enabled: false,
            enabled: &enabled,
        };
        assert_eq!(p.default_choice(), Tid(0));
    }

    #[test]
    fn is_enabled_checks_membership() {
        let enabled = [Tid(0), Tid(1)];
        let p = SchedulePoint {
            step_index: 0,
            current: None,
            current_enabled: false,
            enabled: &enabled,
        };
        assert!(p.is_enabled(Tid(1)));
        assert!(!p.is_enabled(Tid(2)));
    }
}
