//! Search telemetry: the [`SearchObserver`] hook interface.
//!
//! Every search strategy reports its progress through an observer —
//! execution lifecycles, per-bound statistics, bug discoveries, work-queue
//! movements and race reports all flow through the same object-safe
//! trait. The paper's entire evaluation (Figures 1–6, Tables 1–2) is
//! built from exactly this data; exposing it as a first-class stream lets
//! the CLI watch a long search live, lets the benchmark harness source
//! its figures without duplicated tallies, and lets downstream users
//! export per-bound timing for offline analysis.
//!
//! The default implementation of every hook is a no-op, so
//! [`NoopObserver`] costs nothing beyond a virtual call per event — and
//! strategies batch their hot-path events (one `execution_started` /
//! `execution_finished` pair per execution) so the overhead is
//! unmeasurable next to the execution itself.
//!
//! Concrete observers (an in-memory metrics recorder, a JSONL event
//! sink, a rate-limited progress reporter) live in the `icb-telemetry`
//! crate; this module only defines the interface so that `icb-core`,
//! `icb-runtime` and `icb-race` can emit events without depending on any
//! sink implementation.

use std::time::Duration;

use crate::metrics::MetricsSnapshot;
use crate::search::{BoundStats, BugReport, QuarantinedTrace, SearchReport};
use crate::trace::{ExecStats, ExecutionOutcome};

/// The cumulative counters a resumed search starts from, reported once
/// through [`SearchObserver::search_resumed`] right after
/// `search_started`, before any execution of the new segment.
///
/// Consumers that extrapolate from counters (progress reporters, report
/// stitchers) use this to distinguish "work done in this segment" from
/// "work inherited from the checkpoint" — an ETA computed as
/// `executions / elapsed` would otherwise count inherited executions
/// against this segment's wall clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Executions completed before the checkpoint was taken.
    pub executions: usize,
    /// Distinct states covered before the checkpoint was taken.
    pub distinct_states: usize,
    /// The preemption bound the search resumes into (0 for strategies
    /// without bounds).
    pub bound: usize,
    /// Executions already spent at that bound before the checkpoint.
    pub bound_executions: usize,
}

/// A program location / synchronization-operation label, the unit of
/// attribution for the exploration profiler.
///
/// Sites are resolved by the program host at every scheduling point —
/// the runtime engine labels the pending synchronization operation of
/// the chosen task (`acquire#3` = acquire of lock 3, from any thread),
/// the VM adapter labels the chosen thread's next shared instruction
/// (`t1:load@14` = thread 1's load at pc 14). Aggregating executions,
/// preemptions and coverage gains per site is what tells you *which*
/// preemption points dominate a search (the question behind the paper's
/// Figures 7–9 and behind thread/variable-bounding heuristics).
///
/// The type is plain-old-data (`Copy`, `Eq`, `Hash`, `Ord`) so it can be
/// carried on every [`TraceEntry`](crate::TraceEntry) and used directly
/// as a histogram key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId {
    /// Operation class (`"acquire"`, `"load"`, …). Interned as a static
    /// string by the resolving host.
    pub class: &'static str,
    /// The resource index or program counter the class refers to.
    pub object: u32,
    /// Owning thread for per-thread locations, [`SiteId::ANY_THREAD`]
    /// for sites shared by all threads (e.g. a lock).
    pub thread: u32,
}

impl SiteId {
    /// Marker for sites not tied to one thread.
    pub const ANY_THREAD: u32 = u32::MAX;

    /// The site of an operation whose location could not be resolved.
    pub const UNKNOWN: SiteId = SiteId {
        class: "?",
        object: 0,
        thread: SiteId::ANY_THREAD,
    };

    /// A thread-agnostic site: an operation `class` on resource `object`.
    pub const fn op(class: &'static str, object: u32) -> Self {
        SiteId {
            class,
            object,
            thread: SiteId::ANY_THREAD,
        }
    }

    /// A per-thread program location: `thread` about to execute the
    /// instruction `class` at program counter `pc`.
    pub const fn at(thread: u32, class: &'static str, pc: u32) -> Self {
        SiteId {
            class,
            object: pc,
            thread,
        }
    }

    /// Returns `true` for the [`SiteId::UNKNOWN`] placeholder.
    pub fn is_unknown(&self) -> bool {
        *self == SiteId::UNKNOWN
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_unknown() {
            write!(f, "?")
        } else if self.thread == SiteId::ANY_THREAD {
            write!(f, "{}#{}", self.class, self.object)
        } else {
            write!(f, "t{}:{}@{}", self.thread, self.class, self.object)
        }
    }
}

/// How a scheduling decision relates to the previously running thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChoiceKind {
    /// The scheduler kept the running thread (or this is the initial
    /// point of an execution with no previous thread).
    Continue,
    /// A nonpreempting context switch: the previous thread blocked or
    /// terminated, so the switch is free.
    Switch,
    /// A preempting context switch: the previous thread was still
    /// enabled — the quantity ICB bounds.
    Preemption,
}

impl ChoiceKind {
    /// Kebab-case tag (`continue` / `switch` / `preemption`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ChoiceKind::Continue => "continue",
            ChoiceKind::Switch => "switch",
            ChoiceKind::Preemption => "preemption",
        }
    }
}

impl std::fmt::Display for ChoiceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The wall-clock phases a profiled execution divides into.
///
/// Reported through [`SearchObserver::phase_time`] once per phase per
/// execution (by hosts that support timing), so a profiler can answer
/// "where does the time go": re-running the program under a schedule
/// ([`Phase::Replay`]), asking the strategy's scheduler to pick
/// ([`Phase::Selection`]), or checking happens-before races
/// ([`Phase::RaceDetection`]). Whatever the three phases do not cover is
/// the host's own bookkeeping ("accounted-other" in the report).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Executing the program under test (task execution / VM stepping),
    /// minus the race-detection time spent inside it.
    Replay,
    /// Time spent inside `Scheduler::pick` — the strategy's decision
    /// logic.
    Selection,
    /// Time spent in the happens-before race detector.
    RaceDetection,
}

impl Phase {
    /// Kebab-case tag (`replay` / `selection` / `race-detection`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Replay => "replay",
            Phase::Selection => "selection",
            Phase::RaceDetection => "race-detection",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a search stopped before exhausting its schedule space.
///
/// Reported through [`SearchObserver::search_aborted`] so a consumer can
/// distinguish a timed-out search from an exhausted one — the
/// [`SearchReport`](crate::search::SearchReport) of a timed-out search
/// additionally has `truncated` set, because its coverage numbers are
/// lower bounds only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// [`SearchConfig::max_duration`](crate::search::SearchConfig) elapsed.
    Timeout,
    /// [`SearchConfig::max_executions`](crate::search::SearchConfig) was
    /// reached.
    ExecutionBudget,
    /// A bug was found under
    /// [`SearchConfig::stop_on_first_bug`](crate::search::SearchConfig).
    FirstBug,
    /// The operator interrupted the search (Ctrl-C); a checkpointing
    /// search writes a final snapshot before stopping, so the run can be
    /// continued with `resume`.
    Interrupted,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Timeout => write!(f, "timeout"),
            AbortReason::ExecutionBudget => write!(f, "execution-budget"),
            AbortReason::FirstBug => write!(f, "first-bug"),
            AbortReason::Interrupted => write!(f, "interrupted"),
        }
    }
}

/// Receiver of structured search events.
///
/// All hooks have no-op defaults: implement only what you need. The
/// trait is object-safe — strategies hold a `&mut dyn SearchObserver` —
/// and the event grammar obeys these invariants, which the test suite
/// asserts:
///
/// * `search_started` is the first event and `search_finished` the last;
/// * every `execution_started` is matched by exactly one
///   `execution_finished` with the same 1-based index;
/// * `bound_started`/`bound_completed` pairs nest between executions and
///   arrive in increasing bound order (ICB only);
/// * `bug_found` fires exactly once per *reported* bug, i.e. at most
///   [`SearchConfig::max_bug_reports`](crate::search::SearchConfig)
///   times, and the reported values equal the final
///   [`SearchReport::bugs`](crate::search::SearchReport);
/// * `bound_completed` values equal the final
///   [`SearchReport::bound_stats`](crate::search::SearchReport::bound_stats).
#[allow(unused_variables)]
pub trait SearchObserver {
    /// The search is starting; `strategy` is its report label.
    fn search_started(&mut self, strategy: &str) {}

    /// Execution number `index` (1-based) is about to run.
    fn execution_started(&mut self, index: usize) {}

    /// Execution number `index` finished with the given statistics and
    /// outcome; `distinct_states` is the cumulative coverage after it.
    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
    }

    /// ICB is starting preemption bound `bound` with `work_items` queued
    /// schedule prefixes to process.
    fn bound_started(&mut self, bound: usize, work_items: usize) {}

    /// ICB completed a preemption bound; `stats` is the row that will
    /// appear in [`SearchReport::bound_stats`], `wall_time` the time
    /// spent inside this bound.
    ///
    /// [`SearchReport::bound_stats`]: crate::search::SearchReport::bound_stats
    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {}

    /// A bug report was recorded (bounded by `max_bug_reports`; further
    /// buggy executions only increment the report's counter).
    fn bug_found(&mut self, bug: &BugReport) {}

    /// ICB deferred one work item (a schedule prefix whose exploration
    /// requires one more preemption) to the queue for `next_bound`.
    fn work_item_deferred(&mut self, next_bound: usize) {}

    /// The deferred work queue reached `depth` items (sampled after each
    /// processed work item; track the maximum for the high-water mark).
    fn work_queue_depth(&mut self, depth: usize) {}

    /// The happens-before race detector flagged a data race. Fires even
    /// when the runtime is configured to tolerate races
    /// (`fail_on_race = false`), which is what makes detector-silenced
    /// runs auditable.
    fn race_detected(&mut self, description: &str) {}

    /// A parallel search is about to replay the events of one worker
    /// execution: everything from the next `execution_started` through
    /// its `execution_finished` was produced by worker `worker`, where it
    /// was that worker's `seq`-th execution (1-based, contiguous per
    /// worker), finishing `at` after the parallel search began (stamped
    /// on the worker thread when the execution completed, *not* when the
    /// pump replayed it — arrival order is the only ordering the pump
    /// guarantees, so throughput-over-time series must use this stamp).
    /// Sequential searches (`jobs = 1`) never emit this, which keeps
    /// their event streams byte-identical to previous releases; sinks
    /// that persist it can prove a merged parallel log lost or
    /// duplicated nothing by checking per-worker contiguity.
    fn worker_stamp(&mut self, worker: usize, seq: u64, at: Duration) {}

    /// Opt-in gate for the per-step [`choice_point`] /
    /// [`preemption_taken`] events. Strategies batch these like
    /// `execution_started`: one pass over the finished execution's trace,
    /// and only when an attached observer returns `true` here — so a
    /// [`NoopObserver`] search never pays for attribution.
    ///
    /// [`choice_point`]: SearchObserver::choice_point
    /// [`preemption_taken`]: SearchObserver::preemption_taken
    fn wants_choice_points(&self) -> bool {
        false
    }

    /// Opt-in gate for [`phase_time`](SearchObserver::phase_time):
    /// program hosts only start their phase timers when an attached
    /// observer returns `true` here.
    fn wants_phase_timing(&self) -> bool {
        false
    }

    /// One scheduling decision of the just-finished execution: the op at
    /// `site` was chosen while the search was exploring preemption bound
    /// `bound` (0 for strategies without bounds), and the decision was a
    /// continuation, free switch or preemption per `kind`.
    ///
    /// Gated by [`wants_choice_points`](SearchObserver::wants_choice_points);
    /// emitted in trace order between the execution's `execution_started`
    /// and `execution_finished`.
    fn choice_point(&mut self, site: SiteId, bound: usize, kind: ChoiceKind) {}

    /// A preemption was taken against the thread whose most recent
    /// operation ran at `site` — the victim's location, which is what a
    /// per-site preemption histogram wants to count. Fires immediately
    /// after the corresponding `choice_point` with
    /// [`ChoiceKind::Preemption`].
    fn preemption_taken(&mut self, site: SiteId) {}

    /// A fault was injected into the fallible operation at `site`
    /// during step `step` of the just-finished execution. Emitted once
    /// per injected fault, in trace order, between the execution's
    /// `execution_started` and `execution_finished`. Searches at fault
    /// bound 0 never inject, so their event streams are unchanged.
    fn fault_injected(&mut self, site: SiteId, step: usize) {}

    /// A parallel worker caught a panic escaping the program under test
    /// (not a replay divergence — those are quarantined as usual). The
    /// item is retried once and then quarantined; `message` is the
    /// panic payload rendered as text.
    fn worker_panic(&mut self, worker: usize, message: &str) {}

    /// The just-finished execution spent `elapsed` inside `phase`.
    /// Gated by [`wants_phase_timing`](SearchObserver::wants_phase_timing);
    /// hosts emit at most one event per phase per execution.
    fn phase_time(&mut self, phase: Phase, elapsed: Duration) {}

    /// The search is stopping before exhausting its space.
    fn search_aborted(&mut self, reason: AbortReason) {}

    /// The search resumed from a checkpoint whose cumulative counters
    /// are in `info`. Fires at most once, immediately after
    /// `search_started` and before any `execution_started` of the new
    /// segment.
    fn search_resumed(&mut self, info: &ResumeInfo) {}

    /// A checkpoint covering everything up to (cumulative) execution
    /// number `executions` was durably written.
    fn checkpoint_written(&mut self, executions: usize) {}

    /// Replay diverged; the search forfeits the subtree under
    /// `quarantined.schedule` and keeps going. Fires once per
    /// quarantined prefix, after the diverging execution's
    /// `execution_finished`.
    fn trace_quarantined(&mut self, quarantined: &QuarantinedTrace) {}

    /// The fingerprint cache pruned `count` work item(s): their subtrees
    /// were already covered by an earlier (or concurrent) exploration.
    fn cache_hit(&mut self, count: usize) {}

    /// The fingerprint cache recorded `count` new work-item subtree(s).
    fn cache_store(&mut self, count: usize) {}

    /// The certification ledger answered the whole search: the program
    /// is already certified bug-free at preemption bound `bound`
    /// (`None` = certified exhaustively). No executions will run.
    fn bound_certified(&mut self, bound: Option<usize>) {}

    /// A point-in-time copy of the live [`MetricsRegistry`] attached to
    /// the search. Emitted by the [`MetricsBridge`] at checkpoint
    /// cadence, after each completed bound, and once right before
    /// `search_finished` — only when a registry is attached, so searches
    /// without one keep their event streams byte-identical to previous
    /// releases.
    ///
    /// [`MetricsRegistry`]: crate::metrics::MetricsRegistry
    /// [`MetricsBridge`]: crate::metrics::MetricsBridge
    fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {}

    /// The search is over; `report` is the final report about to be
    /// returned to the caller.
    fn search_finished(&mut self, report: &SearchReport) {}
}

/// The zero-cost default observer: ignores every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl SearchObserver for NoopObserver {}

impl<O: SearchObserver + ?Sized> SearchObserver for &mut O {
    fn search_started(&mut self, strategy: &str) {
        (**self).search_started(strategy)
    }
    fn execution_started(&mut self, index: usize) {
        (**self).execution_started(index)
    }
    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        (**self).execution_finished(index, stats, outcome, distinct_states)
    }
    fn bound_started(&mut self, bound: usize, work_items: usize) {
        (**self).bound_started(bound, work_items)
    }
    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        (**self).bound_completed(stats, wall_time)
    }
    fn bug_found(&mut self, bug: &BugReport) {
        (**self).bug_found(bug)
    }
    fn work_item_deferred(&mut self, next_bound: usize) {
        (**self).work_item_deferred(next_bound)
    }
    fn work_queue_depth(&mut self, depth: usize) {
        (**self).work_queue_depth(depth)
    }
    fn race_detected(&mut self, description: &str) {
        (**self).race_detected(description)
    }
    fn worker_stamp(&mut self, worker: usize, seq: u64, at: Duration) {
        (**self).worker_stamp(worker, seq, at)
    }
    fn wants_choice_points(&self) -> bool {
        (**self).wants_choice_points()
    }
    fn wants_phase_timing(&self) -> bool {
        (**self).wants_phase_timing()
    }
    fn choice_point(&mut self, site: SiteId, bound: usize, kind: ChoiceKind) {
        (**self).choice_point(site, bound, kind)
    }
    fn preemption_taken(&mut self, site: SiteId) {
        (**self).preemption_taken(site)
    }
    fn fault_injected(&mut self, site: SiteId, step: usize) {
        (**self).fault_injected(site, step)
    }
    fn worker_panic(&mut self, worker: usize, message: &str) {
        (**self).worker_panic(worker, message)
    }
    fn phase_time(&mut self, phase: Phase, elapsed: Duration) {
        (**self).phase_time(phase, elapsed)
    }
    fn search_aborted(&mut self, reason: AbortReason) {
        (**self).search_aborted(reason)
    }
    fn search_resumed(&mut self, info: &ResumeInfo) {
        (**self).search_resumed(info)
    }
    fn checkpoint_written(&mut self, executions: usize) {
        (**self).checkpoint_written(executions)
    }
    fn trace_quarantined(&mut self, quarantined: &QuarantinedTrace) {
        (**self).trace_quarantined(quarantined)
    }
    fn cache_hit(&mut self, count: usize) {
        (**self).cache_hit(count)
    }
    fn cache_store(&mut self, count: usize) {
        (**self).cache_store(count)
    }
    fn bound_certified(&mut self, bound: Option<usize>) {
        (**self).bound_certified(bound)
    }
    fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        (**self).metrics_snapshot(snapshot)
    }
    fn search_finished(&mut self, report: &SearchReport) {
        (**self).search_finished(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_accepts_every_event() {
        let mut o = NoopObserver;
        o.search_started("x");
        o.execution_started(1);
        o.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 0);
        o.bound_started(0, 1);
        o.work_item_deferred(1);
        o.work_queue_depth(3);
        o.race_detected("r/w on x");
        o.search_aborted(AbortReason::Timeout);
    }

    #[test]
    fn abort_reason_displays() {
        assert_eq!(AbortReason::Timeout.to_string(), "timeout");
        assert_eq!(AbortReason::ExecutionBudget.to_string(), "execution-budget");
        assert_eq!(AbortReason::FirstBug.to_string(), "first-bug");
    }

    #[test]
    fn site_ids_display_by_kind() {
        assert_eq!(SiteId::op("acquire", 3).to_string(), "acquire#3");
        assert_eq!(SiteId::at(1, "load", 14).to_string(), "t1:load@14");
        assert_eq!(SiteId::UNKNOWN.to_string(), "?");
        assert!(SiteId::UNKNOWN.is_unknown());
        assert!(!SiteId::op("acquire", 3).is_unknown());
    }

    #[test]
    fn choice_kind_and_phase_tags() {
        assert_eq!(ChoiceKind::Continue.as_str(), "continue");
        assert_eq!(ChoiceKind::Switch.as_str(), "switch");
        assert_eq!(ChoiceKind::Preemption.to_string(), "preemption");
        assert_eq!(Phase::Replay.as_str(), "replay");
        assert_eq!(Phase::Selection.as_str(), "selection");
        assert_eq!(Phase::RaceDetection.to_string(), "race-detection");
    }

    #[test]
    fn profiling_gates_default_off_and_forward_through_references() {
        struct Wanting;
        impl SearchObserver for Wanting {
            fn wants_choice_points(&self) -> bool {
                true
            }
            fn wants_phase_timing(&self) -> bool {
                true
            }
        }
        assert!(!NoopObserver.wants_choice_points());
        assert!(!NoopObserver.wants_phase_timing());
        // The blanket `&mut O` impl must forward the gates — a default
        // there would silently disable profiling behind references.
        let mut w = Wanting;
        let via_ref: &mut dyn SearchObserver = &mut w;
        assert!(via_ref.wants_choice_points());
        assert!(via_ref.wants_phase_timing());
        via_ref.choice_point(SiteId::UNKNOWN, 0, ChoiceKind::Continue);
        via_ref.preemption_taken(SiteId::op("acquire", 0));
        via_ref.phase_time(Phase::Replay, Duration::ZERO);
    }
}
