//! Search telemetry: the [`SearchObserver`] hook interface.
//!
//! Every search strategy reports its progress through an observer —
//! execution lifecycles, per-bound statistics, bug discoveries, work-queue
//! movements and race reports all flow through the same object-safe
//! trait. The paper's entire evaluation (Figures 1–6, Tables 1–2) is
//! built from exactly this data; exposing it as a first-class stream lets
//! the CLI watch a long search live, lets the benchmark harness source
//! its figures without duplicated tallies, and lets downstream users
//! export per-bound timing for offline analysis.
//!
//! The default implementation of every hook is a no-op, so
//! [`NoopObserver`] costs nothing beyond a virtual call per event — and
//! strategies batch their hot-path events (one `execution_started` /
//! `execution_finished` pair per execution) so the overhead is
//! unmeasurable next to the execution itself.
//!
//! Concrete observers (an in-memory metrics recorder, a JSONL event
//! sink, a rate-limited progress reporter) live in the `icb-telemetry`
//! crate; this module only defines the interface so that `icb-core`,
//! `icb-runtime` and `icb-race` can emit events without depending on any
//! sink implementation.

use std::time::Duration;

use crate::search::{BoundStats, BugReport, SearchReport};
use crate::trace::{ExecStats, ExecutionOutcome};

/// Why a search stopped before exhausting its schedule space.
///
/// Reported through [`SearchObserver::search_aborted`] so a consumer can
/// distinguish a timed-out search from an exhausted one — the
/// [`SearchReport`](crate::search::SearchReport) of a timed-out search
/// additionally has `truncated` set, because its coverage numbers are
/// lower bounds only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// [`SearchConfig::max_duration`](crate::search::SearchConfig) elapsed.
    Timeout,
    /// [`SearchConfig::max_executions`](crate::search::SearchConfig) was
    /// reached.
    ExecutionBudget,
    /// A bug was found under
    /// [`SearchConfig::stop_on_first_bug`](crate::search::SearchConfig).
    FirstBug,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Timeout => write!(f, "timeout"),
            AbortReason::ExecutionBudget => write!(f, "execution-budget"),
            AbortReason::FirstBug => write!(f, "first-bug"),
        }
    }
}

/// Receiver of structured search events.
///
/// All hooks have no-op defaults: implement only what you need. The
/// trait is object-safe — strategies hold a `&mut dyn SearchObserver` —
/// and the event grammar obeys these invariants, which the test suite
/// asserts:
///
/// * `search_started` is the first event and `search_finished` the last;
/// * every `execution_started` is matched by exactly one
///   `execution_finished` with the same 1-based index;
/// * `bound_started`/`bound_completed` pairs nest between executions and
///   arrive in increasing bound order (ICB only);
/// * `bug_found` fires exactly once per *reported* bug, i.e. at most
///   [`SearchConfig::max_bug_reports`](crate::search::SearchConfig)
///   times, and the reported values equal the final
///   [`SearchReport::bugs`](crate::search::SearchReport);
/// * `bound_completed` values equal the final
///   [`SearchReport::bound_stats`](crate::search::SearchReport::bound_stats).
#[allow(unused_variables)]
pub trait SearchObserver {
    /// The search is starting; `strategy` is its report label.
    fn search_started(&mut self, strategy: &str) {}

    /// Execution number `index` (1-based) is about to run.
    fn execution_started(&mut self, index: usize) {}

    /// Execution number `index` finished with the given statistics and
    /// outcome; `distinct_states` is the cumulative coverage after it.
    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
    }

    /// ICB is starting preemption bound `bound` with `work_items` queued
    /// schedule prefixes to process.
    fn bound_started(&mut self, bound: usize, work_items: usize) {}

    /// ICB completed a preemption bound; `stats` is the row that will
    /// appear in [`SearchReport::bound_stats`], `wall_time` the time
    /// spent inside this bound.
    ///
    /// [`SearchReport::bound_stats`]: crate::search::SearchReport::bound_stats
    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {}

    /// A bug report was recorded (bounded by `max_bug_reports`; further
    /// buggy executions only increment the report's counter).
    fn bug_found(&mut self, bug: &BugReport) {}

    /// ICB deferred one work item (a schedule prefix whose exploration
    /// requires one more preemption) to the queue for `next_bound`.
    fn work_item_deferred(&mut self, next_bound: usize) {}

    /// The deferred work queue reached `depth` items (sampled after each
    /// processed work item; track the maximum for the high-water mark).
    fn work_queue_depth(&mut self, depth: usize) {}

    /// The happens-before race detector flagged a data race. Fires even
    /// when the runtime is configured to tolerate races
    /// (`fail_on_race = false`), which is what makes detector-silenced
    /// runs auditable.
    fn race_detected(&mut self, description: &str) {}

    /// The search is stopping before exhausting its space.
    fn search_aborted(&mut self, reason: AbortReason) {}

    /// The search is over; `report` is the final report about to be
    /// returned to the caller.
    fn search_finished(&mut self, report: &SearchReport) {}
}

/// The zero-cost default observer: ignores every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl SearchObserver for NoopObserver {}

impl<O: SearchObserver + ?Sized> SearchObserver for &mut O {
    fn search_started(&mut self, strategy: &str) {
        (**self).search_started(strategy)
    }
    fn execution_started(&mut self, index: usize) {
        (**self).execution_started(index)
    }
    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        (**self).execution_finished(index, stats, outcome, distinct_states)
    }
    fn bound_started(&mut self, bound: usize, work_items: usize) {
        (**self).bound_started(bound, work_items)
    }
    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        (**self).bound_completed(stats, wall_time)
    }
    fn bug_found(&mut self, bug: &BugReport) {
        (**self).bug_found(bug)
    }
    fn work_item_deferred(&mut self, next_bound: usize) {
        (**self).work_item_deferred(next_bound)
    }
    fn work_queue_depth(&mut self, depth: usize) {
        (**self).work_queue_depth(depth)
    }
    fn race_detected(&mut self, description: &str) {
        (**self).race_detected(description)
    }
    fn search_aborted(&mut self, reason: AbortReason) {
        (**self).search_aborted(reason)
    }
    fn search_finished(&mut self, report: &SearchReport) {
        (**self).search_finished(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_accepts_every_event() {
        let mut o = NoopObserver;
        o.search_started("x");
        o.execution_started(1);
        o.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 0);
        o.bound_started(0, 1);
        o.work_item_deferred(1);
        o.work_queue_depth(3);
        o.race_detected("r/w on x");
        o.search_aborted(AbortReason::Timeout);
    }

    #[test]
    fn abort_reason_displays() {
        assert_eq!(AbortReason::Timeout.to_string(), "timeout");
        assert_eq!(AbortReason::ExecutionBudget.to_string(), "execution-budget");
        assert_eq!(AbortReason::FirstBug.to_string(), "first-bug");
    }
}
