//! First-class bug explanations: shrunk, attributed, serializable
//! witnesses.
//!
//! The paper's headline claim is that iterative context bounding yields
//! the *simplest explanation for the error* — a witness with the fewest
//! preemptions. This module turns that in-memory claim into a durable
//! artifact: an [`ExplainedWitness`] bundles the shrunk schedule (via
//! [`shrink::minimize_witness`](crate::shrink::minimize_witness)), the
//! fully attributed replay trace (per-step [`SiteId`] and enabled-set
//! history), and the *nearest passing schedule* — the execution obtained
//! by flipping the witness's last divergence point (its final preemption,
//! or its final injected fault when the fault-bound search found the
//! bug), which shows exactly where the passing and failing worlds
//! diverge.
//!
//! Everything here is a pure function of the program and the schedule:
//! replays are deterministic, renderings use no wall clock, and the JSON
//! field order is fixed — so the same bug explained from a `--jobs 1`
//! run, a `--jobs 8` run, or a resumed checkpoint produces byte-identical
//! artifacts.

use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;
use crate::program::ControlledProgram;
use crate::render;
use crate::replay::ReplayScheduler;
use crate::search::BugReport;
use crate::shrink::minimize_witness;
use crate::trace::{ExecutionOutcome, Schedule, Trace};
use crate::NullSink;

/// A bug witness enriched into a self-contained explanation: the shrunk
/// schedule, the attributed replay trace, and the nearest passing
/// schedule.
#[derive(Clone, Debug)]
pub struct ExplainedWitness {
    /// The minimal failing schedule prefix (see
    /// [`shrink::minimize_witness`](crate::shrink::minimize_witness)).
    pub schedule: Schedule,
    /// The outcome the shrunk schedule reproduces.
    pub outcome: ExecutionOutcome,
    /// The full replay trace of the shrunk schedule, carrying per-step
    /// [`SiteId`](crate::SiteId) attribution and enabled-set history.
    pub trace: Trace,
    /// Preemptions in the replayed execution (the quantity ICB
    /// minimizes).
    pub preemptions: usize,
    /// Faults injected in the replayed execution (the second component
    /// of the lexicographic `(preemptions, faults)` level the fault
    /// bound minimizes).
    pub faults: usize,
    /// Replays spent shrinking the witness.
    pub shrink_replays: usize,
    /// The execution obtained by flipping the witness's last divergence
    /// point — its final preemption or final injected fault, whichever
    /// comes later — when the witness has one.
    pub nearest_passing: Option<NearestPassing>,
}

/// The execution reached by *not* taking the witness's last divergence
/// point. For a preemption, the schedule continues the thread that was
/// preempted and then follows the preemption-free default policy; for an
/// injected fault, the same schedule is replayed with that fault
/// suppressed so the fallible operation succeeds.
#[derive(Clone, Debug)]
pub struct NearestPassing {
    /// The step index of the flipped preemption or suppressed fault —
    /// the first step at which the passing and failing executions
    /// diverge.
    pub flipped_step: usize,
    /// `true` when the flip suppressed an injected fault rather than
    /// undoing a preemption.
    pub flipped_fault: bool,
    /// The replayed prefix: the failing schedule up to `flipped_step`,
    /// then the previously running thread instead of the preemptor — or,
    /// for a fault flip, the choices through the faulted step with the
    /// fault removed.
    pub schedule: Schedule,
    /// How the flipped execution ended.
    pub outcome: ExecutionOutcome,
    /// The flipped execution's full trace.
    pub trace: Trace,
}

impl NearestPassing {
    /// Returns `true` if flipping the preemption actually avoided the
    /// bug (the common case; a program may still fail along the flipped
    /// schedule for an unrelated reason).
    pub fn passes(&self) -> bool {
        !self.outcome.is_bug()
    }
}

impl ExplainedWitness {
    /// Explains a failing schedule: shrinks it, replays the shrunk
    /// prefix to recover the attributed trace, and computes the nearest
    /// passing schedule.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` does not reproduce a bug on `program` (same
    /// contract as
    /// [`shrink::minimize_witness`](crate::shrink::minimize_witness)).
    pub fn explain(program: &dyn ControlledProgram, schedule: &Schedule) -> Self {
        Self::build(program, schedule, None)
    }

    /// Like [`explain`](ExplainedWitness::explain), additionally feeding
    /// the shrinking replay count into `registry` (the
    /// `icb_shrink_replays_total` counter), so live dashboards account
    /// for shrinking work instead of silently under-reporting replays.
    pub fn explain_with_metrics(
        program: &dyn ControlledProgram,
        schedule: &Schedule,
        registry: &MetricsRegistry,
    ) -> Self {
        Self::build(program, schedule, Some(registry))
    }

    /// Explains the witness carried by a search [`BugReport`].
    pub fn from_report(program: &dyn ControlledProgram, report: &BugReport) -> Self {
        Self::explain(program, &report.schedule)
    }

    fn build(
        program: &dyn ControlledProgram,
        schedule: &Schedule,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        let shrunk = minimize_witness(program, schedule);
        if let Some(r) = registry {
            r.shrink_replays_add(shrunk.replays);
        }
        let mut replay = ReplayScheduler::new(shrunk.schedule.clone());
        let result = program.execute(&mut replay, &mut NullSink);
        let nearest_passing = nearest_passing(program, &result.trace);
        ExplainedWitness {
            schedule: shrunk.schedule,
            outcome: result.outcome,
            preemptions: result.stats.preemptions,
            faults: result.stats.faults,
            shrink_replays: shrunk.replays,
            trace: result.trace,
            nearest_passing,
        }
    }

    /// Renders the witness as deterministic JSON (`witness.json` of an
    /// explanation bundle). Field order is fixed and no wall-clock data
    /// is included, so equal witnesses render byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n");
        let _ = writeln!(out, "  \"outcome\": \"{}\",", outcome_kind(&self.outcome));
        if let Some(detail) = outcome_detail(&self.outcome) {
            let _ = writeln!(out, "  \"detail\": {},", json_string(&detail));
        }
        let _ = writeln!(out, "  \"schedule\": {},", schedule_array(&self.schedule));
        let _ = writeln!(out, "  \"preemptions\": {},", self.preemptions);
        // Fault fields appear only on faulted witnesses, keeping
        // fault-free bundles byte-identical to previous releases.
        if self.faults > 0 {
            let _ = writeln!(out, "  \"faults\": {},", self.faults);
            let _ = writeln!(out, "  \"fault_steps\": {},", fault_array(&self.schedule));
        }
        let _ = writeln!(out, "  \"steps\": {},", self.trace.len());
        let _ = writeln!(out, "  \"shrink_replays\": {},", self.shrink_replays);
        out.push_str("  \"trace\": [\n");
        for (i, e) in self.trace.entries().iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"step\": {}, \"thread\": {}, \"site\": {}, \"enabled\": [{}], \
                 \"preemption\": {}, \"switch\": {}, \"blocking\": {}{}}}{}",
                i,
                e.chosen.index(),
                json_string(&e.site.to_string()),
                e.enabled
                    .iter()
                    .map(|t| t.index().to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                e.is_preemption(),
                e.is_context_switch(),
                e.blocking,
                if e.fault { ", \"fault\": true" } else { "" },
                if i + 1 < self.trace.len() { "," } else { "" },
            );
        }
        out.push_str("  ],\n");
        match &self.nearest_passing {
            None => out.push_str("  \"nearest_passing\": null\n"),
            Some(np) => {
                out.push_str("  \"nearest_passing\": {\n");
                let _ = writeln!(out, "    \"flipped_step\": {},", np.flipped_step);
                if np.flipped_fault {
                    out.push_str("    \"flipped_fault\": true,\n");
                }
                let _ = writeln!(out, "    \"schedule\": {},", schedule_array(&np.schedule));
                let _ = writeln!(out, "    \"outcome\": \"{}\",", outcome_kind(&np.outcome));
                let _ = writeln!(out, "    \"steps\": {},", np.trace.len());
                let _ = writeln!(out, "    \"passes\": {}", np.passes());
                out.push_str("  }\n");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders `EXPLANATION.md`: the lane rendering interleaved with
    /// site attribution, the preemption points, and the nearest-passing
    /// diff. `title` names the explained workload.
    pub fn to_markdown(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = write!(out, "# Explaining `{title}`\n\n");
        let _ = write!(out, "**Outcome:** {}\n\n", self.outcome);
        let faults = if self.faults > 0 {
            format!(", {} injected fault{}", self.faults, plural(self.faults))
        } else {
            String::new()
        };
        let _ = write!(
            out,
            "**Witness:** `{}` — {} preemption{}{}, {} steps. Shrunk to the decisive \
             prefix in {} replay{}; past the prefix the preemption-free default \
             policy reaches the bug on its own.\n\n",
            self.schedule,
            self.preemptions,
            plural(self.preemptions),
            faults,
            self.trace.len(),
            self.shrink_replays,
            plural(self.shrink_replays),
        );
        out.push_str("## Interleaving\n\n");
        out.push_str(
            "One column per step; `●` marks the running thread, `!` marks a step \
             reached by preempting the previous thread, `·` marks a thread that was \
             enabled but not chosen.",
        );
        if self.faults > 0 {
            out.push_str(" `×` marks a step whose fallible operation was made to fail.");
        }
        out.push_str("\n\n```text\n");
        out.push_str(&render::lanes(&self.trace));
        out.push_str("\n```\n\n");

        out.push_str("## Preemption points\n\n");
        let preemptions: Vec<(usize, &crate::TraceEntry)> = self
            .trace
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_preemption())
            .collect();
        if preemptions.is_empty() {
            out.push_str(
                "The failure needs no preemptions: the default scheduling policy \
                 reaches the bug on its own.\n\n",
            );
        } else {
            out.push_str("| step | preempted | ran instead | at site |\n");
            out.push_str("|-----:|-----------|-------------|---------|\n");
            for (i, e) in &preemptions {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | `{}` |",
                    i,
                    e.current.map_or_else(|| "-".into(), |t| t.to_string()),
                    e.chosen,
                    e.site,
                );
            }
            out.push('\n');
        }

        // The fault table appears only on faulted witnesses so fault-free
        // explanations render byte-identically to previous releases.
        if self.faults > 0 {
            out.push_str("## Injected faults\n\n");
            out.push_str(
                "Steps where the scheduler made a fallible operation fail (marked \
                 `×` in the lanes above).\n\n",
            );
            out.push_str("| step | thread | at site |\n");
            out.push_str("|-----:|--------|---------|\n");
            for (i, e) in self.trace.entries().iter().enumerate() {
                if e.fault {
                    let _ = writeln!(out, "| {} | {} | `{}` |", i, e.chosen, e.site);
                }
            }
            out.push('\n');
        }

        out.push_str("## Step attribution\n\n");
        out.push_str("| step | thread | site | enabled | notes |\n");
        out.push_str("|-----:|--------|------|---------|-------|\n");
        for (i, e) in self.trace.entries().iter().enumerate() {
            let enabled = e
                .enabled
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let mut notes = Vec::new();
            if e.is_preemption() {
                notes.push("preemption");
            } else if e.is_context_switch() {
                notes.push("switch");
            }
            if e.blocking {
                notes.push("blocking");
            }
            if e.fault {
                notes.push("fault");
            }
            let _ = writeln!(
                out,
                "| {} | {} | `{}` | {} | {} |",
                i,
                e.chosen,
                e.site,
                enabled,
                notes.join(", "),
            );
        }
        out.push('\n');

        out.push_str("## Nearest passing schedule\n\n");
        match &self.nearest_passing {
            None => out.push_str(
                "No preemption to flip: every schedule the default policy extends \
                 from the empty prefix reaches this bug, so there is no adjacent \
                 passing execution to diff against.\n",
            ),
            Some(np) => {
                let e = &self.trace.entries()[np.flipped_step];
                if np.flipped_fault {
                    let _ = write!(
                        out,
                        "Suppressing the final injected fault — letting {}'s operation \
                         at `{}` (step {}) succeed — yields `{}`:\n\n```text\n{}\n```\n\n",
                        e.chosen,
                        e.site,
                        np.flipped_step,
                        np.schedule,
                        render::lanes(&np.trace),
                    );
                    let _ = writeln!(
                        out,
                        "The executions diverge at step {}: the failing run faults at \
                         `{}` and ends with *{}* after {} steps; the fault-free run {} \
                         after {} steps ({}).",
                        np.flipped_step,
                        e.site,
                        self.outcome,
                        self.trace.len(),
                        if np.passes() {
                            "terminates cleanly"
                        } else {
                            "still fails"
                        },
                        np.trace.len(),
                        np.outcome,
                    );
                } else {
                    let _ = write!(
                        out,
                        "Flipping the final preemption — keeping {} running at step {} \
                         instead of preempting it at `{}` — yields `{}`:\n\n```text\n{}\n```\n\n",
                        e.current.map_or_else(|| "-".into(), |t| t.to_string()),
                        np.flipped_step,
                        e.site,
                        np.schedule,
                        render::lanes(&np.trace),
                    );
                    let _ = writeln!(
                        out,
                        "The executions diverge at step {}: the failing run preempts to \
                         {} and ends with *{}* after {} steps; the flipped run {} after \
                         {} steps ({}).",
                        np.flipped_step,
                        e.chosen,
                        self.outcome,
                        self.trace.len(),
                        if np.passes() {
                            "terminates cleanly"
                        } else {
                            "still fails"
                        },
                        np.trace.len(),
                        np.outcome,
                    );
                }
            }
        }
        out
    }
}

/// Flips the last divergence point of `trace`. For a preemption, replays
/// the schedule up to that step, then the thread that was running
/// (instead of the preemptor), then the preemption-free default policy.
/// For an injected fault occurring after the last preemption, replays
/// the same choices with that fault suppressed. Returns `None` for
/// witnesses with neither preemptions nor faults.
fn nearest_passing(program: &dyn ControlledProgram, trace: &Trace) -> Option<NearestPassing> {
    let last_preemption = trace.entries().iter().rposition(|e| e.is_preemption());
    let last_fault = trace.entries().iter().rposition(|e| e.fault);
    let (flipped_step, flipped_fault) = match (last_preemption, last_fault) {
        (Some(p), Some(f)) if p > f => (p, false),
        (_, Some(f)) => (f, true),
        (Some(p), None) => (p, false),
        (None, None) => return None,
    };
    let mut schedule = trace.schedule();
    if flipped_fault {
        // Keep the choices through the faulted step (the same thread
        // runs the same fallible operation, but now succeeds), drop the
        // fault, and let the default policy continue: the post-fault
        // suffix belongs to the failing world and would spuriously
        // diverge.
        schedule.truncate(flipped_step + 1);
        schedule.remove_fault(flipped_step);
    } else {
        let kept = trace.entries()[flipped_step].current?;
        schedule.truncate(flipped_step);
        schedule.push(kept);
    }
    let mut replay = ReplayScheduler::new(schedule.clone());
    let result = program.execute(&mut replay, &mut NullSink);
    Some(NearestPassing {
        flipped_step,
        flipped_fault,
        schedule,
        outcome: result.outcome,
        trace: result.trace,
    })
}

/// The stable kind tag of an outcome, shared with the JSONL telemetry
/// vocabulary.
pub fn outcome_kind(outcome: &ExecutionOutcome) -> &'static str {
    match outcome {
        ExecutionOutcome::Terminated => "terminated",
        ExecutionOutcome::AssertionFailure { .. } => "assertion-failure",
        ExecutionOutcome::Deadlock { .. } => "deadlock",
        ExecutionOutcome::DataRace { .. } => "data-race",
        ExecutionOutcome::StepLimitExceeded => "step-limit-exceeded",
        ExecutionOutcome::ReplayDivergence { .. } => "replay-divergence",
        ExecutionOutcome::WatchdogTimeout => "watchdog-timeout",
    }
}

/// The human-readable detail of a bug outcome (`None` for non-bugs).
pub fn outcome_detail(outcome: &ExecutionOutcome) -> Option<String> {
    outcome.is_bug().then(|| outcome.to_string())
}

fn schedule_array(schedule: &Schedule) -> String {
    let mut out = String::from("[");
    for (i, t) in schedule.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}", t.index());
    }
    out.push(']');
    out
}

/// The sorted step indices at which `schedule` injects faults, as a JSON
/// array.
fn fault_array(schedule: &Schedule) -> String {
    let mut out = String::from("[");
    for (i, s) in schedule.faults().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{s}");
    }
    out.push(']');
    out
}

/// Quotes and escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testprog::Counters;
    use crate::search::{Search, SearchConfig, Strategy};

    fn buggy() -> Counters {
        Counters {
            n: 2,
            k: 3,
            bug: Some((1, 0, 1)),
        }
    }

    fn first_bug(p: &Counters) -> BugReport {
        Search::over(p)
            .strategy(Strategy::Icb)
            .config(SearchConfig {
                max_executions: Some(100_000),
                ..SearchConfig::default()
            })
            .run()
            .expect("search runs")
            .first_bug()
            .cloned()
            .expect("bug found")
    }

    #[test]
    fn explains_a_witness_end_to_end() {
        let p = buggy();
        let bug = first_bug(&p);
        let w = ExplainedWitness::from_report(&p, &bug);
        assert!(w.outcome.is_bug());
        assert_eq!(
            w.preemptions, bug.preemptions,
            "shrinking preserves minimality"
        );
        assert!(w.schedule.len() <= bug.schedule.len());
        assert_eq!(w.trace.preemptions(), w.preemptions);
        let np = w
            .nearest_passing
            .as_ref()
            .expect("witness has a preemption");
        assert!(np.passes(), "flipping the only preemption avoids the bug");
        assert_ne!(
            np.trace.entries()[np.flipped_step].chosen,
            w.trace.entries()[np.flipped_step].chosen,
            "the executions diverge exactly at the flipped step"
        );
        // Prefixes agree before the flip.
        for i in 0..np.flipped_step {
            assert_eq!(np.trace.entries()[i].chosen, w.trace.entries()[i].chosen,);
        }
    }

    #[test]
    fn preemption_free_witness_has_no_neighbor() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((0, 0, 0)),
        };
        let bug = first_bug(&p);
        let w = ExplainedWitness::from_report(&p, &bug);
        assert_eq!(w.preemptions, 0);
        assert!(w.nearest_passing.is_none());
        assert!(w.to_markdown("counters").contains("No preemption to flip"));
    }

    #[test]
    fn explain_feeds_the_shrink_counter() {
        let p = buggy();
        let bug = first_bug(&p);
        let registry = MetricsRegistry::new();
        let w = ExplainedWitness::explain_with_metrics(&p, &bug.schedule, &registry);
        assert!(w.shrink_replays > 0);
        assert_eq!(registry.snapshot().shrink_replays, w.shrink_replays as u64);
    }

    #[test]
    fn witness_json_is_deterministic_and_well_formed() {
        let p = buggy();
        let bug = first_bug(&p);
        let a = ExplainedWitness::from_report(&p, &bug).to_json();
        let b = ExplainedWitness::from_report(&p, &bug).to_json();
        assert_eq!(
            a, b,
            "explanation is a pure function of (program, schedule)"
        );
        assert!(a.starts_with("{\n  \"version\": 1,\n"));
        assert!(a.contains("\"outcome\": \"assertion-failure\""));
        assert!(a.contains("\"nearest_passing\": {"));
        assert!(a.trim_end().ends_with('}'));
        // Balanced braces/brackets outside strings: cheap well-formedness check.
        let (mut depth, mut square, mut in_str, mut esc) = (0i32, 0i32, false, false);
        for c in a.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth += 1,
                '}' => depth -= 1,
                '[' => square += 1,
                ']' => square -= 1,
                _ => {}
            }
        }
        assert_eq!((depth, square, in_str), (0, 0, false));
    }

    #[test]
    fn markdown_interleaves_lanes_and_attribution() {
        let p = buggy();
        let bug = first_bug(&p);
        let md = ExplainedWitness::from_report(&p, &bug).to_markdown("counters");
        assert!(md.contains("# Explaining `counters`"));
        assert!(md.contains("## Interleaving"));
        assert!(md.contains("## Preemption points"));
        assert!(md.contains("## Step attribution"));
        assert!(md.contains("## Nearest passing schedule"));
        assert!(md.contains("T0 │"), "lane rendering embedded");
    }

    #[test]
    fn explains_a_fault_witness() {
        let p = crate::search::testprog::FaultyCounters { n: 2, k: 2 };
        let bug = Search::over(&p)
            .strategy(Strategy::Icb)
            .config(SearchConfig {
                max_executions: Some(100_000),
                fault_bound: 1,
                ..SearchConfig::default()
            })
            .run()
            .expect("search runs")
            .first_bug()
            .cloned()
            .expect("fault bug found");
        assert_eq!(
            (bug.preemptions, bug.faults),
            (0, 1),
            "minimum witness is preemption-free with a single fault"
        );
        let w = ExplainedWitness::from_report(&p, &bug);
        assert!(w.outcome.is_bug());
        assert_eq!((w.preemptions, w.faults), (0, 1));
        assert_eq!(w.schedule.fault_count(), 1);
        let np = w
            .nearest_passing
            .as_ref()
            .expect("fault witnesses always have a flip");
        assert!(np.flipped_fault);
        assert!(np.passes(), "suppressing the only fault avoids the bug");
        let json = w.to_json();
        assert!(json.contains("\"faults\": 1,"), "{json}");
        assert!(json.contains("\"fault_steps\": ["), "{json}");
        assert!(json.contains("\"fault\": true"), "{json}");
        assert!(json.contains("\"flipped_fault\": true,"), "{json}");
        let md = w.to_markdown("faulty-counters");
        assert!(md.contains("## Injected faults"), "{md}");
        assert!(md.contains("1 injected fault,"), "{md}");
        assert!(md.contains("Suppressing the final injected fault"), "{md}");
        assert!(md.contains('×'), "fault marker in lanes: {md}");
    }

    #[test]
    fn fault_free_bundles_render_without_fault_fields() {
        let p = buggy();
        let bug = first_bug(&p);
        let w = ExplainedWitness::from_report(&p, &bug);
        assert!(!w.to_json().contains("\"fault"));
        let md = w.to_markdown("counters");
        assert!(!md.contains("Injected faults"));
        assert!(!md.contains("injected fault"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
