//! Replay scheduling: reproduce an execution from its schedule.

use crate::program::{FaultPoint, SchedulePoint, Scheduler};
use crate::tid::Tid;
use crate::trace::{DivergencePayload, Schedule};

/// A scheduler that first replays a fixed schedule prefix verbatim and
/// then falls back to a deterministic policy.
///
/// Replay is the foundation of stateless model checking: a state is never
/// stored, only the schedule that reaches it, and "going back" to a state
/// means re-executing the program under that schedule.
///
/// # Panics
///
/// `pick` unwinds with a [`DivergencePayload`] if the program diverges
/// from the recorded schedule (a prefix choice names a thread that is
/// not currently enabled). Divergence means the program under test is
/// not deterministic, which violates the [`crate::ControlledProgram`]
/// contract; hosts and strategies catch the payload and convert it into
/// a recoverable
/// [`ExecutionOutcome::ReplayDivergence`](crate::ExecutionOutcome::ReplayDivergence).
#[derive(Clone, Debug)]
pub struct ReplayScheduler {
    prefix: Schedule,
    policy: TailPolicy,
}

/// What a [`ReplayScheduler`] does after the prefix is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TailPolicy {
    /// Continue the current thread while enabled, else lowest-id enabled
    /// thread. Never adds a preemption (the paper's round-robin
    /// completion argument).
    #[default]
    NonPreemptive,
    /// Always run the lowest-id enabled thread, even if that preempts.
    LowestId,
}

impl ReplayScheduler {
    /// Creates a scheduler replaying `prefix`, then following the
    /// preemption-free default policy.
    pub fn new(prefix: Schedule) -> Self {
        ReplayScheduler {
            prefix,
            policy: TailPolicy::NonPreemptive,
        }
    }

    /// Creates a scheduler replaying `prefix` with an explicit tail
    /// policy.
    pub fn with_policy(prefix: Schedule, policy: TailPolicy) -> Self {
        ReplayScheduler { prefix, policy }
    }

    /// The schedule prefix being replayed.
    pub fn prefix(&self) -> &Schedule {
        &self.prefix
    }
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        if let Some(tid) = self.prefix.get(point.step_index) {
            if !point.is_enabled(tid) {
                DivergencePayload::new(point.step_index, tid, point.enabled.to_vec()).raise();
            }
            return tid;
        }
        match self.policy {
            TailPolicy::NonPreemptive => point.default_choice(),
            TailPolicy::LowestId => point.enabled[0],
        }
    }

    /// Replays the recorded fault set: inject exactly at the prefix
    /// steps marked faulted, never in the tail. This is what makes a
    /// fault witness byte-deterministic under replay.
    fn decide_fault(&mut self, point: FaultPoint) -> bool {
        point.step_index < self.prefix.len() && self.prefix.fault_at(point.step_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(
        step: usize,
        current: Option<Tid>,
        cur_en: bool,
        enabled: &'a [Tid],
    ) -> SchedulePoint<'a> {
        SchedulePoint {
            step_index: step,
            current,
            current_enabled: cur_en,
            enabled,
        }
    }

    #[test]
    fn replays_prefix_then_defaults() {
        let mut s = ReplayScheduler::new(Schedule::from(vec![Tid(1)]));
        let enabled = [Tid(0), Tid(1)];
        assert_eq!(s.pick(point(0, None, false, &enabled)), Tid(1));
        // Past the prefix: continue current thread.
        assert_eq!(s.pick(point(1, Some(Tid(1)), true, &enabled)), Tid(1));
        // Current blocked: nonpreempting switch to lowest id.
        assert_eq!(s.pick(point(2, Some(Tid(1)), false, &enabled)), Tid(0));
    }

    #[test]
    fn replays_recorded_faults_only_inside_the_prefix() {
        let mut prefix = Schedule::from(vec![Tid(0), Tid(1)]);
        prefix.add_fault(1);
        let mut s = ReplayScheduler::new(prefix);
        let fp = |step| crate::program::FaultPoint {
            step_index: step,
            tid: Tid(1),
            site: crate::telemetry::SiteId::UNKNOWN,
        };
        assert!(!s.decide_fault(fp(0)));
        assert!(s.decide_fault(fp(1)));
        // Tail: never inject.
        assert!(!s.decide_fault(fp(2)));
    }

    #[test]
    fn lowest_id_tail_policy() {
        let mut s = ReplayScheduler::with_policy(Schedule::new(), TailPolicy::LowestId);
        let enabled = [Tid(0), Tid(2)];
        assert_eq!(s.pick(point(0, Some(Tid(2)), true, &enabled)), Tid(0));
    }

    #[test]
    fn divergence_unwinds_with_a_typed_payload() {
        let err = std::panic::catch_unwind(|| {
            let mut s = ReplayScheduler::new(Schedule::from(vec![Tid(5)]));
            let enabled = [Tid(0), Tid(1)];
            s.pick(point(0, None, false, &enabled));
        })
        .unwrap_err();
        let payload = err
            .downcast::<DivergencePayload>()
            .expect("divergence raises a DivergencePayload");
        assert_eq!(
            *payload,
            DivergencePayload::new(0, Tid(5), vec![Tid(0), Tid(1)])
        );
    }
}
