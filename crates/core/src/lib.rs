//! Core abstractions and search algorithms for *iterative context bounding*
//! (ICB), the systematic concurrency-testing algorithm of Musuvathi & Qadeer
//! (PLDI 2007).
//!
//! A *model checker* in this crate's view is a driver that repeatedly runs a
//! multithreaded program under a controlled scheduler, systematically
//! enumerating the scheduler's choices. The central insight of the paper is
//! to enumerate executions in increasing order of *preempting* context
//! switches: a preemption occurs when the scheduler switches away from a
//! thread that is still enabled. Nonpreempting switches (the running thread
//! blocked or terminated) are free, so the search reaches arbitrarily deep
//! states even with a preemption bound of zero, while the number of
//! executions with `c` preemptions is only *polynomial* in the execution
//! length (Theorem 1; see [`bounds`]).
//!
//! # Architecture
//!
//! * [`ControlledProgram`] — anything that can be executed under a
//!   [`Scheduler`]. Implemented by the stateless runtime (`icb-runtime`)
//!   and by the explicit-state VM (`icb-statevm`).
//! * [`Scheduler`] — decides which thread runs at every scheduling point.
//! * Search strategies — [`search::IcbSearch`] (the paper's Algorithm 1 in
//!   its stateless, replay-based form), plus the baselines it is evaluated
//!   against: [`search::DfsSearch`] (optionally depth-bounded, the paper's
//!   `dfs` / `db:N`), [`search::IterativeDeepeningSearch`] (`idfs`), and
//!   [`search::RandomSearch`] (`random`).
//! * [`CoverageTracker`] — distinct-state coverage, the paper's metric.
//!
//! # Quick example
//!
//! ```
//! use icb_core::{ControlledProgram, Scheduler, SchedulePoint, StateSink,
//!                ExecutionResult, ExecutionOutcome, Tid, TraceEntry, ExecStats};
//! use icb_core::search::{IcbSearch, SearchConfig};
//!
//! /// A toy two-thread program over one shared variable; thread 1 asserts
//! /// it observes the initial value, so some schedule exposes a "bug".
//! struct Toy;
//! impl ControlledProgram for Toy {
//!     fn execute(&self, sched: &mut dyn Scheduler, _sink: &mut dyn StateSink)
//!         -> ExecutionResult
//!     {
//!         // Hand-rolled interpreter: each thread performs one step.
//!         let mut shared = 0u8;
//!         let mut done = [false, false];
//!         let mut trace = Vec::new();
//!         let mut failure = None;
//!         let mut current: Option<Tid> = None;
//!         loop {
//!             let enabled: Vec<Tid> = (0..2)
//!                 .filter(|&i| !done[i]).map(Tid).collect();
//!             if enabled.is_empty() { break; }
//!             let current_enabled =
//!                 current.map_or(false, |t| !done[t.index()]);
//!             let chosen = sched.pick(SchedulePoint {
//!                 step_index: trace.len(),
//!                 current, current_enabled,
//!                 enabled: &enabled,
//!             });
//!             trace.push(TraceEntry::new(chosen, enabled.clone(), current,
//!                                        current_enabled, false));
//!             match chosen.index() {
//!                 0 => shared = 1,
//!                 _ => if shared != 0 && failure.is_none() {
//!                     failure = Some("observed write".to_string());
//!                 },
//!             }
//!             done[chosen.index()] = true;
//!             current = Some(chosen);
//!         }
//!         let outcome = match failure {
//!             Some(message) => ExecutionOutcome::AssertionFailure {
//!                 thread: Tid(1), message,
//!             },
//!             None => ExecutionOutcome::Terminated,
//!         };
//!         ExecutionResult { outcome, trace: trace.into(), stats: ExecStats::default() }
//!     }
//! }
//!
//! let report = IcbSearch::new(SearchConfig::default()).run(&Toy);
//! assert!(!report.bugs.is_empty());
//! // ICB finds the bug with the minimal number of preemptions: zero here,
//! // because thread 0 can simply run (and terminate) before thread 1.
//! assert_eq!(report.bugs[0].preemptions, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod cache;
pub mod coverage;
pub mod explain;
pub mod hash;
pub mod metrics;
pub mod program;
pub mod render;
pub mod replay;
pub mod retry;
pub mod rng;
pub mod search;
pub mod shrink;
pub mod snapshot;
pub mod telemetry;
pub mod tid;
pub mod trace;

pub use cache::{Certification, ExplorationCache, NoopCache};
pub use coverage::{CoverageTracker, NullSink, StateSink};
pub use explain::{ExplainedWitness, NearestPassing};
pub use metrics::{MetricsBridge, MetricsRegistry, MetricsSnapshot, WorkerStats};
pub use program::{ControlledProgram, FaultPoint, SchedulePoint, Scheduler};
pub use replay::ReplayScheduler;
pub use search::{Search, SearchError, Strategy};
pub use snapshot::{Checkpointer, ResumeBase, SearchSnapshot, SnapshotError, StrategyState};
pub use telemetry::{AbortReason, ChoiceKind, NoopObserver, Phase, SearchObserver, SiteId};
pub use tid::Tid;
pub use trace::{
    DivergencePayload, ExecStats, ExecutionOutcome, ExecutionResult, Schedule, Trace, TraceEntry,
};
