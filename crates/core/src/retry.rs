//! Bounded retry with jittered backoff for transient I/O failures.
//!
//! Long searches write durable artifacts — checkpoints, cache segments —
//! whose writes can fail transiently (NFS hiccups, momentary ENOSPC, AV
//! scanners holding the temp file). A search should not die, and should
//! not immediately forfeit durability, because one write failed once.
//! This module provides the one retry policy those writers share: a
//! small fixed number of attempts with jittered exponential backoff,
//! after which the error is returned to the caller, who degrades to a
//! logged warning and keeps searching (durability is best-effort; the
//! search itself never depends on it).

use std::time::Duration;

use crate::rng::SplitMix64;

/// Total attempts (the first try plus retries) made by
/// [`with_backoff`].
pub const ATTEMPTS: u32 = 3;

/// Runs `op` up to [`ATTEMPTS`] times, sleeping with jittered
/// exponential backoff between failures (≈10 ms then ≈40 ms, each with
/// up to 100% added jitter so colocated writers do not retry in
/// lockstep). Returns the first success, or the last error once the
/// attempts are exhausted. Every failed attempt is logged to stderr with
/// `what` for context.
pub fn with_backoff<T, E: std::fmt::Display>(
    what: &str,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    // The jitter stream need not be reproducible across runs (it never
    // influences search results), only cheap and process-local.
    let mut rng = SplitMix64::new(std::process::id() as u64 ^ ((what.len() as u64) << 32));
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                attempt += 1;
                if attempt >= ATTEMPTS {
                    return Err(e);
                }
                let base = 10u64 << (2 * (attempt - 1)); // 10ms, 40ms
                let delay = base + rng.gen_index(base as usize + 1) as u64;
                eprintln!(
                    "warning: {what} failed (attempt {attempt}/{ATTEMPTS}): {e}; \
                     retrying in {delay}ms"
                );
                std::thread::sleep(Duration::from_millis(delay));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_first_success_without_retry() {
        let mut calls = 0;
        let out: Result<u32, String> = with_backoff("test op", || {
            calls += 1;
            Ok(7)
        });
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_transient_failures_then_succeeds() {
        let mut calls = 0;
        let out: Result<u32, String> = with_backoff("test op", || {
            calls += 1;
            if calls < 3 {
                Err("transient".to_string())
            } else {
                Ok(9)
            }
        });
        assert_eq!(out, Ok(9));
        assert_eq!(calls, 3);
    }

    #[test]
    fn exhausts_attempts_and_returns_last_error() {
        let mut calls = 0;
        let out: Result<u32, String> = with_backoff("test op", || {
            calls += 1;
            Err(format!("fail {calls}"))
        });
        assert_eq!(out, Err("fail 3".to_string()));
        assert_eq!(calls, ATTEMPTS as usize);
    }
}
