//! The combinatorial bounds of Section 2 (Theorem 1).
//!
//! For a terminating program `P` with `n` threads, each executing at most
//! `k` steps of which at most `b` are potentially blocking, the paper
//! proves:
//!
//! * the *total* number of executions may be as large as
//!   `(n·k)! / (k!)^n ≤ (n!)^k` — exponential in both `n` and `k`;
//! * the number of executions with at most `c` preemptions is at most
//!   `C(n·k, c) · (n·b + c)!` — **polynomial in `k`** for fixed `c`.
//!
//! These functions compute the bounds exactly in `u128` where possible and
//! in log-space (`f64` natural logarithms) always, so the benchmark
//! harness can display both the measured execution counts and the
//! theoretical ceilings without overflow.

/// Exact binomial coefficient `C(n, r)` in `u128`, or `None` on overflow.
pub fn binomial(n: u64, r: u64) -> Option<u128> {
    if r > n {
        return Some(0);
    }
    let r = r.min(n - r);
    let mut acc: u128 = 1;
    for i in 0..r {
        acc = acc.checked_mul(u128::from(n - i))?;
        acc /= u128::from(i + 1);
    }
    Some(acc)
}

/// Exact factorial `n!` in `u128`, or `None` on overflow (n ≥ 35).
pub fn factorial(n: u64) -> Option<u128> {
    let mut acc: u128 = 1;
    for i in 2..=n {
        acc = acc.checked_mul(u128::from(i))?;
    }
    Some(acc)
}

/// `ln C(n, r)` via the log-gamma function.
pub fn ln_binomial(n: u64, r: u64) -> f64 {
    if r > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(r) - ln_factorial(n - r)
}

/// `ln n!` (Stirling's series for large `n`, exact summation below 32).
pub fn ln_factorial(n: u64) -> f64 {
    if n < 32 {
        let mut acc = 0.0;
        for i in 2..=n {
            acc += (i as f64).ln();
        }
        return acc;
    }
    let x = n as f64;
    // Stirling with the first correction terms; plenty accurate for
    // display purposes (relative error < 1e-9 at n = 32).
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

/// Theorem 1's upper bound on the number of executions with exactly `c`
/// preemptions: `C(n·k, c) · (n·b + c)!`, exact in `u128`.
///
/// Returns `None` if the value overflows `u128`; use
/// [`ln_executions_with_preemptions`] in that case.
pub fn executions_with_preemptions(n: u64, k: u64, b: u64, c: u64) -> Option<u128> {
    let choose = binomial(n.checked_mul(k)?, c)?;
    let contexts = factorial(n.checked_mul(b)?.checked_add(c)?)?;
    choose.checked_mul(contexts)
}

/// Natural log of Theorem 1's bound, never overflows.
pub fn ln_executions_with_preemptions(n: u64, k: u64, b: u64, c: u64) -> f64 {
    ln_binomial(n * k, c) + ln_factorial(n * b + c)
}

/// The paper's simplified bound `(n²·k·b)^c · (n·b)!` (valid when `c` is
/// much smaller than `k` and `n·b`), in log-space.
pub fn ln_simplified_bound(n: u64, k: u64, b: u64, c: u64) -> f64 {
    let base = (n as f64).powi(2) * k as f64 * b as f64;
    c as f64 * base.ln() + ln_factorial(n * b)
}

/// Upper bound on the *total* number of executions, `(n·k)! / (k!)^n`,
/// in log-space (this is the quantity that explodes exponentially in `k`
/// and motivates context bounding).
pub fn ln_total_executions(n: u64, k: u64) -> f64 {
    ln_factorial(n * k) - n as f64 * ln_factorial(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_binomials() {
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(10, 0), Some(1));
        assert_eq!(binomial(10, 10), Some(1));
        assert_eq!(binomial(3, 5), Some(0));
        assert_eq!(binomial(52, 5), Some(2_598_960));
    }

    #[test]
    fn small_factorials() {
        assert_eq!(factorial(0), Some(1));
        assert_eq!(factorial(5), Some(120));
        assert_eq!(factorial(20), Some(2_432_902_008_176_640_000));
        assert!(factorial(40).is_none());
    }

    #[test]
    fn ln_factorial_matches_exact() {
        for n in [0u64, 1, 5, 20, 30, 34] {
            let exact = (factorial(n).unwrap() as f64).ln();
            assert!(
                (ln_factorial(n) - exact).abs() < 1e-6 * exact.abs().max(1.0),
                "n = {n}"
            );
        }
    }

    #[test]
    fn ln_factorial_stirling_region_is_monotone_and_close() {
        // Compare Stirling (n >= 32) against summation at a crossover point.
        let mut acc = 0.0;
        for i in 2..=40u64 {
            acc += (i as f64).ln();
        }
        assert!((ln_factorial(40) - acc).abs() < 1e-8 * acc);
    }

    #[test]
    fn ln_binomial_matches_exact() {
        let exact = (binomial(52, 5).unwrap() as f64).ln();
        assert!((ln_binomial(52, 5) - exact).abs() < 1e-9 * exact);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn theorem1_bound_zero_preemptions() {
        // With c = 0 the bound is (n·b)!: executions differ only in the
        // order of the n·b blocking contexts.
        assert_eq!(executions_with_preemptions(2, 10, 1, 0), Some(2));
        assert_eq!(executions_with_preemptions(3, 10, 1, 0), Some(6));
    }

    #[test]
    fn theorem1_bound_grows_polynomially_in_k() {
        // For fixed n, b, c the bound over k must be polynomial: doubling
        // k multiplies the bound by at most 2^c (times lower-order terms).
        let c = 2;
        let b1 = ln_executions_with_preemptions(2, 100, 1, c);
        let b2 = ln_executions_with_preemptions(2, 200, 1, c);
        // ratio ≈ (200/100)^c = 4; allow slack.
        let ratio = (b2 - b1).exp();
        assert!(ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn total_executions_exponential_in_k() {
        // ln total should grow linearly in k (i.e. the count grows
        // exponentially), while the c-bounded count grows logarithmically.
        let t1 = ln_total_executions(2, 10);
        let t2 = ln_total_executions(2, 20);
        assert!(t2 > 1.8 * t1);
    }

    #[test]
    fn simplified_bound_dominates_for_small_c() {
        // (n²kb)^c (nb)! ≥ C(nk,c)(nb+c)! roughly, for c ≪ k, nb… the
        // paper presents it as an approximation; check same order of
        // magnitude (within a factor e^3).
        let a = ln_executions_with_preemptions(4, 1000, 5, 2);
        let s = ln_simplified_bound(4, 1000, 5, 2);
        assert!((a - s).abs() < 3.0, "a = {a}, s = {s}");
    }
}
