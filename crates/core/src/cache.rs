//! The search-side interface to a state-fingerprint cache.
//!
//! The paper's engineering contrast (Section 6) is ZING — explicit-state,
//! *with* a state cache that "prunes redundant interleavings" — versus
//! CHESS, which is stateless and re-executes equivalent prefixes it has
//! no memory of. This module is the bridge between the two: a search
//! strategy consults an [`ExplorationCache`] at every work-item emission
//! and skips subtrees rooted at an already-covered `(state fingerprint,
//! next thread)` pair, exactly the `(state, tid)` work-item dedup of
//! ZING's frontier.
//!
//! The trait lives in `icb-core` so the drivers can consult it; the
//! sharded concurrent implementation, the disk-backed segment format and
//! the certification ledger live in the `icb-cache` crate.
//!
//! # Soundness
//!
//! Pruning on a fingerprint match is *sound* exactly when equal
//! fingerprints imply equal states (the explicit-state VM hashes the
//! concrete state — see
//! [`ControlledProgram::fingerprints_are_exact`](crate::ControlledProgram::fingerprints_are_exact)).
//! The stateless runtime's happens-before fingerprints are a
//! *heuristic*: equal fingerprints mean equivalent interleavings of the
//! prefix, not equal continuations, so pruning may miss states. The
//! search session refuses to combine a cache with heuristic fingerprints
//! unless the caller opts in explicitly, and then flags the report as
//! non-exhaustive.
//!
//! # Coverage credit
//!
//! A cache entry does not merely record "visited": it records *how much
//! preemption budget* the recorded exploration had left, as a
//! [`coverage credit`](coverage_credit). A later visit may be pruned only
//! if the recorded credit is at least as large — a subtree explored with
//! more remaining preemptions strictly subsumes one explored with fewer
//! (the monotonicity behind the paper's Theorem 1).

use std::sync::Arc;

use crate::metrics::MetricsRegistry;
use crate::tid::Tid;

/// Sentinel credit: the subtree was (or will be) explored with an
/// unlimited preemption budget, i.e. exhaustively.
pub const FULL_CREDIT: u32 = u32::MAX;

/// Salt XOR-ed into the state fingerprint when probing for a *fault*
/// work item (the same `(state, thread)` step with a fault injected
/// into it). An injected fault changes the program's behavior, so the
/// faulted subtree is a different subtree and must never collide with
/// the fault-free entry for the same state and thread.
pub const FAULT_PROBE_SALT: u64 = 0x9e6c_63b7_41f4_5a1d;

/// Computes the coverage credit of a work item born with `born`(≥ 0)
/// preemptions already spent, under a search targeting `target`
/// preemptions in total (`None` = unbounded, run to exhaustion).
///
/// Credits are comparable across *any* pair of runs: an entry recorded
/// with credit `r` covers a query needing credit `q` iff `r >= q`.
/// Returns `None` when the item lies beyond the target bound (it will
/// never run, so it must be neither pruned nor recorded).
pub fn coverage_credit(born: usize, target: Option<usize>) -> Option<u32> {
    match target {
        Some(n) => {
            if born > n {
                None
            } else {
                Some((n - born).min(FULL_CREDIT as usize - 1) as u32)
            }
        }
        // Unbounded searches explore every item they emit with an
        // unlimited *relative* budget; encode the born bound from the
        // top so same-run comparisons (born_a <= born_b) still hold.
        // `FULL_CREDIT` itself is reserved for certified-exhaustive
        // entries, which subsume every possible query.
        None => Some(FULL_CREDIT - 1 - born.min(1 << 20) as u32),
    }
}

/// A durable record that a program was certified bug-free — the paper's
/// Theorem-1 guarantee ("no bug within c preemptions") made persistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certification {
    /// Strategy label of the certifying run (`icb`, `dfs`, …).
    pub strategy: String,
    /// The certified preemption bound: no bug exists within this many
    /// preemptions. `None` means the entire schedule space was
    /// exhausted — bug-free at *any* bound.
    pub bound: Option<usize>,
    /// The fault bound of the certifying run: the guarantee extends to
    /// executions with up to this many injected faults. A fault-free
    /// certificate (`0`) says nothing about faulted executions.
    pub fault_bound: usize,
    /// Executions the certifying run performed.
    pub executions: usize,
    /// Distinct states the certifying run visited.
    pub distinct_states: usize,
}

impl Certification {
    /// Whether this certificate answers a search targeting `target`
    /// preemptions (`None` = exhaustion) and `fault_target` injected
    /// faults with strategy `strategy`. A run exploring more faults
    /// strictly subsumes one exploring fewer, so coverage requires
    /// `fault_target <= self.fault_bound`.
    pub fn covers(&self, strategy: &str, target: Option<usize>, fault_target: usize) -> bool {
        if self.strategy != strategy || fault_target > self.fault_bound {
            return false;
        }
        match (self.bound, target) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(c), Some(n)) => n <= c,
        }
    }
}

/// A concurrent state-fingerprint cache consulted by the search drivers.
///
/// Implementations must be cheap and thread-safe: the parallel driver's
/// workers call [`probe`](ExplorationCache::probe) from every worker at
/// every work-item emission.
pub trait ExplorationCache: Sync {
    /// Atomically tests whether the subtree rooted at state `state` with
    /// first move `choice` is already covered with at least `credit`
    /// preemption budget; records `(state, choice, credit)` otherwise.
    ///
    /// Returns `true` when covered — the caller skips (does not emit)
    /// the work item. The test-and-record must be atomic per key so
    /// that, of N concurrent emitters of the same item, exactly one
    /// records (and emits) it.
    fn probe(&self, state: u64, choice: Tid, credit: u32) -> bool;

    /// State fingerprints inherited from previous runs, used to seed the
    /// coverage tracker so a warm run reports the same *final* coverage
    /// as the cold run it is skipping parts of. Empty for a cold cache.
    fn seed_states(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Observes a state fingerprint visited by the running search. The
    /// drivers tee every coverage visit here so a persistent cache can
    /// save the visited set as the seed states of future warm runs.
    /// Called from every worker; must be cheap and thread-safe.
    fn note_state(&self, state: u64) {
        let _ = state;
    }

    /// Looks up a certificate covering a `strategy` search to `target`
    /// preemptions (`None` = exhaustion) at `fault_target` injected
    /// faults. A hit lets the session skip the entire search and
    /// synthesize its report.
    fn find_certification(
        &self,
        strategy: &str,
        target: Option<usize>,
        fault_target: usize,
    ) -> Option<Certification> {
        let _ = (strategy, target, fault_target);
        None
    }

    /// Records that a search completed cleanly and bug-free, durably
    /// extending the ledger. Implementations decide persistence timing.
    fn certify(&self, certification: Certification) {
        let _ = certification;
    }

    /// Attaches a live metrics registry. Implementations that track
    /// probe traffic (the sharded fingerprint table) report per-shard
    /// probe/hit counts through it; the default ignores the registry.
    fn attach_metrics(&self, registry: &Arc<MetricsRegistry>) {
        let _ = registry;
    }
}

/// An always-miss cache, useful in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopCache;

impl ExplorationCache for NoopCache {
    fn probe(&self, _state: u64, _choice: Tid, _credit: u32) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_orders_by_born_bound_within_a_run() {
        // Same target: an earlier-born item has strictly more credit.
        for target in [Some(3), None] {
            let a = coverage_credit(1, target).unwrap();
            let b = coverage_credit(2, target).unwrap();
            assert!(a > b, "target {target:?}");
        }
    }

    #[test]
    fn credit_is_comparable_across_targets() {
        // A bound-2 run's root entry covers a bound-2 query but not a
        // bound-3 query at the same born bound.
        let stored = coverage_credit(1, Some(2)).unwrap();
        assert!(stored >= coverage_credit(1, Some(2)).unwrap());
        assert!(stored < coverage_credit(1, Some(3)).unwrap());
        // An exhaustive certificate covers everything.
        assert!(FULL_CREDIT > coverage_credit(1, None).unwrap());
    }

    #[test]
    fn items_beyond_the_target_have_no_credit() {
        assert_eq!(coverage_credit(3, Some(2)), None);
        assert!(coverage_credit(3, None).is_some());
    }

    #[test]
    fn certification_coverage() {
        let exhaustive = Certification {
            strategy: "icb".into(),
            bound: None,
            fault_bound: 0,
            executions: 10,
            distinct_states: 5,
        };
        assert!(exhaustive.covers("icb", None, 0));
        assert!(exhaustive.covers("icb", Some(7), 0));
        assert!(!exhaustive.covers("dfs", None, 0));

        let bounded = Certification {
            strategy: "icb".into(),
            bound: Some(2),
            ..exhaustive.clone()
        };
        assert!(bounded.covers("icb", Some(2), 0));
        assert!(bounded.covers("icb", Some(1), 0));
        assert!(!bounded.covers("icb", Some(3), 0));
        assert!(!bounded.covers("icb", None, 0));
    }

    #[test]
    fn certification_fault_dimension() {
        // A fault-free certificate says nothing about faulted searches;
        // a faulted certificate subsumes fault-free queries.
        let fault_free = Certification {
            strategy: "icb".into(),
            bound: Some(2),
            fault_bound: 0,
            executions: 10,
            distinct_states: 5,
        };
        assert!(!fault_free.covers("icb", Some(1), 1));
        let faulted = Certification {
            fault_bound: 2,
            ..fault_free
        };
        assert!(faulted.covers("icb", Some(2), 0));
        assert!(faulted.covers("icb", Some(2), 2));
        assert!(!faulted.covers("icb", Some(2), 3));
    }

    #[test]
    fn noop_cache_never_prunes() {
        let c = NoopCache;
        assert!(!c.probe(1, Tid(0), 5));
        assert!(c.seed_states().is_empty());
        assert!(c.find_certification("icb", None, 0).is_none());
        c.certify(Certification {
            strategy: "icb".into(),
            bound: None,
            fault_bound: 0,
            executions: 0,
            distinct_states: 0,
        });
    }
}
