//! A tiny, dependency-free, deterministic pseudo-random number generator.
//!
//! The repository builds in hermetic environments with no access to a
//! crate registry, so everything that needs randomness — the `random`
//! search baseline, the seeded property tests, benchmark input
//! generation — uses this SplitMix64 generator instead of an external
//! crate. SplitMix64 passes BigCrush on its own and is the standard
//! seeding generator of the xoshiro family; its statistical quality is
//! far beyond what schedule sampling requires, and it is trivially
//! reproducible from a 64-bit seed.

/// A SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use icb_core::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// let ix = a.gen_index(10);
/// assert!(ix < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; the finalizer decorrelates nearby seeds.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The generator's raw internal state, for checkpointing. Feed it to
    /// [`from_state`](SplitMix64::from_state) to resume the stream
    /// exactly where it left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a checkpointed [`state`](SplitMix64::state).
    ///
    /// Unlike [`new`](SplitMix64::new), which treats its argument as a
    /// seed, this continues the exact output stream of the checkpointed
    /// generator.
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias over a
    /// 64-bit source is below 2^-32 for every `n` that fits in memory.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index requires a nonempty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform value in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_index(hi - lo)
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn gen_ratio(&mut self, num: usize, den: usize) -> bool {
        self.gen_index(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SplitMix64::new(0);
        let mut b = SplitMix64::new(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_index_in_range_and_covers() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = r.gen_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws cover 0..7");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..200 {
            let v = r.gen_range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "nonempty range")]
    fn gen_index_rejects_zero() {
        SplitMix64::new(0).gen_index(0);
    }
}
