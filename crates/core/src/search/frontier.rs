//! A shared work-queue of exploration items for the parallel drivers.
//!
//! CHESS-style stateless checking is embarrassingly parallel: a work
//! item (a schedule prefix, possibly with a suspended branch stack) can
//! be replayed by any worker. The [`Frontier`] is the one shared
//! structure the workers coordinate through:
//!
//! * `pop` hands out items and *blocks* while the queue is empty but
//!   other workers still hold items — those workers may dissolve their
//!   in-progress subtrees back into the queue (work-stealing rebalance),
//!   so an empty queue does not mean the bound is done;
//! * `pop` returns `None` — terminating the worker — only when the queue
//!   is empty and no item is checked out, or after [`close`](Frontier::close);
//! * [`pause`](Frontier::pause) quiesces the swarm for checkpointing:
//!   no new items are handed out, workers return their unexplored
//!   remainders, and once [`idle`](Frontier::idle) reports no item
//!   checked out the queue *is* the complete set of unexplored work.
//!
//! The abstraction is deliberately strategy-agnostic: ICB shards the
//! current bound's queue through it, DFS shards subtree prefixes, and
//! the session layer snapshots `drain`ed queues as the union of shard
//! frontiers.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::metrics::MetricsRegistry;

struct Inner<T> {
    queue: VecDeque<T>,
    /// Items currently checked out by workers.
    checked_out: usize,
    /// Workers currently blocked in `pop`.
    waiters: usize,
    /// Closed: `pop` returns `None` immediately (shutdown).
    closed: bool,
    /// Paused: `pop` blocks without handing out items (checkpoint
    /// quiesce).
    paused: bool,
}

/// A blocking work queue shared by the workers of one parallel search.
///
/// See the [module docs](self) for the coordination protocol.
pub struct Frontier<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    /// Live counters ([`with_metrics`](Frontier::with_metrics)): queue
    /// depth, lock acquisitions, blocked pops and donation volume.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<T> std::fmt::Debug for Frontier<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().unwrap();
        f.debug_struct("Frontier")
            .field("queued", &g.queue.len())
            .field("checked_out", &g.checked_out)
            .field("waiters", &g.waiters)
            .field("closed", &g.closed)
            .field("paused", &g.paused)
            .finish()
    }
}

impl<T> Frontier<T> {
    /// Creates a frontier seeded with `items`.
    pub fn new(items: impl IntoIterator<Item = T>) -> Self {
        Frontier::with_metrics(items, None)
    }

    /// Like [`new`](Frontier::new), but every operation additionally
    /// updates `metrics`: the queue-depth gauge, the mutex-acquisition
    /// counter (the lock is the known contention point of the parallel
    /// drivers) and the blocked-`pop` counter.
    pub fn with_metrics(
        items: impl IntoIterator<Item = T>,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        let queue: VecDeque<T> = items.into_iter().collect();
        if let Some(m) = &metrics {
            m.set_frontier_len(queue.len());
        }
        Frontier {
            inner: Mutex::new(Inner {
                queue,
                checked_out: 0,
                waiters: 0,
                closed: false,
                paused: false,
            }),
            cv: Condvar::new(),
            metrics,
        }
    }

    /// Counts one mutex acquisition (call right after locking).
    fn note_lock(&self) {
        if let Some(m) = &self.metrics {
            m.frontier_lock_op();
        }
    }

    /// Takes the next item, blocking while the queue is empty but items
    /// are still checked out (they may dissolve back into the queue), or
    /// while the frontier is paused. Returns `None` when the work is
    /// exhausted or the frontier is closed.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        self.note_lock();
        let mut waited = false;
        loop {
            if g.closed {
                return None;
            }
            if !g.paused {
                if let Some(item) = g.queue.pop_front() {
                    g.checked_out += 1;
                    if let Some(m) = &self.metrics {
                        m.set_frontier_len(g.queue.len());
                    }
                    return Some(item);
                }
                if g.checked_out == 0 {
                    // Nothing queued, nothing in flight: wake any other
                    // waiters so they observe exhaustion too.
                    self.cv.notify_all();
                    return None;
                }
            }
            if !waited {
                waited = true;
                if let Some(m) = &self.metrics {
                    m.frontier_pop_wait();
                }
            }
            g.waiters += 1;
            g = self.cv.wait(g).unwrap();
            g.waiters -= 1;
        }
    }

    /// Returns an item's unexplored remainder to the queue (work
    /// donation, quiesce dissolution). Does not change the checked-out
    /// count — pair every `pop` with exactly one [`complete`](Frontier::complete).
    pub fn push_many(&self, items: impl IntoIterator<Item = T>) {
        let mut g = self.inner.lock().unwrap();
        self.note_lock();
        g.queue.extend(items);
        if let Some(m) = &self.metrics {
            m.set_frontier_len(g.queue.len());
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Marks one checked-out item as fully processed (or returned via
    /// [`push_many`](Frontier::push_many)).
    pub fn complete(&self) {
        let mut g = self.inner.lock().unwrap();
        self.note_lock();
        g.checked_out = g.checked_out.saturating_sub(1);
        drop(g);
        self.cv.notify_all();
    }

    /// Whether a worker is starving: someone is blocked in `pop` on an
    /// empty queue. Busy workers consult this at execution boundaries
    /// and donate part of their subtree when it holds.
    pub fn starving(&self) -> bool {
        let g = self.inner.lock().unwrap();
        self.note_lock();
        !g.paused && g.waiters > 0 && g.queue.is_empty()
    }

    /// Stops handing out items; workers return their remainders and park
    /// in `pop` until [`unpause`](Frontier::unpause).
    pub fn pause(&self) {
        self.inner.lock().unwrap().paused = true;
        self.cv.notify_all();
    }

    /// Whether the frontier is paused (workers poll this at execution
    /// boundaries to return their items promptly).
    pub fn paused(&self) -> bool {
        let g = self.inner.lock().unwrap();
        self.note_lock();
        g.paused
    }

    /// Resumes a paused frontier.
    pub fn unpause(&self) {
        self.inner.lock().unwrap().paused = false;
        self.cv.notify_all();
    }

    /// Whether no item is checked out. Under [`pause`](Frontier::pause),
    /// once this holds (and the event channel is drained) the queue is
    /// the complete set of unexplored work — the quiesce point a
    /// checkpoint is written at.
    pub fn idle(&self) -> bool {
        self.inner.lock().unwrap().checked_out == 0
    }

    /// Closes the frontier: every current and future `pop` returns
    /// `None`. Used for shutdown on abort.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Copies the queued items out (for checkpointing, under
    /// [`pause`](Frontier::pause)).
    pub fn snapshot_queue(&self) -> Vec<T>
    where
        T: Clone,
    {
        let g = self.inner.lock().unwrap();
        g.queue.iter().cloned().collect()
    }

    /// Number of queued (not checked-out) items.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is empty (checked-out items not counted).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drains_and_terminates() {
        let f = Frontier::new([1, 2, 3]);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    while let Some(_x) = f.pop() {
                        seen.fetch_add(1, Ordering::Relaxed);
                        f.complete();
                    }
                });
            }
        });
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn waiter_receives_donated_work() {
        let f = Frontier::new([0u32]);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // Worker A: takes the item, splits it into two leaves.
            s.spawn(|| {
                let item = f.pop().unwrap();
                assert_eq!(item, 0);
                f.push_many([1, 2]);
                f.complete();
                while f.pop().is_some() {
                    total.fetch_add(1, Ordering::Relaxed);
                    f.complete();
                }
            });
            // Worker B: blocks until A donates, then drains.
            s.spawn(|| {
                while f.pop().is_some() {
                    total.fetch_add(1, Ordering::Relaxed);
                    f.complete();
                }
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pause_quiesces_and_unpause_resumes() {
        let f = Frontier::new([1, 2]);
        f.pause();
        assert!(f.paused());
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let mut n = 0;
                while f.pop().is_some() {
                    n += 1;
                    f.complete();
                }
                n
            });
            // Paused: nothing handed out even though the queue is full.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(f.idle());
            assert_eq!(f.len(), 2);
            f.unpause();
            assert_eq!(h.join().unwrap(), 2);
        });
    }

    #[test]
    fn close_terminates_waiters() {
        let f: Frontier<u32> = Frontier::new([]);
        std::thread::scope(|s| {
            let h = s.spawn(|| f.pop());
            f.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }
}
