//! Best-first heuristic search — the structural heuristic of Groce &
//! Visser (ISSTA 2002) the paper discusses in related work: prioritize
//! scheduling points with *more enabled threads*, on the theory that
//! high-concurrency states breed interleaving bugs.
//!
//! Unlike ICB it offers no coverage metric and no execution-count
//! polynomial; it exists here as the third point of comparison between
//! systematic (icb/dfs), random, and heuristic exploration.
//!
//! Stateless realization: a priority queue of schedule prefixes, scored
//! by the size of the enabled set at the point where the prefix's last
//! choice was made (a frontier proxy for the state's "concurrency").
//! Expanding a prefix replays it to completion under the default policy
//! — each expansion is one full execution, whose coverage counts.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::program::{ControlledProgram, SchedulePoint, Scheduler};
use crate::search::{
    execute_recovering, QuarantinedTrace, SearchConfig, SearchCtx, SearchReport, SearchStrategy,
};
use crate::telemetry::{NoopObserver, SearchObserver};
use crate::tid::Tid;
use crate::trace::{DivergencePayload, ExecutionOutcome, Schedule};

/// Best-first search prioritizing points with many enabled threads.
#[derive(Clone, Debug, Default)]
pub struct BestFirstSearch {
    config: SearchConfig,
}

impl BestFirstSearch {
    /// Creates the search. `config.max_executions` should be set: like
    /// random walk, best-first has no natural termination on large
    /// spaces (it does terminate when the whole tree is expanded).
    pub fn new(config: SearchConfig) -> Self {
        BestFirstSearch { config }
    }

    /// Runs the search.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::BestFirst).run()"
    )]
    pub fn run(&self, program: &dyn ControlledProgram) -> SearchReport {
        self.drive(program, &mut NoopObserver)
    }

    /// Runs the search, streaming telemetry events to `observer`.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::BestFirst).observer(obs).run()"
    )]
    pub fn run_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer)
    }

    pub(crate) fn drive(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        observer.search_started(&self.name());
        let mut ctx = SearchCtx::new(self.config.clone(), observer);
        // Max-heap on (score, insertion age): older first among equals
        // via Reverse(seq) for stable, deterministic order.
        let mut frontier: BinaryHeap<(usize, Reverse<usize>, Schedule)> = BinaryHeap::new();
        let mut seq = 0usize;
        frontier.push((usize::MAX, Reverse(seq), Schedule::new()));
        let mut completed = true;
        while let Some((_, _, prefix)) = frontier.pop() {
            if ctx.stop {
                completed = false;
                break;
            }
            let mut sched = FrontierScheduler {
                prefix: &prefix,
                frontier_enabled: Vec::new(),
            };
            ctx.begin_execution();
            let result = execute_recovering(program, &mut sched, &mut ctx.coverage, ctx.observer);
            if let ExecutionOutcome::ReplayDivergence {
                step,
                expected,
                ref actual,
            } = result.outcome
            {
                // The prefix no longer replays: forfeit its subtree (no
                // children are expanded) and keep draining the frontier.
                ctx.quarantine(QuarantinedTrace {
                    schedule: prefix.clone(),
                    step,
                    expected,
                    actual: actual.clone(),
                });
            } else {
                // A prefix as long as the execution has no frontier point
                // was a leaf; otherwise each enabled thread is a child.
                for &t in &sched.frontier_enabled {
                    let mut child = prefix.clone();
                    child.push(t);
                    seq += 1;
                    let score = sched.frontier_enabled.len();
                    frontier.push((score, Reverse(seq), child));
                }
            }
            ctx.record(&result, program.executions_per_run());
        }
        if ctx.stop {
            completed = false;
        }
        ctx.into_report(self.name(), completed, None, Vec::new(), false)
    }
}

impl SearchStrategy for BestFirstSearch {
    #[allow(deprecated)]
    fn search_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer)
    }

    fn name(&self) -> String {
        "best-first".to_string()
    }
}

/// Replays the prefix, records the enabled set at the frontier point,
/// then completes with the default policy.
struct FrontierScheduler<'a> {
    prefix: &'a Schedule,
    frontier_enabled: Vec<Tid>,
}

impl Scheduler for FrontierScheduler<'_> {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        if let Some(tid) = self.prefix.get(point.step_index) {
            if !point.is_enabled(tid) {
                DivergencePayload::new(point.step_index, tid, point.enabled.to_vec()).raise();
            }
            return tid;
        }
        if point.step_index == self.prefix.len() {
            // The frontier: every enabled thread becomes a child node
            // (including the default — its deeper alternatives must be
            // expandable too); this run walks the default tail.
            self.frontier_enabled = point.enabled.to_vec();
            return point.default_choice();
        }
        point.default_choice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testprog::{schedule_count, Counters};
    use crate::search::{Search, Strategy};

    #[test]
    fn expands_the_whole_tree_eventually() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: None,
        };
        let report = Search::over(&p)
            .strategy(Strategy::BestFirst)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(report.completed);
        // One execution per tree node expansion: at least every distinct
        // schedule appears (each leaf is reached by exactly one
        // expansion whose default tail walks it).
        assert!(report.executions as u128 >= schedule_count(2, 2));
        // And coverage matches the exhaustive search.
        let icb = Search::over(&p)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.distinct_states, icb.distinct_states);
    }

    #[test]
    fn finds_bugs() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 1)),
        };
        let report = Search::over(&p)
            .strategy(Strategy::BestFirst)
            .config(SearchConfig {
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert!(!report.bugs.is_empty());
    }

    #[test]
    fn respects_the_budget() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .strategy(Strategy::BestFirst)
            .config(SearchConfig::with_max_executions(9))
            .run()
            .unwrap();
        assert_eq!(report.executions, 9);
        assert!(!report.completed);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = Counters {
            n: 3,
            k: 2,
            bug: None,
        };
        let a = Search::over(&p)
            .strategy(Strategy::BestFirst)
            .config(SearchConfig::with_max_executions(20))
            .run()
            .unwrap();
        let b = Search::over(&p)
            .strategy(Strategy::BestFirst)
            .config(SearchConfig::with_max_executions(20))
            .run()
            .unwrap();
        assert_eq!(a.coverage_curve, b.coverage_curve);
    }
}
