//! Random-walk baseline (the paper's `random` strategy, after Sivaraj &
//! Gopalakrishnan).

use crate::program::{ControlledProgram, SchedulePoint, Scheduler};
use crate::rng::SplitMix64;
use crate::search::{SearchConfig, SearchCtx, SearchReport, SearchStrategy};
use crate::snapshot::{
    interrupt, Checkpointer, RandomState, ResumeBase, SearchSnapshot, SnapshotError, StrategyState,
};
use crate::telemetry::{AbortReason, NoopObserver, SearchObserver};
use crate::tid::Tid;

/// Repeated executions under a uniformly random scheduler.
///
/// Random walk has no termination criterion and no coverage guarantee —
/// the paper uses it to show that ICB's *systematic* enumeration also
/// beats unguided sampling on coverage growth. The walk is seeded for
/// reproducibility.
#[derive(Clone, Debug)]
pub struct RandomSearch {
    config: SearchConfig,
    seed: u64,
}

impl RandomSearch {
    /// Creates a random search with the given configuration and seed.
    ///
    /// `config.max_executions` must be set: a random walk never exhausts
    /// the space on its own.
    pub fn new(config: SearchConfig, seed: u64) -> Self {
        assert!(
            config.max_executions.is_some(),
            "random search requires an execution budget"
        );
        RandomSearch { config, seed }
    }

    /// Runs the search.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::Random { seed }).run()"
    )]
    pub fn run(&self, program: &dyn ControlledProgram) -> SearchReport {
        self.drive(program, &mut NoopObserver, None, None)
    }

    /// Runs the search, streaming telemetry events to `observer`.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::Random { seed }).observer(obs).run()"
    )]
    pub fn run_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer, None, None)
    }

    /// Runs the search with periodic checkpointing (see
    /// [`IcbSearch::run_checkpointed`](crate::search::IcbSearch::run_checkpointed)
    /// for the contract). The snapshot stores the raw generator state,
    /// so the resumed walk continues the exact random stream.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::Random { seed }).observer(obs).checkpoint(ck).run()"
    )]
    pub fn run_checkpointed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
        ckpt: &mut Checkpointer,
    ) -> SearchReport {
        self.drive(program, observer, Some(ckpt), None)
    }

    /// Resumes a walk from a checkpoint written by
    /// [`run_checkpointed`](RandomSearch::run_checkpointed); the final
    /// report matches the uninterrupted run's.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).resume_from(snapshot).run()"
    )]
    pub fn resume(
        program: &dyn ControlledProgram,
        snapshot: SearchSnapshot,
        observer: &mut dyn SearchObserver,
        ckpt: Option<&mut Checkpointer>,
    ) -> Result<SearchReport, SnapshotError> {
        let state = match snapshot.state {
            StrategyState::Random(state) => state,
            _ => {
                return Err(SnapshotError::WrongStrategy {
                    expected: "random".to_string(),
                    found: snapshot.strategy,
                })
            }
        };
        let search = RandomSearch {
            config: snapshot.config,
            seed: 0, // unused: the walk continues from the raw state
        };
        Ok(search.drive(program, observer, ckpt, Some((snapshot.base, state))))
    }

    pub(crate) fn drive(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
        mut ckpt: Option<&mut Checkpointer>,
        resume: Option<(ResumeBase, RandomState)>,
    ) -> SearchReport {
        observer.search_started(&self.name());
        let mut ctx = SearchCtx::new(self.config.clone(), observer);
        let mut rng = match resume {
            None => SplitMix64::new(self.seed),
            Some((base, state)) => {
                let executions = base.executions;
                ctx.restore(base, 0, executions);
                if let Some(ck) = ckpt.as_deref_mut() {
                    ck.mark_written(ctx.executions);
                }
                if ctx.remaining_budget() == 0 {
                    ctx.halt(AbortReason::ExecutionBudget);
                }
                SplitMix64::from_state(state.rng_state)
            }
        };
        while !ctx.stop {
            let mut sched = RandomScheduler { rng: &mut rng };
            ctx.begin_execution();
            let result = program.execute_observed(&mut sched, &mut ctx.coverage, ctx.observer);
            ctx.record(&result, program.executions_per_run());
            if ckpt.is_some() && interrupt::interrupted() {
                ctx.halt(AbortReason::Interrupted);
            }
            let due = ckpt.as_deref().is_some_and(|ck| ck.due(ctx.executions));
            if due || (ctx.stop && ckpt.is_some()) {
                write_random_checkpoint(&mut ctx, &mut ckpt, &rng);
            }
        }
        ctx.into_report(self.name(), false, None, Vec::new(), false)
    }
}

fn write_random_checkpoint(
    ctx: &mut SearchCtx<'_>,
    ckpt: &mut Option<&mut Checkpointer>,
    rng: &SplitMix64,
) {
    let Some(ck) = ckpt.as_deref_mut() else {
        return;
    };
    let base = ctx.snapshot_base();
    let executions = base.executions;
    let snapshot = SearchSnapshot {
        strategy: "random".to_string(),
        meta: ck.meta().to_vec(),
        config: ctx.config.clone(),
        base,
        state: StrategyState::Random(RandomState {
            rng_state: rng.state(),
        }),
    };
    match ck.write(&snapshot) {
        Ok(()) => ctx.observer.checkpoint_written(executions),
        Err(e) => eprintln!("warning: checkpoint write failed: {e}"),
    }
}

impl SearchStrategy for RandomSearch {
    #[allow(deprecated)]
    fn search_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer, None, None)
    }

    fn name(&self) -> String {
        "random".to_string()
    }
}

/// Chooses uniformly among the enabled threads.
#[derive(Debug)]
pub struct RandomScheduler<'a> {
    rng: &'a mut SplitMix64,
}

impl Scheduler for RandomScheduler<'_> {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        point.enabled[self.rng.gen_index(point.enabled.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testprog::Counters;
    use crate::search::{Search, Strategy};

    #[test]
    fn runs_exactly_the_budget() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .strategy(Strategy::Random { seed: 42 })
            .config(SearchConfig::with_max_executions(25))
            .run()
            .unwrap();
        assert_eq!(report.executions, 25);
        assert!(!report.completed);
        assert!(report.distinct_states > 0);
    }

    #[test]
    fn same_seed_same_coverage() {
        let p = Counters {
            n: 3,
            k: 2,
            bug: None,
        };
        let a = Search::over(&p)
            .strategy(Strategy::Random { seed: 7 })
            .config(SearchConfig::with_max_executions(50))
            .run()
            .unwrap();
        let b = Search::over(&p)
            .strategy(Strategy::Random { seed: 7 })
            .config(SearchConfig::with_max_executions(50))
            .run()
            .unwrap();
        assert_eq!(a.distinct_states, b.distinct_states);
        assert_eq!(a.coverage_curve, b.coverage_curve);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let a = Search::over(&p)
            .strategy(Strategy::Random { seed: 1 })
            .config(SearchConfig::with_max_executions(5))
            .run()
            .unwrap();
        let b = Search::over(&p)
            .strategy(Strategy::Random { seed: 2 })
            .config(SearchConfig::with_max_executions(5))
            .run()
            .unwrap();
        // Curves are overwhelmingly likely to differ for 5 walks over
        // hundreds of schedules; equality would indicate a seeding bug.
        assert_ne!(a.coverage_curve, b.coverage_curve);
    }

    #[test]
    fn eventually_finds_shallow_bug() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 1)),
        };
        let report = Search::over(&p)
            .strategy(Strategy::Random { seed: 3 })
            .config(SearchConfig::with_max_executions(200))
            .run()
            .unwrap();
        assert!(report.buggy_executions > 0);
    }

    #[test]
    #[should_panic(expected = "execution budget")]
    fn requires_budget() {
        let _ = RandomSearch::new(
            SearchConfig {
                max_executions: None,
                ..SearchConfig::default()
            },
            0,
        );
    }
}
