//! Random-walk baseline (the paper's `random` strategy, after Sivaraj &
//! Gopalakrishnan).

use crate::program::{ControlledProgram, SchedulePoint, Scheduler};
use crate::rng::SplitMix64;
use crate::search::{SearchConfig, SearchCtx, SearchReport, SearchStrategy};
use crate::telemetry::{NoopObserver, SearchObserver};
use crate::tid::Tid;

/// Repeated executions under a uniformly random scheduler.
///
/// Random walk has no termination criterion and no coverage guarantee —
/// the paper uses it to show that ICB's *systematic* enumeration also
/// beats unguided sampling on coverage growth. The walk is seeded for
/// reproducibility.
#[derive(Clone, Debug)]
pub struct RandomSearch {
    config: SearchConfig,
    seed: u64,
}

impl RandomSearch {
    /// Creates a random search with the given configuration and seed.
    ///
    /// `config.max_executions` must be set: a random walk never exhausts
    /// the space on its own.
    pub fn new(config: SearchConfig, seed: u64) -> Self {
        assert!(
            config.max_executions.is_some(),
            "random search requires an execution budget"
        );
        RandomSearch { config, seed }
    }

    /// Runs the search.
    pub fn run(&self, program: &dyn ControlledProgram) -> SearchReport {
        self.run_observed(program, &mut NoopObserver)
    }

    /// Runs the search, streaming telemetry events to `observer`.
    pub fn run_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        observer.search_started(&self.name());
        let mut ctx = SearchCtx::new(self.config.clone(), observer);
        let mut rng = SplitMix64::new(self.seed);
        while !ctx.stop {
            let mut sched = RandomScheduler { rng: &mut rng };
            ctx.begin_execution();
            let result = program.execute_observed(&mut sched, &mut ctx.coverage, ctx.observer);
            ctx.record(&result, program.executions_per_run());
        }
        ctx.into_report(self.name(), false, None, Vec::new(), false)
    }
}

impl SearchStrategy for RandomSearch {
    fn search_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.run_observed(program, observer)
    }

    fn name(&self) -> String {
        "random".to_string()
    }
}

/// Chooses uniformly among the enabled threads.
#[derive(Debug)]
pub struct RandomScheduler<'a> {
    rng: &'a mut SplitMix64,
}

impl Scheduler for RandomScheduler<'_> {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        point.enabled[self.rng.gen_index(point.enabled.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testprog::Counters;

    #[test]
    fn runs_exactly_the_budget() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: None,
        };
        let report = RandomSearch::new(SearchConfig::with_max_executions(25), 42).run(&p);
        assert_eq!(report.executions, 25);
        assert!(!report.completed);
        assert!(report.distinct_states > 0);
    }

    #[test]
    fn same_seed_same_coverage() {
        let p = Counters {
            n: 3,
            k: 2,
            bug: None,
        };
        let a = RandomSearch::new(SearchConfig::with_max_executions(50), 7).run(&p);
        let b = RandomSearch::new(SearchConfig::with_max_executions(50), 7).run(&p);
        assert_eq!(a.distinct_states, b.distinct_states);
        assert_eq!(a.coverage_curve, b.coverage_curve);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let a = RandomSearch::new(SearchConfig::with_max_executions(5), 1).run(&p);
        let b = RandomSearch::new(SearchConfig::with_max_executions(5), 2).run(&p);
        // Curves are overwhelmingly likely to differ for 5 walks over
        // hundreds of schedules; equality would indicate a seeding bug.
        assert_ne!(a.coverage_curve, b.coverage_curve);
    }

    #[test]
    fn eventually_finds_shallow_bug() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 1)),
        };
        let report = RandomSearch::new(SearchConfig::with_max_executions(200), 3).run(&p);
        assert!(report.buggy_executions > 0);
    }

    #[test]
    #[should_panic(expected = "execution budget")]
    fn requires_budget() {
        let _ = RandomSearch::new(
            SearchConfig {
                max_executions: None,
                ..SearchConfig::default()
            },
            0,
        );
    }
}
