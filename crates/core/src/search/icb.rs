//! Iterative context bounding — Algorithm 1 of the paper, in stateless
//! (replay-based) form.
//!
//! The explicit-state formulation keeps a queue of `(state, tid)` work
//! items. A stateless checker cannot store states, so a work item here is
//! the *schedule prefix* that reaches the state, with the thread to run as
//! its last element. Processing a work item replays the prefix and then
//! explores, by nested depth-first search, every execution reachable
//! **without introducing another preemption**:
//!
//! * while the current thread stays enabled it is forced to continue —
//!   scheduling any other enabled thread would be a preemption, so for
//!   every such thread `t` a new work item `prefix·t` is pushed onto the
//!   *next* work queue (to be processed at bound + 1);
//! * when the current thread blocks or terminates, the switch is free and
//!   the nested DFS branches over every enabled thread (lines 33–37 of
//!   Algorithm 1).
//!
//! The outer loop drains the current queue, then increments the bound and
//! swaps in the deferred queue — so every execution with `i` preemptions
//! is explored before any execution with `i + 1`, and the first bug found
//! is exposed by a minimal number of preemptions.

use std::collections::VecDeque;

use crate::program::{ControlledProgram, SchedulePoint, Scheduler};
use crate::search::{BoundStats, BugReport, SearchConfig, SearchCtx, SearchReport, SearchStrategy};
use crate::telemetry::{AbortReason, NoopObserver, SearchObserver};
use crate::tid::Tid;
use crate::trace::Schedule;

/// The iterative context-bounding search.
///
/// # Examples
///
/// Exhaustively exploring a program and reading the per-bound statistics:
///
/// ```no_run
/// use icb_core::search::{IcbSearch, SearchConfig};
/// # fn program() -> Box<dyn icb_core::ControlledProgram> { unimplemented!() }
/// let report = IcbSearch::new(SearchConfig::default()).run(&*program());
/// for b in &report.bound_history {
///     println!("bound {}: {} executions, {} states",
///              b.bound, b.executions, b.cumulative_states);
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct IcbSearch {
    config: SearchConfig,
}

impl IcbSearch {
    /// Creates the search with the given configuration.
    pub fn new(config: SearchConfig) -> Self {
        IcbSearch { config }
    }

    /// Creates a search that explores all executions with at most `bound`
    /// preemptions and stops.
    pub fn up_to_bound(bound: usize) -> Self {
        IcbSearch {
            config: SearchConfig {
                preemption_bound: Some(bound),
                ..SearchConfig::default()
            },
        }
    }

    /// Finds a bug with the *minimal* number of preemptions, if the
    /// program has one reachable within `max_executions` executions.
    ///
    /// Minimality holds because ICB completes every bound before starting
    /// the next: if the returned bug has `c` preemptions, every execution
    /// with fewer preemptions was explored and found correct.
    pub fn find_minimal_bug(
        program: &dyn ControlledProgram,
        max_executions: usize,
    ) -> Option<BugReport> {
        let search = IcbSearch::new(SearchConfig {
            max_executions: Some(max_executions),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        });
        search.run(program).bugs.into_iter().next()
    }

    /// Runs the search.
    pub fn run(&self, program: &dyn ControlledProgram) -> SearchReport {
        self.run_observed(program, &mut NoopObserver)
    }

    /// Runs the search, streaming telemetry events to `observer`.
    pub fn run_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        observer.search_started("icb");
        let mut ctx = SearchCtx::new(self.config.clone(), observer);
        let mut work: VecDeque<Schedule> = VecDeque::new();
        work.push_back(Schedule::new());
        let mut next: VecDeque<Schedule> = VecDeque::new();
        let mut bound = 0usize;
        let mut truncated = false;
        let mut bound_history = Vec::new();
        let mut completed = false;
        let mut completed_bound = None;

        'outer: loop {
            let execs_before = ctx.executions;
            let bugs_before = ctx.buggy_executions;
            ctx.current_bound = bound;
            ctx.observer.bound_started(bound, work.len());
            let bound_began = std::time::Instant::now();
            while let Some(prefix) = work.pop_front() {
                self.search_item(program, prefix, bound, &mut ctx, &mut next, &mut truncated);
                ctx.observer.work_queue_depth(next.len());
                if ctx.stop {
                    break 'outer;
                }
            }
            let stats = BoundStats {
                bound,
                executions: ctx.executions - execs_before,
                cumulative_states: ctx.coverage.distinct_states(),
                bugs_found: ctx.buggy_executions - bugs_before,
            };
            ctx.observer.bound_completed(&stats, bound_began.elapsed());
            bound_history.push(stats);
            completed_bound = Some(bound);
            if next.is_empty() {
                completed = !truncated;
                break;
            }
            if self.config.preemption_bound.is_some_and(|pb| bound >= pb) {
                break;
            }
            // Re-check the wall-clock budget between bound iterations:
            // `record` only checks after each execution, so without this a
            // deadline expiring exactly at a bound boundary would start
            // (and fully time) another bound's first execution.
            if ctx.over_deadline() {
                ctx.halt(AbortReason::Timeout);
                truncated = true;
                break;
            }
            bound += 1;
            std::mem::swap(&mut work, &mut next);
        }

        ctx.into_report(
            "icb".to_string(),
            completed,
            completed_bound,
            bound_history,
            truncated,
        )
    }

    /// Processes one work item: nested DFS over the preemption-free
    /// extensions of `prefix`.
    fn search_item(
        &self,
        program: &dyn ControlledProgram,
        prefix: Schedule,
        bound: usize,
        ctx: &mut SearchCtx<'_>,
        next: &mut VecDeque<Schedule>,
        truncated: &mut bool,
    ) {
        let mut stack: Vec<Branch> = Vec::new();
        let mut first_run = true;
        loop {
            // Points at or beyond `fresh_from` are visited for the first
            // time in this run; preemption work items are emitted only for
            // them (earlier points were handled in a previous run or by
            // the parent work item).
            let fresh_from = if first_run {
                prefix.len()
            } else {
                // After backtracking, the deepest branch point took a new
                // option; everything strictly after it is fresh.
                stack.last().map_or(prefix.len(), |b| b.step + 1)
            };
            first_run = false;

            let mut sched = ItemScheduler {
                prefix: &prefix,
                stack,
                cursor: 0,
                path: Schedule::new(),
                fresh_from,
                emitted: Vec::new(),
            };
            ctx.begin_execution();
            let result = program.execute_observed(&mut sched, &mut ctx.coverage, ctx.observer);
            stack = sched.stack;

            let queue_cap = self
                .config
                .max_work_queue
                .unwrap_or(usize::MAX)
                .min(ctx.remaining_budget());
            for item in sched.emitted {
                if next.len() < queue_cap {
                    next.push_back(item);
                    ctx.observer.work_item_deferred(bound + 1);
                } else {
                    *truncated = true;
                }
            }

            ctx.record(&result, program.executions_per_run());
            if ctx.stop {
                return;
            }

            // Backtrack: advance the deepest branch point with options
            // left; drop exhausted ones.
            loop {
                match stack.last_mut() {
                    Some(top) if top.next_ix + 1 < top.options.len() => {
                        top.next_ix += 1;
                        break;
                    }
                    Some(_) => {
                        stack.pop();
                    }
                    None => return,
                }
            }
        }
    }
}

impl SearchStrategy for IcbSearch {
    fn search_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.run_observed(program, observer)
    }

    fn name(&self) -> String {
        "icb".to_string()
    }
}

/// A nonpreempting branch point within one work item's nested DFS.
#[derive(Clone, Debug)]
struct Branch {
    /// Step index of the scheduling point.
    step: usize,
    /// The enabled threads at that point.
    options: Vec<Tid>,
    /// Index of the option taken in the current run.
    next_ix: usize,
}

/// The scheduler driving one run within a work item.
struct ItemScheduler<'a> {
    prefix: &'a Schedule,
    stack: Vec<Branch>,
    /// Position in `stack` during the current run.
    cursor: usize,
    /// Full schedule chosen so far in this run (prefix included).
    path: Schedule,
    /// First step index considered fresh for work-item emission.
    fresh_from: usize,
    /// Deferred work items (`path-so-far · t`) discovered in this run.
    emitted: Vec<Schedule>,
}

impl Scheduler for ItemScheduler<'_> {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        let choice = if point.step_index < self.prefix.len() {
            let tid = self
                .prefix
                .get(point.step_index)
                .expect("prefix indexed in range");
            assert!(
                point.is_enabled(tid),
                "replay divergence at step {}: {tid} not enabled",
                point.step_index
            );
            tid
        } else if point.current_enabled {
            // Forced: continuing the current thread is free; switching to
            // any other enabled thread costs a preemption and is deferred
            // to the next bound.
            let current = point
                .current
                .expect("current_enabled implies a current thread");
            if point.step_index >= self.fresh_from {
                for &t in point.enabled {
                    if t != current {
                        let mut item = self.path.clone();
                        item.push(t);
                        self.emitted.push(item);
                    }
                }
            }
            current
        } else {
            // Nonpreempting branch point: the previous thread blocked or
            // terminated (or this is the initial point); explore every
            // enabled thread via the branch stack.
            if self.cursor < self.stack.len() {
                let b = &self.stack[self.cursor];
                debug_assert_eq!(
                    b.step, point.step_index,
                    "branch stack out of sync with execution"
                );
                let tid = b.options[b.next_ix];
                assert!(
                    point.is_enabled(tid),
                    "replay divergence at step {}: {tid} not enabled \
                     (the program is not deterministic)",
                    point.step_index
                );
                self.cursor += 1;
                tid
            } else {
                self.stack.push(Branch {
                    step: point.step_index,
                    options: point.enabled.to_vec(),
                    next_ix: 0,
                });
                self.cursor += 1;
                point.enabled[0]
            }
        };
        self.path.push(choice);
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::search::testprog::{schedule_count, Counters};

    #[test]
    fn exhausts_two_by_two_counter_program() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: None,
        };
        let report = IcbSearch::new(SearchConfig::default()).run(&p);
        assert!(report.completed);
        assert_eq!(report.executions as u128, schedule_count(2, 2));
        assert_eq!(report.completed_bound, Some(2));
        // Per-bound execution counts for 2 threads × 2 steps:
        // bound 0: 0011, 1100; bound 1: 0110, 1001; bound 2: 0101, 1010.
        let per_bound: Vec<usize> = report.bound_history.iter().map(|b| b.executions).collect();
        assert_eq!(per_bound, vec![2, 2, 2]);
    }

    #[test]
    fn exhausts_three_by_two_counter_program() {
        let p = Counters {
            n: 3,
            k: 2,
            bug: None,
        };
        let report = IcbSearch::new(SearchConfig::default()).run(&p);
        assert!(report.completed);
        assert_eq!(report.executions as u128, schedule_count(3, 2));
    }

    #[test]
    fn per_bound_counts_respect_theorem_1() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let report = IcbSearch::new(SearchConfig::default()).run(&p);
        assert!(report.completed);
        for b in &report.bound_history {
            // Non-blocking program: each thread's only blocking action is
            // its fictitious termination, so b = 1 (Section 2).
            let bound = bounds::executions_with_preemptions(3, 3, 1, b.bound as u64).unwrap();
            assert!(
                (b.executions as u128) <= bound,
                "bound {}: {} > {}",
                b.bound,
                b.executions,
                bound
            );
        }
    }

    #[test]
    fn finds_bug_with_minimal_preemptions() {
        // Thread 1's first step must observe counter == 1: exactly one
        // step of thread 0 must precede it, which requires preempting
        // thread 0 once.
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 1)),
        };
        let bug = IcbSearch::find_minimal_bug(&p, 10_000).expect("bug must be found");
        assert_eq!(bug.preemptions, 1);
    }

    #[test]
    fn finds_zero_preemption_bug_at_bound_zero() {
        // Thread 1's first step observes counter == 2: schedule 0 0 1 1,
        // reachable without preemptions.
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 2)),
        };
        let bug = IcbSearch::find_minimal_bug(&p, 10_000).expect("bug must be found");
        assert_eq!(bug.preemptions, 0);
    }

    #[test]
    fn bug_schedule_replays_to_same_outcome() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: Some((1, 1, 3)),
        };
        let bug = IcbSearch::find_minimal_bug(&p, 100_000).expect("bug must be found");
        let mut replay = crate::replay::ReplayScheduler::new(bug.schedule.clone());
        let result =
            crate::ControlledProgram::execute(&p, &mut replay, &mut crate::coverage::NullSink);
        assert!(result.outcome.is_bug());
        assert_eq!(result.stats.preemptions, bug.preemptions);
    }

    #[test]
    fn respects_execution_budget() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let report = IcbSearch::new(SearchConfig::with_max_executions(7)).run(&p);
        assert_eq!(report.executions, 7);
        assert!(!report.completed);
    }

    #[test]
    fn preemption_bound_stops_iteration() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: None,
        };
        let report = IcbSearch::up_to_bound(1).run(&p);
        assert_eq!(report.completed_bound, Some(1));
        assert!(!report.completed); // deeper bounds exist but were skipped
        assert!(report.bound_history.len() == 2);
        // All explored executions have at most 1 preemption.
        assert!(report.max_stats.preemptions <= 1);
    }

    #[test]
    fn bound_zero_explores_without_limiting_depth() {
        // Even at bound 0, executions run to completion: max steps equals
        // the full program length.
        let p = Counters {
            n: 2,
            k: 5,
            bug: None,
        };
        let report = IcbSearch::up_to_bound(0).run(&p);
        assert_eq!(report.max_stats.steps, 10);
        assert_eq!(report.max_stats.preemptions, 0);
        assert_eq!(report.executions, 2); // 0^5 1^5 and 1^5 0^5
    }

    #[test]
    fn queue_cap_sets_truncated() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let report = IcbSearch::new(SearchConfig {
            max_work_queue: Some(1),
            ..SearchConfig::default()
        })
        .run(&p);
        assert!(report.truncated);
        assert!(!report.completed);
    }

    #[test]
    fn executions_are_distinct_schedules() {
        // The nested DFS must not re-run identical schedules: total
        // executions equals the number of distinct schedules, which for
        // the no-bug counter program is the multinomial count.
        let p = Counters {
            n: 2,
            k: 4,
            bug: None,
        };
        let report = IcbSearch::new(SearchConfig::default()).run(&p);
        assert_eq!(report.executions as u128, schedule_count(2, 4));
    }
}
