//! Iterative context bounding — Algorithm 1 of the paper, in stateless
//! (replay-based) form.
//!
//! The explicit-state formulation keeps a queue of `(state, tid)` work
//! items. A stateless checker cannot store states, so a work item here is
//! the *schedule prefix* that reaches the state, with the thread to run as
//! its last element. Processing a work item replays the prefix and then
//! explores, by nested depth-first search, every execution reachable
//! **without introducing another preemption**:
//!
//! * while the current thread stays enabled it is forced to continue —
//!   scheduling any other enabled thread would be a preemption, so for
//!   every such thread `t` a new work item `prefix·t` is pushed onto the
//!   *next* work queue (to be processed at bound + 1);
//! * when the current thread blocks or terminates, the switch is free and
//!   the nested DFS branches over every enabled thread (lines 33–37 of
//!   Algorithm 1).
//!
//! The outer loop drains the current queue, then increments the bound and
//! swaps in the deferred queue — so every execution with `i` preemptions
//! is explored before any execution with `i + 1`, and the first bug found
//! is exposed by a minimal number of preemptions.
//!
//! # Fault levels
//!
//! When [`SearchConfig::fault_bound`] is non-zero, *injected faults*
//! become a second bounded dimension: every designated fallible
//! operation reached fresh during the nested DFS additionally defers a
//! work item with a fault injected into that step, to the level
//! `(c, f + 1)`. Levels are processed in lexicographic `(preemptions,
//! faults)` order — `(0,0), (0,1), …, (0,F), (1,0), …` — so the first
//! bug found carries a minimum-`(preemptions, faults)` witness. At
//! fault bound 0 no fault is ever injected or deferred and the search
//! degenerates exactly to the single-axis algorithm above.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use crate::cache::{coverage_credit, ExplorationCache, FAULT_PROBE_SALT};
use crate::coverage::StateSink;
use crate::program::{ControlledProgram, FaultPoint, SchedulePoint, Scheduler};
use crate::search::{
    execute_recovering, BoundStats, BugReport, CacheBinding, QuarantinedTrace, SearchConfig,
    SearchCtx, SearchReport, SearchStrategy,
};
use crate::snapshot::{
    interrupt, BranchSnapshot, Checkpointer, IcbState, SearchSnapshot, SnapshotError, StrategyState,
};
use crate::telemetry::{AbortReason, NoopObserver, SearchObserver};
use crate::tid::Tid;
use crate::trace::{DivergencePayload, ExecutionOutcome, Schedule};

/// The iterative context-bounding search.
///
/// # Examples
///
/// Exhaustively exploring a program and reading the per-bound statistics:
///
/// ```no_run
/// use icb_core::search::{IcbSearch, SearchConfig};
/// # fn program() -> Box<dyn icb_core::ControlledProgram> { unimplemented!() }
/// let report = IcbSearch::new(SearchConfig::default()).run(&*program());
/// for b in &report.bound_history {
///     println!("bound {}: {} executions, {} states",
///              b.bound, b.executions, b.cumulative_states);
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct IcbSearch {
    config: SearchConfig,
}

impl IcbSearch {
    /// Creates the search with the given configuration.
    pub fn new(config: SearchConfig) -> Self {
        IcbSearch { config }
    }

    /// Creates a search that explores all executions with at most `bound`
    /// preemptions and stops.
    pub fn up_to_bound(bound: usize) -> Self {
        IcbSearch {
            config: SearchConfig {
                preemption_bound: Some(bound),
                ..SearchConfig::default()
            },
        }
    }

    /// Finds a bug with the *minimal* number of preemptions, if the
    /// program has one reachable within `max_executions` executions.
    ///
    /// Minimality holds because ICB completes every bound before starting
    /// the next: if the returned bug has `c` preemptions, every execution
    /// with fewer preemptions was explored and found correct.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).config(..).run() plus bug selection"
    )]
    pub fn find_minimal_bug(
        program: &dyn ControlledProgram,
        max_executions: usize,
    ) -> Option<BugReport> {
        let search = IcbSearch::new(SearchConfig {
            max_executions: Some(max_executions),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        });
        search
            .drive(program, &mut NoopObserver, None, None, None)
            .bugs
            .into_iter()
            .next()
    }

    /// Runs the search.
    #[deprecated(note = "superseded by the unified builder: Search::over(program).run()")]
    pub fn run(&self, program: &dyn ControlledProgram) -> SearchReport {
        self.drive(program, &mut NoopObserver, None, None, None)
    }

    /// Runs the search, streaming telemetry events to `observer`.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).observer(obs).run()"
    )]
    pub fn run_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer, None, None, None)
    }

    /// Runs the search with periodic checkpointing: a [`SearchSnapshot`]
    /// is written atomically through `ckpt` every
    /// [`Checkpointer`]-configured number of executions, on any abort
    /// (budget, timeout, first bug, Ctrl-C), and removed on clean
    /// completion. When checkpointing, the search also polls
    /// [`interrupt::interrupted`] between executions and halts with
    /// [`AbortReason::Interrupted`] after writing a final snapshot.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).observer(obs).checkpoint(ck).run()"
    )]
    pub fn run_checkpointed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
        ckpt: &mut Checkpointer,
    ) -> SearchReport {
        self.drive(program, observer, Some(ckpt), None, None)
    }

    /// Resumes a search from a checkpoint written by
    /// [`run_checkpointed`](IcbSearch::run_checkpointed).
    ///
    /// Because snapshots are taken at execution boundaries and replay is
    /// deterministic, the resumed search produces a final report
    /// identical to the uninterrupted run's. Pass a [`Checkpointer`] to
    /// keep checkpointing the resumed segment.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).resume_from(snapshot).run()"
    )]
    pub fn resume(
        program: &dyn ControlledProgram,
        snapshot: SearchSnapshot,
        observer: &mut dyn SearchObserver,
        ckpt: Option<&mut Checkpointer>,
    ) -> Result<SearchReport, SnapshotError> {
        let state = match snapshot.state {
            StrategyState::Icb(state) => state,
            _ => {
                return Err(SnapshotError::WrongStrategy {
                    expected: "icb".to_string(),
                    found: snapshot.strategy,
                })
            }
        };
        if let Some((_, stack)) = &state.in_progress {
            validate_branches(stack)?;
        }
        let search = IcbSearch::new(snapshot.config);
        Ok(search.drive(program, observer, ckpt, Some((snapshot.base, state)), None))
    }

    /// The single engine behind fresh, checkpointed and resumed runs.
    pub(crate) fn drive(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
        mut ckpt: Option<&mut Checkpointer>,
        resume: Option<(crate::snapshot::ResumeBase, IcbState)>,
        cache: Option<CacheBinding<'_>>,
    ) -> SearchReport {
        observer.search_started("icb");
        let mut ctx = SearchCtx::new(self.config.clone(), observer);
        if let Some(binding) = &cache {
            ctx.attach_cache(binding.heuristic);
        }
        let mut driver;
        let mut pending: Option<(Schedule, Vec<Branch>)> = None;
        match resume {
            None => {
                let mut work = VecDeque::new();
                work.push_back(Schedule::new());
                driver = Driver {
                    program,
                    ctx,
                    work,
                    deferred: BTreeMap::new(),
                    bound: 0,
                    fault: 0,
                    truncated: false,
                    bound_history: Vec::new(),
                    completed: false,
                    completed_bound: None,
                    execs_base: 0,
                    bugs_base: 0,
                    cache: cache.as_ref().map(|b| b.cache),
                    state_cursor: Rc::new(Cell::new(0)),
                };
            }
            Some((base, state)) => {
                let bound_executions = base.executions - state.bound_executions_base;
                let truncated = base.truncated;
                ctx.restore(base, state.bound, bound_executions);
                if let Some(ck) = ckpt.as_deref_mut() {
                    // The snapshot itself is durable; the next periodic
                    // write is one full interval after it.
                    ck.mark_written(ctx.executions);
                }
                pending = state
                    .in_progress
                    .map(|(prefix, stack)| (prefix, stack.into_iter().map(Branch::from).collect()));
                driver = Driver {
                    program,
                    ctx,
                    work: state.work.into(),
                    deferred: state
                        .deferred
                        .into_iter()
                        .map(|(c, f, q)| ((c, f), q.into()))
                        .collect(),
                    bound: state.bound,
                    fault: state.fault,
                    truncated,
                    bound_history: state.bound_history,
                    completed: false,
                    completed_bound: state.completed_bound,
                    execs_base: state.bound_executions_base,
                    bugs_base: state.bound_bugs_base,
                    cache: cache.as_ref().map(|b| b.cache),
                    state_cursor: Rc::new(Cell::new(0)),
                };
                // A snapshot written right at an exhausted budget must
                // not run one more execution after resume.
                if driver.ctx.remaining_budget() == 0 {
                    driver.ctx.halt(AbortReason::ExecutionBudget);
                }
            }
        }
        if let Some(binding) = &cache {
            // Idempotent on resume: a checkpointed warm run's coverage
            // already contains the seeds.
            driver.ctx.seed_coverage(&binding.cache.seed_states());
        }
        driver.run(pending, &mut ckpt);
        driver.finish()
    }
}

/// Loop state of one ICB run, shared between the outer bound loop and
/// the per-work-item nested DFS so checkpoints can be written from
/// either.
struct Driver<'p, 'o> {
    program: &'p dyn ControlledProgram,
    ctx: SearchCtx<'o>,
    work: VecDeque<Schedule>,
    /// Deferred work items keyed by the `(preemption, fault)` level at
    /// which they will run; drained in lexicographic key order. At
    /// fault bound 0 only `(bound + 1, 0)` is ever populated — the
    /// legacy single `next` queue.
    deferred: BTreeMap<(usize, usize), VecDeque<Schedule>>,
    bound: usize,
    /// The fault level `f` of the level currently being explored
    /// (always 0 at fault bound 0).
    fault: usize,
    truncated: bool,
    bound_history: Vec<BoundStats>,
    completed: bool,
    completed_bound: Option<usize>,
    /// `ctx.executions` when the current bound started.
    execs_base: usize,
    /// `ctx.buggy_executions` when the current bound started.
    bugs_base: usize,
    /// Fingerprint cache consulted at work-item emission; `None` runs
    /// the legacy (cache-free) search.
    cache: Option<&'p dyn ExplorationCache>,
    /// Fingerprint of the most recently visited state of the in-flight
    /// execution, shared with the scheduler for cache probes at pick
    /// time (the probe key is the state *before* the deferred step).
    state_cursor: Rc<Cell<u64>>,
}

impl Driver<'_, '_> {
    fn run(
        &mut self,
        mut pending: Option<(Schedule, Vec<Branch>)>,
        ckpt: &mut Option<&mut Checkpointer>,
    ) {
        'outer: loop {
            self.ctx.current_bound = self.bound;
            let depth = self.work.len() + usize::from(pending.is_some());
            self.ctx.observer.bound_started(self.bound, depth);
            let bound_began = std::time::Instant::now();
            loop {
                if ckpt.is_some() && interrupt::interrupted() {
                    self.ctx.halt(AbortReason::Interrupted);
                }
                if self.ctx.stop {
                    self.write_checkpoint(ckpt, None);
                    break 'outer;
                }
                let (prefix, stack) = match pending.take() {
                    Some(item) => item,
                    None => match self.work.pop_front() {
                        Some(prefix) => (prefix, Vec::new()),
                        None => break,
                    },
                };
                self.search_item(prefix, stack, ckpt);
                self.ctx.observer.work_queue_depth(self.deferred_len());
                if self.ctx.stop {
                    break 'outer;
                }
            }
            let stats = BoundStats {
                bound: self.bound,
                faults: self.fault,
                executions: self.ctx.executions - self.execs_base,
                cumulative_states: self.ctx.coverage.distinct_states(),
                bugs_found: self.ctx.buggy_executions - self.bugs_base,
            };
            self.ctx
                .observer
                .bound_completed(&stats, bound_began.elapsed());
            self.bound_history.push(stats);
            // A preemption bound `c` counts as completed only once every
            // fault level `(c, _)` with pending work has been drained —
            // at fault bound 0 that is after every level, as before.
            let next_level = self.deferred.keys().next().copied();
            if next_level.is_none_or(|(c, _)| c > self.bound) {
                self.completed_bound = Some(self.bound);
            }
            let Some(level) = next_level else {
                self.completed = !self.truncated;
                break;
            };
            if self
                .ctx
                .config
                .preemption_bound
                .is_some_and(|pb| level.0 > pb)
            {
                break;
            }
            // Re-check the wall-clock budget between levels:
            // `record` only checks after each execution, so without this a
            // deadline expiring exactly at a level boundary would start
            // (and fully time) another level's first execution.
            if self.ctx.over_deadline() {
                self.ctx.halt(AbortReason::Timeout);
                self.truncated = true;
                self.write_checkpoint(ckpt, None);
                break;
            }
            let queue = self.deferred.remove(&level).expect("peeked key exists");
            (self.bound, self.fault) = level;
            self.execs_base = self.ctx.executions;
            self.bugs_base = self.ctx.buggy_executions;
            self.work = queue;
        }
        if !self.ctx.stop {
            // Clean completion (space exhausted or the configured bound
            // fully explored): nothing is left to resume.
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.finish();
            }
        }
    }

    fn finish(self) -> SearchReport {
        self.ctx.into_report(
            "icb".to_string(),
            self.completed,
            self.completed_bound,
            self.bound_history,
            self.truncated,
        )
    }

    /// Processes one work item: nested DFS over the preemption-free
    /// extensions of `prefix`. A non-empty `stack` continues a
    /// checkpointed item exactly where its last run left off.
    fn search_item(
        &mut self,
        prefix: Schedule,
        mut stack: Vec<Branch>,
        ckpt: &mut Option<&mut Checkpointer>,
    ) {
        let mut first_run = stack.is_empty();
        loop {
            // Points at or beyond `fresh_from` are visited for the first
            // time in this run; preemption work items are emitted only for
            // them (earlier points were handled in a previous run or by
            // the parent work item).
            let fresh_from = if first_run {
                prefix.len()
            } else {
                // After backtracking (or a checkpointed stack, saved
                // post-backtrack), the deepest branch point takes a new
                // option; everything strictly after it is fresh.
                stack.last().map_or(prefix.len(), |b| b.step + 1)
            };
            first_run = false;

            let sched = ItemScheduler {
                prefix: &prefix,
                stack,
                cursor: 0,
                path: Schedule::new(),
                fresh_from,
                emitted: Vec::new(),
                emitted_faults: Vec::new(),
                emit_faults: self.fault < self.ctx.config.fault_bound,
                cache: self.cache.map(|cache| ItemCache {
                    cache,
                    state: Rc::clone(&self.state_cursor),
                    credit: coverage_credit(self.bound + 1, self.ctx.config.preemption_bound),
                    fault_credit: coverage_credit(self.bound, self.ctx.config.preemption_bound),
                    hits: 0,
                    stores: 0,
                }),
            };
            self.ctx.begin_execution();
            let mut sched = sched;
            let result = if let Some(cache) = self.cache {
                self.state_cursor.set(0);
                let mut sink = CursorSink {
                    inner: &mut self.ctx.coverage,
                    state: &self.state_cursor,
                    cache,
                };
                execute_recovering(self.program, &mut sched, &mut sink, self.ctx.observer)
            } else {
                execute_recovering(
                    self.program,
                    &mut sched,
                    &mut self.ctx.coverage,
                    self.ctx.observer,
                )
            };
            let ItemScheduler {
                stack: run_stack,
                path,
                emitted,
                emitted_faults,
                cache: item_cache,
                ..
            } = sched;
            stack = run_stack;
            if let Some(c) = item_cache {
                self.ctx.cache_hit(c.hits);
                self.ctx.cache_store(c.stores);
            }

            if let ExecutionOutcome::ReplayDivergence {
                step,
                expected,
                ref actual,
            } = result.outcome
            {
                // The program broke the determinism contract on this
                // path: enabled sets observed during the run cannot be
                // trusted, so forfeit the work items it emitted and
                // quarantine the diverging path. Backtracking still
                // advances, so the rest of the item's subtree is
                // explored.
                self.ctx.quarantine(QuarantinedTrace {
                    schedule: path,
                    step,
                    expected,
                    actual: actual.clone(),
                });
            } else {
                let queue_cap = self
                    .ctx
                    .config
                    .max_work_queue
                    .unwrap_or(usize::MAX)
                    .min(self.ctx.remaining_budget());
                // Preemption deferrals run at the next preemption bound,
                // fault deferrals at the next fault level of this bound.
                for (level, items) in [
                    ((self.bound + 1, self.fault), emitted),
                    ((self.bound, self.fault + 1), emitted_faults),
                ] {
                    for item in items {
                        let queue = self.deferred.entry(level).or_default();
                        if queue.len() < queue_cap {
                            queue.push_back(item);
                            self.ctx.observer.work_item_deferred(level.0);
                        } else {
                            self.truncated = true;
                        }
                    }
                }
                self.deferred.retain(|_, q| !q.is_empty());
            }

            self.ctx.record(&result, self.program.executions_per_run());

            // Backtrack: advance the deepest branch point with options
            // left; drop exhausted ones. Done *before* checkpointing so a
            // resumed run starts at the next unexplored schedule instead
            // of repeating the one just recorded.
            let item_done = loop {
                match stack.last_mut() {
                    Some(top) if top.next_ix + 1 < top.options.len() => {
                        top.next_ix += 1;
                        break false;
                    }
                    Some(_) => {
                        stack.pop();
                    }
                    None => break true,
                }
            };

            if ckpt.is_some() && interrupt::interrupted() {
                self.ctx.halt(AbortReason::Interrupted);
            }
            let due = ckpt
                .as_deref()
                .is_some_and(|ck| ck.due(self.ctx.executions));
            if due || (self.ctx.stop && ckpt.is_some()) {
                let in_progress = if item_done {
                    None
                } else {
                    Some((&prefix, &stack[..]))
                };
                self.write_checkpoint(ckpt, in_progress);
            }
            if item_done || self.ctx.stop {
                return;
            }
        }
    }

    /// Total number of deferred work items across every pending level.
    fn deferred_len(&self) -> usize {
        self.deferred.values().map(|q| q.len()).sum()
    }

    /// Builds and atomically writes a snapshot of the current loop
    /// state. `in_progress` carries the partially explored work item, if
    /// the checkpoint falls inside one.
    fn write_checkpoint(
        &mut self,
        ckpt: &mut Option<&mut Checkpointer>,
        in_progress: Option<(&Schedule, &[Branch])>,
    ) {
        let Some(ck) = ckpt.as_deref_mut() else {
            return;
        };
        let mut base = self.ctx.snapshot_base();
        base.truncated = self.truncated;
        let executions = base.executions;
        let snapshot = SearchSnapshot {
            strategy: "icb".to_string(),
            meta: ck.meta().to_vec(),
            config: self.ctx.config.clone(),
            base,
            state: StrategyState::Icb(IcbState {
                bound: self.bound,
                fault: self.fault,
                bound_executions_base: self.execs_base,
                bound_bugs_base: self.bugs_base,
                completed_bound: self.completed_bound,
                work: self.work.iter().cloned().collect(),
                deferred: self
                    .deferred
                    .iter()
                    .map(|(&(c, f), q)| (c, f, q.iter().cloned().collect()))
                    .collect(),
                bound_history: self.bound_history.clone(),
                in_progress: in_progress
                    .map(|(p, s)| (p.clone(), s.iter().map(Branch::to_snapshot).collect())),
            }),
        };
        match ck.write(&snapshot) {
            Ok(()) => self.ctx.observer.checkpoint_written(executions),
            Err(e) => eprintln!("warning: checkpoint write failed: {e}"),
        }
    }
}

/// Rejects branch stacks a checksum-valid but hand-damaged snapshot
/// could smuggle in (an out-of-range `next_ix` would otherwise panic
/// deep inside the scheduler).
pub(crate) fn validate_branches(stack: &[BranchSnapshot]) -> Result<(), SnapshotError> {
    for b in stack {
        if b.options.is_empty() || b.next_ix >= b.options.len() {
            return Err(SnapshotError::Corrupt(
                "branch stack entry with out-of-range option index".to_string(),
            ));
        }
    }
    Ok(())
}

impl SearchStrategy for IcbSearch {
    #[allow(deprecated)]
    fn search_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer, None, None, None)
    }

    fn name(&self) -> String {
        "icb".to_string()
    }
}

/// A nonpreempting branch point within one work item's nested DFS.
#[derive(Clone, Debug)]
pub(crate) struct Branch {
    /// Step index of the scheduling point.
    pub(crate) step: usize,
    /// The enabled threads at that point.
    pub(crate) options: Vec<Tid>,
    /// Index of the option taken in the current run.
    pub(crate) next_ix: usize,
}

impl Branch {
    pub(crate) fn to_snapshot(&self) -> BranchSnapshot {
        BranchSnapshot {
            step: self.step,
            options: self.options.clone(),
            next_ix: self.next_ix,
        }
    }
}

impl From<BranchSnapshot> for Branch {
    fn from(b: BranchSnapshot) -> Self {
        Branch {
            step: b.step,
            options: b.options,
            next_ix: b.next_ix,
        }
    }
}

/// A [`StateSink`] tee: forwards every fingerprint to the wrapped sink
/// and mirrors the latest one into a shared cell, so the scheduler can
/// read "the state we are at right now" at pick time without borrowing
/// the coverage tracker.
pub(crate) struct CursorSink<'a> {
    pub(crate) inner: &'a mut dyn StateSink,
    pub(crate) state: &'a Cell<u64>,
    /// Tee of every visit, so a persistent cache can save the visited
    /// set as seed states for future warm runs.
    pub(crate) cache: &'a dyn ExplorationCache,
}

impl StateSink for CursorSink<'_> {
    fn visit(&mut self, fingerprint: u64) {
        self.state.set(fingerprint);
        self.cache.note_state(fingerprint);
        self.inner.visit(fingerprint);
    }
}

impl std::fmt::Debug for CursorSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CursorSink")
            .field("state", &self.state.get())
            .finish_non_exhaustive()
    }
}

/// Per-run cache probe state of one [`ItemScheduler`].
pub(crate) struct ItemCache<'a> {
    pub(crate) cache: &'a dyn ExplorationCache,
    /// Latest fingerprint of the in-flight execution (fed by
    /// [`CursorSink`]); at a forced-continue point this is the state the
    /// deferred work items branch from.
    pub(crate) state: Rc<Cell<u64>>,
    /// Coverage credit of the work items this run emits (born at the
    /// next bound); `None` when they lie beyond the target bound and
    /// will never run — then neither probed nor recorded.
    pub(crate) credit: Option<u32>,
    /// Coverage credit of *fault* work items, which run at this bound
    /// (next fault level), so they carry one more preemption of budget
    /// than preemption deferrals do.
    pub(crate) fault_credit: Option<u32>,
    pub(crate) hits: usize,
    pub(crate) stores: usize,
}

impl ItemCache<'_> {
    /// Probes the cache for the `(current state, t)` subtree. `true`
    /// means it is already covered: skip the emission (a hit).
    /// Otherwise the probe has recorded the subtree as ours to explore
    /// (a store).
    pub(crate) fn covered(&mut self, t: Tid) -> bool {
        let Some(credit) = self.credit else {
            return false;
        };
        if self.cache.probe(self.state.get(), t, credit) {
            self.hits += 1;
            true
        } else {
            self.stores += 1;
            false
        }
    }

    /// Probes the cache for the faulted variant of the `(current state,
    /// t)` subtree. The key is salted with [`FAULT_PROBE_SALT`]: an
    /// injected fault changes the continuation, so the faulted subtree
    /// must never collide with the fault-free entry.
    pub(crate) fn covered_fault(&mut self, t: Tid) -> bool {
        let Some(credit) = self.fault_credit else {
            return false;
        };
        if self
            .cache
            .probe(self.state.get() ^ FAULT_PROBE_SALT, t, credit)
        {
            self.hits += 1;
            true
        } else {
            self.stores += 1;
            false
        }
    }
}

/// The scheduler driving one run within a work item (shared with the
/// parallel driver, whose workers run the same nested DFS per item).
pub(crate) struct ItemScheduler<'a> {
    pub(crate) prefix: &'a Schedule,
    pub(crate) stack: Vec<Branch>,
    /// Position in `stack` during the current run.
    pub(crate) cursor: usize,
    /// Full schedule chosen so far in this run (prefix included).
    pub(crate) path: Schedule,
    /// First step index considered fresh for work-item emission.
    pub(crate) fresh_from: usize,
    /// Deferred work items (`path-so-far · t`) discovered in this run.
    pub(crate) emitted: Vec<Schedule>,
    /// Deferred *fault* work items (`path-so-far` with a fault injected
    /// into its last step) discovered in this run; they belong to the
    /// next fault level of the current preemption bound.
    pub(crate) emitted_faults: Vec<Schedule>,
    /// Whether fresh fallible points emit fault work items (false once
    /// the fault bound is reached, and always false at fault bound 0).
    pub(crate) emit_faults: bool,
    /// Fingerprint-cache probing at emission points; `None` emits every
    /// fresh work item (the legacy behavior).
    pub(crate) cache: Option<ItemCache<'a>>,
}

impl Scheduler for ItemScheduler<'_> {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        let choice = if point.step_index < self.prefix.len() {
            let tid = self
                .prefix
                .get(point.step_index)
                .expect("prefix indexed in range");
            if !point.is_enabled(tid) {
                DivergencePayload::new(point.step_index, tid, point.enabled.to_vec()).raise();
            }
            tid
        } else if point.current_enabled {
            // Forced: continuing the current thread is free; switching to
            // any other enabled thread costs a preemption and is deferred
            // to the next bound.
            let current = point
                .current
                .expect("current_enabled implies a current thread");
            if point.step_index >= self.fresh_from {
                for &t in point.enabled {
                    if t != current {
                        if let Some(cache) = &mut self.cache {
                            if cache.covered(t) {
                                continue;
                            }
                        }
                        let mut item = self.path.clone();
                        item.push(t);
                        self.emitted.push(item);
                    }
                }
            }
            current
        } else {
            // Nonpreempting branch point: the previous thread blocked or
            // terminated (or this is the initial point); explore every
            // enabled thread via the branch stack.
            if self.cursor < self.stack.len() {
                let b = &self.stack[self.cursor];
                debug_assert_eq!(
                    b.step, point.step_index,
                    "branch stack out of sync with execution"
                );
                let tid = b.options[b.next_ix];
                if !point.is_enabled(tid) {
                    // The program is not deterministic: a previously
                    // recorded branch option is no longer enabled.
                    DivergencePayload::new(point.step_index, tid, point.enabled.to_vec()).raise();
                }
                self.cursor += 1;
                tid
            } else {
                self.stack.push(Branch {
                    step: point.step_index,
                    options: point.enabled.to_vec(),
                    next_ix: 0,
                });
                self.cursor += 1;
                point.enabled[0]
            }
        };
        self.path.push(choice);
        choice
    }

    /// Within the prefix, replay the recorded fault set (and mirror it
    /// into `path` so emitted work items and quarantine records inherit
    /// it). Past the prefix, never inject — instead, at fresh points,
    /// defer a copy of the path with a fault added to this very step:
    /// the faulted continuation is explored at the next fault level.
    fn decide_fault(&mut self, point: FaultPoint) -> bool {
        if point.step_index < self.prefix.len() {
            if self.prefix.fault_at(point.step_index) {
                self.path.add_fault(point.step_index);
                return true;
            }
            return false;
        }
        if self.emit_faults && point.step_index >= self.fresh_from {
            if let Some(cache) = &mut self.cache {
                if cache.covered_fault(point.tid) {
                    return false;
                }
            }
            let mut item = self.path.clone();
            item.add_fault(point.step_index);
            self.emitted_faults.push(item);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::search::testprog::{schedule_count, Counters};
    use crate::search::Search;

    #[test]
    fn exhausts_two_by_two_counter_program() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.executions as u128, schedule_count(2, 2));
        assert_eq!(report.completed_bound, Some(2));
        // Per-bound execution counts for 2 threads × 2 steps:
        // bound 0: 0011, 1100; bound 1: 0110, 1001; bound 2: 0101, 1010.
        let per_bound: Vec<usize> = report.bound_history.iter().map(|b| b.executions).collect();
        assert_eq!(per_bound, vec![2, 2, 2]);
    }

    #[test]
    fn exhausts_three_by_two_counter_program() {
        let p = Counters {
            n: 3,
            k: 2,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.executions as u128, schedule_count(3, 2));
    }

    #[test]
    fn per_bound_counts_respect_theorem_1() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(report.completed);
        for b in &report.bound_history {
            // Non-blocking program: each thread's only blocking action is
            // its fictitious termination, so b = 1 (Section 2).
            let bound = bounds::executions_with_preemptions(3, 3, 1, b.bound as u64).unwrap();
            assert!(
                (b.executions as u128) <= bound,
                "bound {}: {} > {}",
                b.bound,
                b.executions,
                bound
            );
        }
    }

    #[test]
    fn finds_bug_with_minimal_preemptions() {
        // Thread 1's first step must observe counter == 1: exactly one
        // step of thread 0 must precede it, which requires preempting
        // thread 0 once.
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 1)),
        };
        #[allow(deprecated)] // shim regression: the convenience entry point
        let bug = IcbSearch::find_minimal_bug(&p, 10_000).expect("bug must be found");
        assert_eq!(bug.preemptions, 1);
    }

    #[test]
    fn finds_zero_preemption_bug_at_bound_zero() {
        // Thread 1's first step observes counter == 2: schedule 0 0 1 1,
        // reachable without preemptions.
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 2)),
        };
        #[allow(deprecated)] // shim regression: the convenience entry point
        let bug = IcbSearch::find_minimal_bug(&p, 10_000).expect("bug must be found");
        assert_eq!(bug.preemptions, 0);
    }

    #[test]
    fn bug_schedule_replays_to_same_outcome() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: Some((1, 1, 3)),
        };
        #[allow(deprecated)] // shim regression: the convenience entry point
        let bug = IcbSearch::find_minimal_bug(&p, 100_000).expect("bug must be found");
        let mut replay = crate::replay::ReplayScheduler::new(bug.schedule.clone());
        let result =
            crate::ControlledProgram::execute(&p, &mut replay, &mut crate::coverage::NullSink);
        assert!(result.outcome.is_bug());
        assert_eq!(result.stats.preemptions, bug.preemptions);
    }

    #[test]
    fn respects_execution_budget() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig::with_max_executions(7))
            .run()
            .unwrap();
        assert_eq!(report.executions, 7);
        assert!(!report.completed);
    }

    #[test]
    fn preemption_bound_stops_iteration() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig {
                preemption_bound: Some(1),
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.completed_bound, Some(1));
        assert!(!report.completed); // deeper bounds exist but were skipped
        assert!(report.bound_history.len() == 2);
        // All explored executions have at most 1 preemption.
        assert!(report.max_stats.preemptions <= 1);
    }

    #[test]
    fn bound_zero_explores_without_limiting_depth() {
        // Even at bound 0, executions run to completion: max steps equals
        // the full program length.
        let p = Counters {
            n: 2,
            k: 5,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig {
                preemption_bound: Some(0),
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.max_stats.steps, 10);
        assert_eq!(report.max_stats.preemptions, 0);
        assert_eq!(report.executions, 2); // 0^5 1^5 and 1^5 0^5
    }

    #[test]
    fn queue_cap_sets_truncated() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig {
                max_work_queue: Some(1),
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert!(report.truncated);
        assert!(!report.completed);
    }

    #[test]
    fn executions_are_distinct_schedules() {
        // The nested DFS must not re-run identical schedules: total
        // executions equals the number of distinct schedules, which for
        // the no-bug counter program is the multinomial count.
        let p = Counters {
            n: 2,
            k: 4,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.executions as u128, schedule_count(2, 4));
    }
}
