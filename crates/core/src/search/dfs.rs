//! Depth-first baselines: unbounded DFS (`dfs`), depth-bounded DFS
//! (`db:N`) and iterative depth-bounding (`idfs`), the strategies the
//! paper compares ICB against (Figures 2, 5 and 6).

use std::cell::Cell;
use std::rc::Rc;

use crate::cache::{coverage_credit, ExplorationCache};
use crate::coverage::StateSink;
use crate::program::{ControlledProgram, SchedulePoint, Scheduler};
use crate::search::icb::{validate_branches, CursorSink, ItemCache};
use crate::search::{
    execute_recovering, CacheBinding, QuarantinedTrace, SearchConfig, SearchCtx, SearchReport,
    SearchStrategy,
};
use crate::snapshot::{
    interrupt, BranchSnapshot, Checkpointer, DfsState, ResumeBase, SearchSnapshot, SnapshotError,
    StrategyState,
};
use crate::telemetry::{AbortReason, NoopObserver, SearchObserver};
use crate::tid::Tid;
use crate::trace::{DivergencePayload, ExecutionOutcome, Schedule};

/// Stateless depth-first search over the schedule tree.
///
/// At every scheduling point before the depth bound, the search branches
/// over *all* enabled threads — preempting freely, which is exactly why it
/// drowns in shallow interleavings on multithreaded programs (Section 4.2
/// of the paper). Beyond the depth bound the run is completed under the
/// default preemption-free policy, but states visited there are not
/// counted and bugs occurring there are not reported: the depth-bounded
/// search semantics is "the tree truncated at depth `N`".
#[derive(Clone, Debug, Default)]
pub struct DfsSearch {
    config: SearchConfig,
    depth_bound: Option<usize>,
}

impl DfsSearch {
    /// Unbounded depth-first search (the paper's `dfs`).
    pub fn new(config: SearchConfig) -> Self {
        DfsSearch {
            config,
            depth_bound: None,
        }
    }

    /// Depth-first search truncated at `bound` steps (the paper's
    /// `db:N`).
    pub fn with_depth_bound(config: SearchConfig, bound: usize) -> Self {
        DfsSearch {
            config,
            depth_bound: Some(bound),
        }
    }

    /// Runs the search.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::Dfs).run()"
    )]
    pub fn run(&self, program: &dyn ControlledProgram) -> SearchReport {
        self.drive(program, &mut NoopObserver, None, Vec::new(), None, None)
    }

    /// Runs the search, streaming telemetry events to `observer`.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::Dfs).observer(obs).run()"
    )]
    pub fn run_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer, None, Vec::new(), None, None)
    }

    /// Runs the search with periodic checkpointing (see
    /// [`IcbSearch::run_checkpointed`](crate::search::IcbSearch::run_checkpointed)
    /// for the contract).
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::Dfs).observer(obs).checkpoint(ck).run()"
    )]
    pub fn run_checkpointed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
        ckpt: &mut Checkpointer,
    ) -> SearchReport {
        self.drive(program, observer, Some(ckpt), Vec::new(), None, None)
    }

    /// Resumes a search from a checkpoint written by
    /// [`run_checkpointed`](DfsSearch::run_checkpointed); the final
    /// report matches the uninterrupted run's.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).resume_from(snapshot).run()"
    )]
    pub fn resume(
        program: &dyn ControlledProgram,
        snapshot: SearchSnapshot,
        observer: &mut dyn SearchObserver,
        ckpt: Option<&mut Checkpointer>,
    ) -> Result<SearchReport, SnapshotError> {
        let state = match snapshot.state {
            StrategyState::Dfs(state) => state,
            _ => {
                return Err(SnapshotError::WrongStrategy {
                    expected: "dfs".to_string(),
                    found: snapshot.strategy,
                })
            }
        };
        validate_branches(&state.stack)?;
        let search = match state.depth_bound {
            Some(b) => DfsSearch::with_depth_bound(snapshot.config, b),
            None => DfsSearch::new(snapshot.config),
        };
        let stack = state.stack.into_iter().map(Branch::from).collect();
        Ok(search.drive(program, observer, ckpt, stack, Some(snapshot.base), None))
    }

    pub(crate) fn drive(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
        mut ckpt: Option<&mut Checkpointer>,
        initial_stack: Vec<Branch>,
        base: Option<ResumeBase>,
        cache: Option<CacheBinding<'_>>,
    ) -> SearchReport {
        observer.search_started(&self.name());
        let mut ctx = SearchCtx::new(self.config.clone(), observer);
        if let Some(base) = base {
            let executions = base.executions;
            ctx.restore(base, 0, executions);
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.mark_written(ctx.executions);
            }
            if ctx.remaining_budget() == 0 {
                ctx.halt(AbortReason::ExecutionBudget);
            }
        }
        if let Some(binding) = &cache {
            ctx.attach_cache(binding.heuristic);
            ctx.seed_coverage(&binding.cache.seed_states());
        }
        let completed = if ctx.stop {
            false
        } else {
            run_dfs(
                program,
                self.depth_bound,
                &mut ctx,
                &mut None,
                initial_stack,
                &mut ckpt,
                &self.name(),
                cache.as_ref().map(|b| b.cache),
            )
        };
        if completed {
            if let Some(ck) = ckpt {
                ck.finish();
            }
        }
        ctx.into_report(self.name(), completed, None, Vec::new(), false)
    }

    /// Returns the depth bound, if any.
    pub fn depth_bound(&self) -> Option<usize> {
        self.depth_bound
    }
}

impl SearchStrategy for DfsSearch {
    #[allow(deprecated)]
    fn search_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer, None, Vec::new(), None, None)
    }

    fn name(&self) -> String {
        match self.depth_bound {
            Some(b) => format!("db:{b}"),
            None => "dfs".to_string(),
        }
    }
}

/// Iterative depth-bounding (the paper's `idfs`): repeat depth-bounded
/// DFS with bounds `start, start + step, …` up to `max`, sharing one
/// coverage set and execution budget.
///
/// The iteration stops early once a bound exceeds the longest execution
/// seen (deepening further cannot reach new states) or the budget runs
/// out.
#[derive(Clone, Debug)]
pub struct IterativeDeepeningSearch {
    config: SearchConfig,
    start: usize,
    step: usize,
    max: usize,
}

impl IterativeDeepeningSearch {
    /// Creates an iterative-deepening search with bounds
    /// `start, start + step, …, ≤ max`.
    pub fn new(config: SearchConfig, start: usize, step: usize, max: usize) -> Self {
        assert!(step > 0, "deepening step must be positive");
        IterativeDeepeningSearch {
            config,
            start,
            step,
            max,
        }
    }

    /// Runs the search.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::IterativeDeepening { .. }).run()"
    )]
    pub fn run(&self, program: &dyn ControlledProgram) -> SearchReport {
        self.drive(program, &mut NoopObserver)
    }

    /// Runs the search, streaming telemetry events to `observer`.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(Strategy::IterativeDeepening { .. }).observer(obs).run()"
    )]
    pub fn run_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer)
    }

    pub(crate) fn drive(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        observer.search_started(&self.name());
        let mut ctx = SearchCtx::new(self.config.clone(), observer);
        let mut completed = false;
        let mut bound = self.start;
        loop {
            let mut max_len: Option<usize> = Some(0);
            let exhausted = run_dfs(
                program,
                Some(bound),
                &mut ctx,
                &mut max_len,
                Vec::new(),
                &mut None,
                "idfs",
                None,
            );
            if ctx.stop {
                break;
            }
            if exhausted && max_len.unwrap_or(usize::MAX) <= bound {
                // No execution was truncated: the full space is explored.
                completed = true;
                break;
            }
            if bound >= self.max {
                break;
            }
            bound = (bound + self.step).min(self.max);
        }
        ctx.into_report(self.name(), completed, None, Vec::new(), false)
    }
}

impl SearchStrategy for IterativeDeepeningSearch {
    #[allow(deprecated)]
    fn search_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport {
        self.drive(program, observer)
    }

    fn name(&self) -> String {
        format!("idfs-{}", self.max)
    }
}

/// Shared DFS engine. Returns `true` if the (possibly depth-bounded)
/// branch tree was exhausted. When `track_max_len` is `Some`, the longest
/// observed execution length is written into it. A non-empty
/// `initial_stack` continues a checkpointed search at the next
/// unexplored schedule; `ckpt`, when present, receives periodic and
/// final snapshots labelled `strategy_label`.
#[allow(clippy::too_many_arguments)]
fn run_dfs(
    program: &dyn ControlledProgram,
    depth_bound: Option<usize>,
    ctx: &mut SearchCtx<'_>,
    track_max_len: &mut Option<usize>,
    initial_stack: Vec<Branch>,
    ckpt: &mut Option<&mut Checkpointer>,
    strategy_label: &str,
    cache: Option<&dyn ExplorationCache>,
) -> bool {
    let bound = depth_bound.unwrap_or(usize::MAX);
    // Sound only for *unbounded* DFS (a depth-bounded subtree is explored
    // truncated, which covers nothing); the session builder enforces it.
    debug_assert!(
        cache.is_none() || depth_bound.is_none(),
        "fingerprint cache is unsound under a depth bound"
    );
    let state_cursor = Rc::new(Cell::new(0u64));
    let mut stack = initial_stack;
    loop {
        let mut sched = DfsScheduler {
            stack,
            cursor: 0,
            path: Schedule::new(),
            bound,
            cache: cache.map(|cache| ItemCache {
                cache,
                state: Rc::clone(&state_cursor),
                // DFS explores each recorded subtree schedule-exhaustively.
                credit: coverage_credit(0, None),
                // DFS never defers fault items (faults are ICB-only).
                fault_credit: None,
                hits: 0,
                stores: 0,
            }),
            coast: false,
        };
        ctx.begin_execution();
        let result = if let Some(cache) = cache {
            state_cursor.set(0);
            let mut gated = GatedSink {
                inner: &mut ctx.coverage,
                remaining: bound,
            };
            let mut sink = CursorSink {
                inner: &mut gated,
                state: &state_cursor,
                cache,
            };
            execute_recovering(program, &mut sched, &mut sink, ctx.observer)
        } else {
            let mut sink = GatedSink {
                inner: &mut ctx.coverage,
                remaining: bound,
            };
            execute_recovering(program, &mut sched, &mut sink, ctx.observer)
        };
        stack = sched.stack;
        if let Some(c) = sched.cache.take() {
            ctx.cache_hit(c.hits);
            ctx.cache_store(c.stores);
        }

        if let Some(m) = track_max_len {
            *m = (*m).max(result.stats.steps);
        }

        if let ExecutionOutcome::ReplayDivergence {
            step,
            expected,
            ref actual,
        } = result.outcome
        {
            ctx.quarantine(QuarantinedTrace {
                schedule: sched.path,
                step,
                expected,
                actual: actual.clone(),
            });
        }

        // Within the depth bound the result stands; beyond it the run is
        // an artifact of the completion policy — downgrade any bug.
        let effective = if result.stats.steps <= bound || !result.outcome.is_bug() {
            result
        } else {
            let mut r = result;
            r.outcome = ExecutionOutcome::Terminated;
            r
        };
        ctx.record(&effective, program.executions_per_run());

        // Backtrack before checkpointing, so a resumed run starts at the
        // next unexplored schedule instead of repeating the last one.
        let done = loop {
            match stack.last_mut() {
                Some(top) if top.next_ix + 1 < top.options.len() => {
                    top.next_ix += 1;
                    break false;
                }
                Some(_) => {
                    stack.pop();
                }
                None => break true,
            }
        };

        if ckpt.is_some() && interrupt::interrupted() {
            ctx.halt(AbortReason::Interrupted);
        }
        let due = ckpt.as_deref().is_some_and(|ck| ck.due(ctx.executions));
        if !done && (due || (ctx.stop && ckpt.is_some())) {
            write_dfs_checkpoint(ctx, ckpt, strategy_label, depth_bound, &stack);
        }
        if done {
            return true;
        }
        if ctx.stop {
            return false;
        }
    }
}

fn write_dfs_checkpoint(
    ctx: &mut SearchCtx<'_>,
    ckpt: &mut Option<&mut Checkpointer>,
    strategy_label: &str,
    depth_bound: Option<usize>,
    stack: &[Branch],
) {
    let Some(ck) = ckpt.as_deref_mut() else {
        return;
    };
    let base = ctx.snapshot_base();
    let executions = base.executions;
    let snapshot = SearchSnapshot {
        strategy: strategy_label.to_string(),
        meta: ck.meta().to_vec(),
        config: ctx.config.clone(),
        base,
        state: StrategyState::Dfs(DfsState {
            depth_bound,
            stack: stack.iter().map(Branch::to_snapshot).collect(),
        }),
    };
    match ck.write(&snapshot) {
        Ok(()) => ctx.observer.checkpoint_written(executions),
        Err(e) => eprintln!("warning: checkpoint write failed: {e}"),
    }
}

#[derive(Clone, Debug)]
pub(crate) struct Branch {
    pub(crate) options: Vec<Tid>,
    pub(crate) next_ix: usize,
}

impl Branch {
    pub(crate) fn to_snapshot(&self) -> BranchSnapshot {
        BranchSnapshot {
            step: 0,
            options: self.options.clone(),
            next_ix: self.next_ix,
        }
    }
}

impl From<BranchSnapshot> for Branch {
    fn from(b: BranchSnapshot) -> Self {
        Branch {
            options: b.options,
            next_ix: b.next_ix,
        }
    }
}

struct DfsScheduler<'a> {
    stack: Vec<Branch>,
    cursor: usize,
    /// Full schedule chosen so far in this run, for quarantine reports.
    path: Schedule,
    bound: usize,
    /// Fingerprint-cache probing at fresh branch points; `None` branches
    /// over every enabled thread (the legacy behavior).
    cache: Option<ItemCache<'a>>,
    /// Set once a fresh branch point found *all* its subtrees covered:
    /// the rest of the run completes under the default policy without
    /// pushing further branches (they would all lie inside covered
    /// subtrees).
    coast: bool,
}

impl Scheduler for DfsScheduler<'_> {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        if point.step_index >= self.bound || self.coast {
            // Truncated region (or coasting out of a fully covered
            // branch point): complete the run without branching.
            let choice = point.default_choice();
            self.path.push(choice);
            return choice;
        }
        let choice = if self.cursor < self.stack.len() {
            let b = &self.stack[self.cursor];
            let tid = b.options[b.next_ix];
            if !point.is_enabled(tid) {
                // The program is not deterministic: a previously recorded
                // branch option is no longer enabled.
                DivergencePayload::new(point.step_index, tid, point.enabled.to_vec()).raise();
            }
            self.cursor += 1;
            tid
        } else {
            let mut options = point.enabled.to_vec();
            if let Some(cache) = &mut self.cache {
                // Keep only the options whose subtrees are not already
                // covered from the current state.
                options.retain(|&t| !cache.covered(t));
                if options.is_empty() {
                    self.coast = true;
                    let choice = point.default_choice();
                    self.path.push(choice);
                    return choice;
                }
            }
            self.stack.push(Branch {
                options,
                next_ix: 0,
            });
            self.cursor += 1;
            let b = self.stack.last().expect("branch just pushed");
            b.options[0]
        };
        self.path.push(choice);
        choice
    }
}

/// Forwards at most `remaining` fingerprints, dropping the rest — states
/// past the depth bound do not count as covered.
pub(crate) struct GatedSink<'a, S: StateSink> {
    pub(crate) inner: &'a mut S,
    pub(crate) remaining: usize,
}

impl<S: StateSink> StateSink for GatedSink<'_, S> {
    fn visit(&mut self, fingerprint: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            self.inner.visit(fingerprint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testprog::{schedule_count, Counters};
    use crate::search::{Search, Strategy};

    #[test]
    fn unbounded_dfs_exhausts_the_space() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .strategy(Strategy::Dfs)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.executions as u128, schedule_count(2, 3));
    }

    #[test]
    fn dfs_and_icb_cover_identical_state_sets() {
        let p = Counters {
            n: 3,
            k: 2,
            bug: None,
        };
        let dfs = Search::over(&p)
            .strategy(Strategy::Dfs)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        let icb = Search::over(&p)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(dfs.completed && icb.completed);
        assert_eq!(dfs.distinct_states, icb.distinct_states);
        assert_eq!(dfs.executions, icb.executions);
    }

    #[test]
    fn depth_bound_truncates_coverage() {
        let p = Counters {
            n: 2,
            k: 4,
            bug: None,
        };
        let full = Search::over(&p)
            .strategy(Strategy::Dfs)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        let bounded = Search::over(&p)
            .strategy(Strategy::DepthBounded(3))
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(bounded.completed);
        assert!(
            bounded.distinct_states < full.distinct_states,
            "bounded {} !< full {}",
            bounded.distinct_states,
            full.distinct_states
        );
        // The truncated tree is much smaller.
        assert!(bounded.executions < full.executions);
    }

    #[test]
    fn depth_bound_hides_deep_bugs() {
        // Bug on thread 1's last step needs depth ≥ 6 to manifest.
        let p = Counters {
            n: 2,
            k: 3,
            bug: Some((1, 2, 5)),
        };
        let shallow = Search::over(&p)
            .strategy(Strategy::DepthBounded(2))
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(shallow.bugs.is_empty());
        let deep = Search::over(&p)
            .strategy(Strategy::Dfs)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(!deep.bugs.is_empty());
    }

    #[test]
    fn dfs_finds_bug_but_not_necessarily_minimal() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 1)),
        };
        let report = Search::over(&p)
            .strategy(Strategy::Dfs)
            .config(SearchConfig {
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert!(!report.bugs.is_empty());
    }

    #[test]
    fn idfs_completes_small_spaces() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .strategy(Strategy::IterativeDeepening {
                start: 2,
                step: 2,
                max: 100,
            })
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert!(report.completed);
        // All states eventually covered.
        let full = Search::over(&p)
            .strategy(Strategy::Dfs)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.distinct_states, full.distinct_states);
    }

    #[test]
    fn idfs_respects_budget() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        let report = Search::over(&p)
            .strategy(Strategy::IterativeDeepening {
                start: 2,
                step: 2,
                max: 50,
            })
            .config(SearchConfig::with_max_executions(10))
            .run()
            .unwrap();
        assert_eq!(report.executions, 10);
        assert!(!report.completed);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(DfsSearch::new(SearchConfig::default()).name(), "dfs");
        assert_eq!(
            DfsSearch::with_depth_bound(SearchConfig::default(), 40).name(),
            "db:40"
        );
        assert_eq!(
            IterativeDeepeningSearch::new(SearchConfig::default(), 10, 10, 100).name(),
            "idfs-100"
        );
    }
}
