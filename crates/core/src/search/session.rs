//! The unified search session API.
//!
//! [`Search`] is the one public entry point for running any strategy:
//! it replaces the per-strategy `run` / `run_observed` /
//! `run_checkpointed` / `resume` quartet with a single builder that
//! validates its configuration up front (returning a typed
//! [`SearchError`] instead of panicking) and dispatches to the
//! sequential drivers at `jobs == 1` or the parallel drivers at
//! `jobs > 1`.
//!
//! ```text
//! Search::over(&program)
//!     .strategy(Strategy::Icb)
//!     .config(SearchConfig::with_max_executions(10_000))
//!     .jobs(4)
//!     .run()?
//! ```
//!
//! # Determinism contract
//!
//! * `jobs == 1` runs the unchanged sequential drivers: reports and
//!   telemetry are byte-identical to the pre-builder API.
//! * Any `jobs >= 2` produces the *same* [`SearchReport`] as any other
//!   `jobs >= 2` — worker count and timing only affect wall-clock.
//!   Bugs are merged first-bug-wins by minimal preemption count, then
//!   lexicographic schedule; coverage and per-bound statistics are
//!   synchronized at bound barriers.
//! * `jobs == 1` vs `jobs >= 2` agree on every order-*independent*
//!   field (executions, distinct states, bound history, bug schedules);
//!   execution *numbering* of individual bug reports may differ because
//!   the parallel merge renumbers canonically. The random strategy
//!   additionally samples walks from per-index streams when parallel,
//!   which is a different (equally uniform) sampling than the
//!   sequential single stream.

use std::sync::Arc;
use std::time::Duration;

use crate::cache::{Certification, ExplorationCache};
use crate::metrics::{MetricsBridge, MetricsRegistry};
use crate::program::ControlledProgram;
use crate::search::bestfirst::BestFirstSearch;
use crate::search::dfs::{Branch as DfsBranch, DfsSearch, IterativeDeepeningSearch};
use crate::search::icb::{validate_branches, IcbSearch};
use crate::search::parallel::{run_parallel_dfs, run_parallel_icb, run_parallel_random};
use crate::search::random::RandomSearch;
use crate::search::{CacheBinding, CacheSummary, SearchConfig, SearchReport};
use crate::snapshot::{Checkpointer, SearchSnapshot, SnapshotError, StrategyState};
use crate::telemetry::{NoopObserver, SearchObserver};
use crate::trace::Schedule;

/// Which search algorithm a [`Search`] session runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Iterative context bounding (the paper's Algorithm 1). The
    /// default.
    #[default]
    Icb,
    /// Unbounded depth-first search (`dfs`).
    Dfs,
    /// Depth-bounded DFS (`db:N`).
    DepthBounded(usize),
    /// Iterative deepening DFS (`idfs`). Sequential only.
    IterativeDeepening {
        /// Initial depth bound.
        start: usize,
        /// Bound increment per iteration (must be positive).
        step: usize,
        /// Final depth bound.
        max: usize,
    },
    /// Seeded uniform random walk (`random`). Requires an execution
    /// budget.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Coverage-guided best-first search. Sequential only; requires an
    /// execution budget.
    BestFirst,
}

impl Strategy {
    /// The strategy's report label (`SearchReport::strategy`), matching
    /// the paper's naming: `icb`, `dfs`, `db:N`, `idfs-MAX`, `random`,
    /// `best-first`.
    pub fn label(&self) -> String {
        match self {
            Strategy::Icb => "icb".to_string(),
            Strategy::Dfs => "dfs".to_string(),
            Strategy::DepthBounded(b) => format!("db:{b}"),
            Strategy::IterativeDeepening { max, .. } => format!("idfs-{max}"),
            Strategy::Random { .. } => "random".to_string(),
            Strategy::BestFirst => "best-first".to_string(),
        }
    }
}

/// A configuration rejected by [`Search::run`] before any execution.
#[derive(Debug)]
pub enum SearchError {
    /// `jobs(0)` — there must be at least one worker.
    ZeroJobs,
    /// `max_duration` of zero — the search could never run an execution.
    ZeroDuration,
    /// A [`Checkpointer`] with a checkpoint interval of zero executions.
    ZeroCheckpointInterval,
    /// The strategy requires `max_executions` (random and best-first
    /// never exhaust the schedule space on their own).
    MissingBudget,
    /// The requested combination is not supported (e.g. `jobs > 1` for a
    /// sequential-only strategy); the message says what and why.
    Unsupported(String),
    /// The resume snapshot was rejected.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::ZeroJobs => write!(f, "jobs must be at least 1"),
            SearchError::ZeroDuration => {
                write!(f, "max_duration of zero would never run an execution")
            }
            SearchError::ZeroCheckpointInterval => {
                write!(f, "checkpoint interval must be at least 1 execution")
            }
            SearchError::MissingBudget => {
                write!(
                    f,
                    "this strategy requires an execution budget (max_executions)"
                )
            }
            SearchError::Unsupported(msg) => write!(f, "{msg}"),
            SearchError::Snapshot(e) => write!(f, "resume snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for SearchError {
    fn from(e: SnapshotError) -> Self {
        SearchError::Snapshot(e)
    }
}

/// A search session over one program: strategy, configuration, worker
/// count, telemetry, checkpointing and resume, behind a single `run`.
///
/// This builder is the only non-deprecated way to start a search. The
/// per-strategy structs ([`IcbSearch`], [`DfsSearch`], …) remain as the
/// strategies' *implementations*, but their `run*` entry points are
/// deprecated shims over this API.
///
/// # Example
///
/// ```
/// # use icb_core::{ControlledProgram, Scheduler, SchedulePoint, StateSink,
/// #                ExecutionResult, ExecutionOutcome, Tid, TraceEntry, ExecStats};
/// # struct Toy;
/// # impl ControlledProgram for Toy {
/// #     fn execute(&self, sched: &mut dyn Scheduler, _sink: &mut dyn StateSink)
/// #         -> ExecutionResult
/// #     {
/// #         let mut done = [false, false];
/// #         let mut trace = Vec::new();
/// #         let mut current: Option<Tid> = None;
/// #         loop {
/// #             let enabled: Vec<Tid> = (0..2)
/// #                 .filter(|&i| !done[i]).map(Tid).collect();
/// #             if enabled.is_empty() { break; }
/// #             let current_enabled = current.map_or(false, |t| !done[t.index()]);
/// #             let chosen = sched.pick(SchedulePoint {
/// #                 step_index: trace.len(), current, current_enabled,
/// #                 enabled: &enabled,
/// #             });
/// #             trace.push(TraceEntry::new(chosen, enabled.clone(), current,
/// #                                        current_enabled, false));
/// #             done[chosen.index()] = true;
/// #             current = Some(chosen);
/// #         }
/// #         ExecutionResult {
/// #             outcome: ExecutionOutcome::Terminated,
/// #             trace: trace.into(),
/// #             stats: ExecStats::default(),
/// #         }
/// #     }
/// # }
/// use icb_core::search::{Search, SearchConfig, Strategy};
///
/// // Sequential ICB with the default configuration:
/// let report = Search::over(&Toy).run()?;
/// assert!(report.completed);
///
/// // The same search sharded over two workers — the report's
/// // order-independent fields are identical:
/// let parallel = Search::over(&Toy)
///     .strategy(Strategy::Icb)
///     .jobs(2)
///     .run()?;
/// assert_eq!(parallel.executions, report.executions);
/// assert_eq!(parallel.distinct_states, report.distinct_states);
///
/// // Invalid configurations fail up front with a typed error:
/// assert!(Search::over(&Toy).jobs(0).run().is_err());
///
/// // A budgeted random walk:
/// let walk = Search::over(&Toy)
///     .strategy(Strategy::Random { seed: 7 })
///     .config(SearchConfig::with_max_executions(10))
///     .run()?;
/// assert_eq!(walk.executions, 10);
/// # Ok::<(), icb_core::search::SearchError>(())
/// ```
///
/// # Migration from the deprecated per-strategy API
///
/// | Old call | Builder equivalent |
/// |---|---|
/// | `IcbSearch::new(cfg).run(&p)` | `Search::over(&p).config(cfg).run()?` |
/// | `IcbSearch::new(cfg).run_observed(&p, &mut o)` | `Search::over(&p).config(cfg).observer(&mut o).run()?` |
/// | `IcbSearch::new(cfg).run_checkpointed(&p, &mut o, &mut ck)` | `Search::over(&p).config(cfg).observer(&mut o).checkpoint(ck).run()?` |
/// | `IcbSearch::resume(&p, snap, &mut o, ck)` | `Search::over(&p).resume_from(snap).observer(&mut o)[.checkpoint(ck)].run()?` |
/// | `DfsSearch::new(cfg).run(&p)` | `Search::over(&p).strategy(Strategy::Dfs).config(cfg).run()?` |
/// | `DfsSearch::with_depth_bound(cfg, n).run(&p)` | `.strategy(Strategy::DepthBounded(n))` |
/// | `IterativeDeepeningSearch::new(cfg, s, d, m).run(&p)` | `.strategy(Strategy::IterativeDeepening { start: s, step: d, max: m })` |
/// | `RandomSearch::new(cfg, seed).run(&p)` | `.strategy(Strategy::Random { seed })` |
/// | `BestFirstSearch::new(cfg).run_observed(&p, &mut o)` | `.strategy(Strategy::BestFirst).observer(&mut o)` |
///
/// Resume dispatches on the *snapshot's* strategy state, so one
/// `resume_from` call replaces all four per-strategy `resume` methods;
/// any `strategy(..)` set alongside `resume_from` is ignored.
pub struct Search<'a> {
    program: &'a (dyn ControlledProgram + Sync),
    strategy: Strategy,
    config: SearchConfig,
    jobs: usize,
    observer: Option<&'a mut dyn SearchObserver>,
    checkpoint: Option<Checkpointer>,
    resume: Option<SearchSnapshot>,
    cache: Option<&'a dyn ExplorationCache>,
    cache_heuristic: bool,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for Search<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Search")
            .field("strategy", &self.strategy)
            .field("config", &self.config)
            .field("jobs", &self.jobs)
            .field("observed", &self.observer.is_some())
            .field("checkpointed", &self.checkpoint.is_some())
            .field("resuming", &self.resume.is_some())
            .field("cached", &self.cache.is_some())
            .field("metered", &self.metrics.is_some())
            .finish()
    }
}

impl<'a> Search<'a> {
    /// Starts building a search session over `program`.
    ///
    /// The program must be `Sync` because `jobs > 1` shares it across
    /// worker threads; [`ControlledProgram`] implementations take
    /// `&self`, so this is the natural bound and every in-repo host
    /// already satisfies it.
    pub fn over(program: &'a (dyn ControlledProgram + Sync)) -> Self {
        Search {
            program,
            strategy: Strategy::default(),
            config: SearchConfig::default(),
            jobs: 1,
            observer: None,
            checkpoint: None,
            resume: None,
            cache: None,
            cache_heuristic: false,
            metrics: None,
        }
    }

    /// Selects the strategy (default: [`Strategy::Icb`]). Ignored when
    /// [`resume_from`](Search::resume_from) is set — the snapshot knows
    /// its own strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the search configuration (bounds, budgets, deadline).
    /// Ignored when resuming — the snapshot carries the original run's
    /// configuration.
    pub fn config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the iterative *fault bound*: designated fallible operations
    /// (`try_lock`, condvar waits, bounded sends, `fail_point`s) become
    /// searched binary choice points, explored in lexicographic
    /// `(preemptions, faults)` level order so the first bug found
    /// carries a minimum-`(preemptions, faults)` witness. Only
    /// [`Strategy::Icb`] supports a non-zero fault bound; other
    /// strategies are rejected up front. The default of 0 never injects
    /// and behaves exactly as before the fault dimension existed.
    pub fn fault_bound(mut self, bound: usize) -> Self {
        self.config.fault_bound = bound;
        self
    }

    /// Shards the search over `jobs` worker threads (default 1). At 1
    /// the unchanged sequential driver runs; above 1 each worker owns
    /// its own engine and race detector, pulling work items from a
    /// shared [`Frontier`](crate::search::Frontier) with work-stealing
    /// rebalance, and results are merged deterministically.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Streams telemetry events to `observer` during the run.
    pub fn observer(mut self, observer: &'a mut dyn SearchObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Writes crash-resumable snapshots through `checkpointer`
    /// periodically and at every abort. A parallel search quiesces its
    /// workers first, so the snapshot is always the complete set of
    /// unexplored work — resumable at *any* `jobs` count.
    pub fn checkpoint(mut self, checkpointer: Checkpointer) -> Self {
        self.checkpoint = Some(checkpointer);
        self
    }

    /// Resumes from a snapshot instead of starting fresh. The strategy
    /// and configuration stored in the snapshot take precedence over
    /// [`strategy`](Search::strategy) / [`config`](Search::config).
    ///
    /// Sequential (`jobs == 1`) checkpoints of ICB and DFS resume at any
    /// `jobs` count, as do parallel checkpoints; a sequential *random*
    /// checkpoint stores a single mid-stream RNG and can only resume
    /// sequentially.
    pub fn resume_from(mut self, snapshot: SearchSnapshot) -> Self {
        self.resume = Some(snapshot);
        self
    }

    /// Attaches a state-fingerprint cache (see
    /// [`ExplorationCache`]): work items whose `(state, next thread)`
    /// subtree the cache already covers are pruned instead of explored,
    /// and a certification-ledger hit skips the whole search.
    ///
    /// Supported for [`Strategy::Icb`] at any `jobs` count and for
    /// unbounded [`Strategy::Dfs`] at `jobs == 1`; other combinations
    /// are rejected up front. Programs whose fingerprints are not exact
    /// (see [`ControlledProgram::fingerprints_are_exact`]) additionally
    /// require [`cache_heuristic`](Search::cache_heuristic).
    pub fn cache(mut self, cache: &'a dyn ExplorationCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Opts in to cache pruning on *heuristic* (happens-before)
    /// fingerprints. Pruned subtrees may then contain unvisited states:
    /// the run is no longer exhaustive, and the report (and its JSONL
    /// stream) is flagged accordingly. No effect on programs with exact
    /// fingerprints.
    pub fn cache_heuristic(mut self, opt_in: bool) -> Self {
        self.cache_heuristic = opt_in;
        self
    }

    /// Attaches a live [`MetricsRegistry`]: the session wraps its
    /// observer in a [`MetricsBridge`] (mirroring the event stream into
    /// the registry and emitting periodic `metrics_snapshot` events),
    /// threads the registry into the parallel drivers' workers, pump
    /// and [`Frontier`](crate::search::Frontier), and attaches it to
    /// the exploration cache. Any thread holding a clone of the `Arc` —
    /// a scrape endpoint, a status board — can read the counters while
    /// the search runs.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Validates the session and runs it to completion, returning the
    /// merged report.
    ///
    /// Validation happens before the first execution: see
    /// [`SearchError`] for the rejected configurations.
    pub fn run(self) -> Result<SearchReport, SearchError> {
        let Search {
            program,
            strategy,
            config,
            jobs,
            observer,
            mut checkpoint,
            resume,
            cache,
            cache_heuristic,
            metrics,
        } = self;
        if jobs == 0 {
            return Err(SearchError::ZeroJobs);
        }
        if config.max_duration == Some(Duration::ZERO) {
            return Err(SearchError::ZeroDuration);
        }
        if checkpoint.as_ref().is_some_and(|ck| ck.every() == 0) {
            return Err(SearchError::ZeroCheckpointInterval);
        }
        if config.fault_bound > 0 && resume.is_none() && !matches!(strategy, Strategy::Icb) {
            return Err(SearchError::Unsupported(format!(
                "a fault bound composes with the iterative preemption bound and is only \
                 supported for strategy `icb`; got strategy `{}` with fault_bound = {}",
                strategy.label(),
                config.fault_bound
            )));
        }
        let binding = match cache {
            None => None,
            Some(cache) => {
                // Resume validates against the snapshot's strategy instead.
                if resume.is_none() {
                    let supported = matches!(strategy, Strategy::Icb)
                        || (matches!(strategy, Strategy::Dfs) && jobs == 1);
                    if !supported {
                        return Err(SearchError::Unsupported(cache_unsupported_msg(
                            &strategy.label(),
                            jobs,
                        )));
                    }
                }
                let heuristic = !program.fingerprints_are_exact();
                if heuristic && !cache_heuristic {
                    return Err(SearchError::Unsupported(
                        "this program's state fingerprints are heuristic (happens-before \
                         hashes): cache pruning could silently skip unvisited states. Opt in \
                         with cache_heuristic(true) to run a flagged, non-exhaustive search"
                            .to_string(),
                    ));
                }
                Some(CacheBinding { cache, heuristic })
            }
        };
        let mut noop = NoopObserver;
        let observer: &mut dyn SearchObserver = match observer {
            Some(o) => o,
            None => &mut noop,
        };
        // A registry watches through a bridge so every driver —
        // sequential or parallel — feeds it from the event stream; the
        // parallel drivers additionally receive the registry itself for
        // the worker, frontier and pump counters no event carries.
        let mut bridge;
        let observer: &mut dyn SearchObserver = match &metrics {
            Some(registry) => {
                registry.set_workers(jobs);
                if let Some(binding) = &binding {
                    binding.cache.attach_metrics(registry);
                }
                bridge = MetricsBridge::new(Arc::clone(registry), observer);
                &mut bridge
            }
            None => observer,
        };

        // Certification fast path: a previous clean run already proved
        // this search's claim — answer from the ledger without running.
        if resume.is_none() {
            if let Some(binding) = &binding {
                let target = match strategy {
                    Strategy::Icb => config.preemption_bound,
                    _ => None,
                };
                let label = strategy.label();
                if let Some(cert) =
                    binding
                        .cache
                        .find_certification(&label, target, config.fault_bound)
                {
                    observer.search_started(&label);
                    observer.bound_certified(cert.bound);
                    let report = SearchReport {
                        strategy: label,
                        distinct_states: cert.distinct_states,
                        completed: cert.bound.is_none(),
                        completed_bound: match strategy {
                            Strategy::Icb => target.or(cert.bound),
                            _ => None,
                        },
                        cache: Some(CacheSummary {
                            heuristic: binding.heuristic,
                            certified: true,
                            ..CacheSummary::default()
                        }),
                        ..SearchReport::default()
                    };
                    observer.search_finished(&report);
                    if let Some(ck) = checkpoint.as_mut() {
                        ck.finish();
                    }
                    return Ok(report);
                }
            }
        }
        let cert_target = config.preemption_bound;
        let cert_faults = config.fault_bound;
        let ckpt = checkpoint.as_mut();

        if let Some(snapshot) = resume {
            let cert_target = snapshot.config.preemption_bound;
            let cert_faults = snapshot.config.fault_bound;
            let report = run_resumed(program, jobs, snapshot, observer, ckpt, binding, metrics)?;
            if let Some(binding) = &binding {
                maybe_certify(binding, cert_target, cert_faults, &report);
            }
            return Ok(report);
        }

        #[allow(deprecated)]
        let report: Result<SearchReport, SearchError> =
            match strategy {
                Strategy::Icb => Ok(if jobs == 1 {
                    IcbSearch::new(config).drive(program, observer, ckpt, None, binding)
                } else {
                    run_parallel_icb(
                        program,
                        &config,
                        jobs,
                        observer,
                        ckpt,
                        None,
                        binding,
                        metrics.clone(),
                    )
                }),
                Strategy::Dfs | Strategy::DepthBounded(_) => {
                    let depth = match strategy {
                        Strategy::DepthBounded(b) => Some(b),
                        _ => None,
                    };
                    Ok(if jobs == 1 {
                        let search = match depth {
                            Some(b) => DfsSearch::with_depth_bound(config, b),
                            None => DfsSearch::new(config),
                        };
                        search.drive(program, observer, ckpt, Vec::new(), None, binding)
                    } else {
                        run_parallel_dfs(
                            program,
                            &config,
                            jobs,
                            depth,
                            observer,
                            ckpt,
                            None,
                            metrics.clone(),
                        )
                    })
                }
                Strategy::Random { seed } => {
                    if config.max_executions.is_none() {
                        return Err(SearchError::MissingBudget);
                    }
                    Ok(if jobs == 1 {
                        RandomSearch::new(config, seed).drive(program, observer, ckpt, None)
                    } else {
                        run_parallel_random(
                            program,
                            &config,
                            jobs,
                            seed,
                            observer,
                            ckpt,
                            None,
                            metrics.clone(),
                        )
                    })
                }
                Strategy::IterativeDeepening { start, step, max } => {
                    if step == 0 {
                        return Err(SearchError::Unsupported(
                            "iterative deepening requires a positive step".to_string(),
                        ));
                    }
                    if jobs > 1 {
                        return Err(SearchError::Unsupported(
                            "iterative deepening re-explores shallow prefixes per iteration and \
                         does not support jobs > 1"
                                .to_string(),
                        ));
                    }
                    if ckpt.is_some() {
                        return Err(SearchError::Unsupported(
                            "iterative deepening does not support checkpointing".to_string(),
                        ));
                    }
                    Ok(IterativeDeepeningSearch::new(config, start, step, max)
                        .drive(program, observer))
                }
                Strategy::BestFirst => {
                    if config.max_executions.is_none() {
                        return Err(SearchError::MissingBudget);
                    }
                    if jobs > 1 {
                        return Err(SearchError::Unsupported(
                            "best-first search orders its frontier globally and does not support \
                         jobs > 1"
                                .to_string(),
                        ));
                    }
                    if ckpt.is_some() {
                        return Err(SearchError::Unsupported(
                            "best-first search does not support checkpointing".to_string(),
                        ));
                    }
                    Ok(BestFirstSearch::new(config).drive(program, observer))
                }
            };
        let report = report?;
        if let Some(binding) = &binding {
            maybe_certify(binding, cert_target, cert_faults, &report);
        }
        Ok(report)
    }
}

/// The rejection message for a cache attached to a strategy/jobs
/// combination the drivers cannot prune soundly.
fn cache_unsupported_msg(label: &str, jobs: usize) -> String {
    format!(
        "a fingerprint cache is supported for strategy `icb` (any jobs) and unbounded `dfs` \
         at jobs = 1; got strategy `{label}` with jobs = {jobs}. Depth-bounded and sampling \
         searches cannot claim subtree coverage, so caching them would be unsound"
    )
}

/// Records a certification after a run that proved its claim cleanly:
/// exact fingerprints, no bugs, nothing truncated, forfeited or
/// abandoned. `completed` certifies exhaustion (`bound: None`); an ICB
/// run that ran its target preemption bound `n` to the end certifies
/// `bound: n`.
///
/// `certify` is also the cache's signal that every subtree recorded
/// this run was fully explored (persistence gate), so a run that was
/// cut short mid-bound — budget, deadline, interrupt — must NOT
/// certify, even though its last *completed* bound would be a sound
/// claim on its own.
fn maybe_certify(
    binding: &CacheBinding<'_>,
    target: Option<usize>,
    fault_bound: usize,
    report: &SearchReport,
) {
    if binding.heuristic
        || report.buggy_executions > 0
        || !report.bugs.is_empty()
        || report.truncated
        || report.quarantined_total > 0
        || report.watchdog_trips > 0
        || report.cache.as_ref().is_some_and(|c| c.certified)
    {
        return;
    }
    let bound = if report.completed {
        None
    } else if target.is_some() && report.completed_bound == target {
        target
    } else {
        return;
    };
    binding.cache.certify(Certification {
        strategy: report.strategy.clone(),
        bound,
        fault_bound,
        executions: report.executions,
        distinct_states: report.distinct_states,
    });
}

/// Resume dispatch: the snapshot's [`StrategyState`] variant decides the
/// driver; `jobs` decides sequential vs parallel where both can consume
/// the state.
fn run_resumed(
    program: &(dyn ControlledProgram + Sync),
    jobs: usize,
    snapshot: SearchSnapshot,
    observer: &mut dyn SearchObserver,
    ckpt: Option<&mut Checkpointer>,
    cache: Option<CacheBinding<'_>>,
    metrics: Option<Arc<MetricsRegistry>>,
) -> Result<SearchReport, SearchError> {
    let config = snapshot.config;
    let base = snapshot.base;
    if cache.is_some() {
        let supported = match &snapshot.state {
            StrategyState::Icb(_) => true,
            StrategyState::Dfs(state) => jobs == 1 && state.depth_bound.is_none(),
            _ => false,
        };
        if !supported {
            let label = match &snapshot.state {
                StrategyState::Icb(_) => "icb",
                StrategyState::Dfs(_) | StrategyState::ParallelDfs(_) => "dfs",
                StrategyState::Random(_) | StrategyState::ParallelRandom(_) => "random",
            };
            return Err(SearchError::Unsupported(cache_unsupported_msg(label, jobs)));
        }
    }
    #[allow(deprecated)]
    match snapshot.state {
        StrategyState::Icb(state) => {
            if let Some((_, stack)) = &state.in_progress {
                validate_branches(stack)?;
            }
            Ok(if jobs == 1 {
                IcbSearch::new(config).drive(program, observer, ckpt, Some((base, state)), cache)
            } else {
                run_parallel_icb(
                    program,
                    &config,
                    jobs,
                    observer,
                    ckpt,
                    Some((base, state)),
                    cache,
                    metrics,
                )
            })
        }
        StrategyState::Dfs(state) => {
            validate_branches(&state.stack)?;
            let stack: Vec<DfsBranch> = state.stack.into_iter().map(DfsBranch::from).collect();
            Ok(if jobs == 1 {
                let search = match state.depth_bound {
                    Some(b) => DfsSearch::with_depth_bound(config, b),
                    None => DfsSearch::new(config),
                };
                search.drive(program, observer, ckpt, stack, Some(base), cache)
            } else {
                // A sequential DFS checkpoint is one suspended subtree:
                // seed the frontier with it and let the workers dissolve
                // it into parallel shards.
                let items = vec![(Schedule::new(), stack, false)];
                run_parallel_dfs(
                    program,
                    &config,
                    jobs,
                    state.depth_bound,
                    observer,
                    ckpt,
                    Some((base, items)),
                    metrics,
                )
            })
        }
        StrategyState::Random(state) => {
            if jobs > 1 {
                return Err(SearchError::Unsupported(
                    "a sequential random-walk checkpoint stores a single mid-stream RNG and \
                     can only resume at jobs = 1"
                        .to_string(),
                ));
            }
            if config.max_executions.is_none() {
                return Err(SearchError::MissingBudget);
            }
            // Seed 0 is unused: the walk continues from the stored state.
            Ok(RandomSearch::new(config, 0).drive(program, observer, ckpt, Some((base, state))))
        }
        StrategyState::ParallelDfs(state) => {
            let mut items: Vec<(Schedule, Vec<DfsBranch>, bool)> = state
                .frontier
                .into_iter()
                .map(|prefix| (prefix, Vec::new(), false))
                .collect();
            if let Some((prefix, stack)) = state.pending {
                validate_branches(&stack)?;
                items.insert(
                    0,
                    (
                        prefix,
                        stack.into_iter().map(DfsBranch::from).collect(),
                        false,
                    ),
                );
            }
            Ok(run_parallel_dfs(
                program,
                &config,
                jobs,
                state.depth_bound,
                observer,
                ckpt,
                Some((base, items)),
                metrics,
            ))
        }
        StrategyState::ParallelRandom(state) => {
            if config.max_executions.is_none() {
                return Err(SearchError::MissingBudget);
            }
            Ok(run_parallel_random(
                program,
                &config,
                jobs,
                state.seed,
                observer,
                ckpt,
                Some((base, state)),
                metrics,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testprog::Counters;

    fn toy() -> Counters {
        Counters {
            n: 2,
            k: 2,
            bug: None,
        }
    }

    #[test]
    fn zero_jobs_rejected() {
        let err = Search::over(&toy()).jobs(0).run().unwrap_err();
        assert!(matches!(err, SearchError::ZeroJobs));
    }

    #[test]
    fn zero_duration_rejected() {
        let err = Search::over(&toy())
            .config(SearchConfig {
                max_duration: Some(Duration::ZERO),
                ..SearchConfig::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, SearchError::ZeroDuration));
    }

    #[test]
    fn zero_checkpoint_interval_rejected() {
        let ck = Checkpointer::new(std::env::temp_dir().join("session-zero-ck.bin"), 0);
        let err = Search::over(&toy()).checkpoint(ck).run().unwrap_err();
        assert!(matches!(err, SearchError::ZeroCheckpointInterval));
    }

    #[test]
    fn random_without_budget_rejected() {
        let err = Search::over(&toy())
            .strategy(Strategy::Random { seed: 1 })
            .config(SearchConfig {
                max_executions: None,
                ..SearchConfig::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, SearchError::MissingBudget));
    }

    #[test]
    fn sequential_only_strategies_reject_jobs() {
        let err = Search::over(&toy())
            .strategy(Strategy::BestFirst)
            .config(SearchConfig::with_max_executions(10))
            .jobs(2)
            .run()
            .unwrap_err();
        assert!(matches!(err, SearchError::Unsupported(_)));
        let err = Search::over(&toy())
            .strategy(Strategy::IterativeDeepening {
                start: 1,
                step: 1,
                max: 4,
            })
            .jobs(2)
            .run()
            .unwrap_err();
        assert!(matches!(err, SearchError::Unsupported(_)));
    }

    #[test]
    #[allow(deprecated)]
    fn builder_matches_sequential_icb() {
        let p = toy();
        let via_builder = Search::over(&p).run().unwrap();
        let via_legacy = IcbSearch::new(SearchConfig::default()).run(&p);
        assert_eq!(via_builder, via_legacy);
    }

    #[test]
    #[allow(deprecated)]
    fn builder_matches_sequential_dfs_and_random() {
        let p = toy();
        let dfs_b = Search::over(&p).strategy(Strategy::Dfs).run().unwrap();
        let dfs_l = DfsSearch::new(SearchConfig::default()).run(&p);
        assert_eq!(dfs_b, dfs_l);

        let cfg = SearchConfig::with_max_executions(20);
        let rnd_b = Search::over(&p)
            .strategy(Strategy::Random { seed: 9 })
            .config(cfg.clone())
            .run()
            .unwrap();
        let rnd_l = RandomSearch::new(cfg, 9).run(&p);
        assert_eq!(rnd_b, rnd_l);
    }

    #[test]
    fn parallel_icb_matches_sequential_on_order_independent_fields() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: Some((1, 0, 1)),
        };
        let seq = Search::over(&p).run().unwrap();
        let par = Search::over(&p).jobs(4).run().unwrap();
        assert_eq!(par.executions, seq.executions);
        assert_eq!(par.distinct_states, seq.distinct_states);
        assert_eq!(par.buggy_executions, seq.buggy_executions);
        assert_eq!(par.bound_history, seq.bound_history);
        assert_eq!(par.completed, seq.completed);
        let seq_bugs: Vec<_> = seq.bugs.iter().map(|b| &b.schedule).collect();
        let par_bugs: Vec<_> = par.bugs.iter().map(|b| &b.schedule).collect();
        assert_eq!(par_bugs, seq_bugs);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::Icb.label(), "icb");
        assert_eq!(Strategy::DepthBounded(6).label(), "db:6");
        assert_eq!(
            Strategy::IterativeDeepening {
                start: 2,
                step: 2,
                max: 8
            }
            .label(),
            "idfs-8"
        );
    }
}
