//! Parallel exploration drivers: N workers over a shared [`Frontier`],
//! one event pump, one deterministic merge.
//!
//! CHESS-style stateless checking parallelizes along work items: a
//! schedule prefix can be replayed by any worker, and replay determinism
//! makes the set of executions explored independent of which worker ran
//! which item. The drivers here exploit that:
//!
//! * **Workers** (`std::thread::scope`) each own their scheduler, their
//!   replay engine (engines are constructed per execution, so isolation
//!   is automatic — including the per-execution watchdog) and a local
//!   coverage dedup. They take items from the [`Frontier`], run the same
//!   nested DFS the sequential drivers run, and *dissolve* their
//!   unexplored remainder back into plain prefixes whenever a peer is
//!   starving (work stealing) or a checkpoint quiesce is requested.
//! * **The pump** runs on the calling thread and exclusively owns the
//!   `&mut dyn SearchObserver` (observers need not be `Send`). Workers
//!   send one owned [`ExecEvent`] per execution over an `mpsc` channel;
//!   the pump replays each as the usual event sequence, prefixed with a
//!   [`worker_stamp`](SearchObserver::worker_stamp) whose per-worker
//!   sequence numbers let downstream consumers prove the merged log lost
//!   and duplicated nothing.
//! * **The merge** is deterministic where the mathematics allows it:
//!   coverage is a set union, per-execution maxima commute, and bug
//!   reports are keyed by `(preemptions, schedule)` in a `BTreeMap` so
//!   the final report lists them minimal-preemptions-first with
//!   lexicographic schedule tie-breaks — independent of worker timing
//!   and of the worker count. Arrival-order quantities (the execution
//!   index a given schedule ran at, the streaming `bug_found` order) are
//!   inherently racy and are canonicalized in the final report.
//!
//! Checkpoints are written at *quiesce points*: the frontier is paused,
//! workers return their dissolved remainders, the event channel is
//! drained, and the queue then **is** the complete set of unexplored
//! work — a snapshot of it is resumable at any `--jobs` count.

use std::cell::Cell;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cache::{coverage_credit, ExplorationCache};
use crate::coverage::{mix64, StateSink};
use crate::metrics::MetricsRegistry;
use crate::program::{ControlledProgram, SchedulePoint, Scheduler};
use crate::rng::SplitMix64;
use crate::search::dfs::{Branch as DfsBranch, GatedSink};
use crate::search::frontier::Frontier;
use crate::search::icb::{Branch as IcbBranch, CursorSink, ItemCache, ItemScheduler};
use crate::search::{
    choice_events, execute_recovering, fault_events, BoundStats, BugReport, CacheBinding,
    CacheSummary, ChoiceEvent, QuarantinedTrace, SearchConfig, SearchReport,
};
use crate::snapshot::{
    interrupt, Checkpointer, IcbState, ParallelDfsState, ParallelRandomState, ResumeBase,
    SearchSnapshot, StrategyState,
};
use crate::telemetry::{AbortReason, Phase, ResumeInfo, SearchObserver, SiteId};
use crate::tid::Tid;
use crate::trace::{DivergencePayload, ExecStats, ExecutionOutcome, Schedule};

/// How long the pump sleeps in `recv_timeout` between control checks
/// (deadline, interrupt, checkpoint cadence).
const PUMP_TICK: Duration = Duration::from_millis(5);

/// Everything the pump needs to replay one worker execution through the
/// observer and fold it into the merged totals.
struct ExecEvent {
    worker: usize,
    /// 1-based, contiguous per worker: the `worker_stamp` payload.
    seq: u64,
    /// Wall-clock offset since the search began, stamped worker-side
    /// when the execution finished. The pump replays events in arrival
    /// order, so this is the only correct time base for
    /// throughput-over-time series at `jobs > 1`.
    at: Duration,
    /// Execution-count cost of this event (`executions_per_run`).
    cost: usize,
    stats: ExecStats,
    outcome: ExecutionOutcome,
    /// Fingerprints not previously seen by *this worker* (the master set
    /// dedups globally).
    fresh: Vec<u64>,
    /// The full failing schedule, when `outcome.is_bug()`.
    bug_schedule: Option<Schedule>,
    /// Attributed per-step decisions (only when the observer asked).
    choice: Vec<ChoiceEvent>,
    races: Vec<String>,
    phases: Vec<(Phase, Duration)>,
    /// ICB: work items deferred to the next *preemption* bound
    /// (`(c + 1, f)`) by this execution.
    deferred: Vec<Schedule>,
    /// ICB: work items deferred to the next *fault* level (`(c, f + 1)`)
    /// by this execution. Always empty at fault bound 0.
    deferred_faults: Vec<Schedule>,
    /// Faults injected during this execution, as `(site, step)` pairs
    /// for the pump to replay through the observer.
    faults: Vec<(SiteId, usize)>,
    quarantine: Option<QuarantinedTrace>,
    /// Fingerprint-cache hits (pruned emissions) of this execution.
    cache_hits: usize,
    /// Fingerprint-cache stores (recorded subtrees) of this execution.
    cache_stores: usize,
    /// `Some(message)` when the program panicked out of this run (not a
    /// replay divergence). The event then carries no execution result:
    /// the pump emits `worker_panic` (plus the quarantine record, on the
    /// second strike) and skips the per-execution bookkeeping.
    panic: Option<String>,
}

/// Renders a caught panic payload for the `worker-panic` event.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker-side observer: buffers the engine-level events of one
/// execution (races, phase timings) for the pump to replay in order.
struct BufObserver {
    races: Vec<String>,
    phases: Vec<(Phase, Duration)>,
    want_phases: bool,
}

impl BufObserver {
    fn new(want_phases: bool) -> Self {
        BufObserver {
            races: Vec::new(),
            phases: Vec::new(),
            want_phases,
        }
    }
}

impl SearchObserver for BufObserver {
    fn race_detected(&mut self, description: &str) {
        self.races.push(description.to_string());
    }
    fn wants_phase_timing(&self) -> bool {
        self.want_phases
    }
    fn phase_time(&mut self, phase: Phase, elapsed: Duration) {
        self.phases.push((phase, elapsed));
    }
}

/// Worker-local coverage dedup: forwards each fingerprint to the event
/// at most once per worker, cutting channel traffic; the pump's master
/// set is the authority.
#[derive(Default)]
struct DedupSink {
    seen: HashSet<u64>,
    fresh: Vec<u64>,
}

impl DedupSink {
    fn take_fresh(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.fresh)
    }
}

impl StateSink for DedupSink {
    fn visit(&mut self, fingerprint: u64) {
        if self.seen.insert(fingerprint) {
            self.fresh.push(fingerprint);
        }
    }
}

/// The pump-side merge state: the parallel analogue of `SearchCtx`,
/// accumulating the order-independent totals and canonicalizing the
/// order-dependent ones.
struct Ledger<'o> {
    config: SearchConfig,
    started: Instant,
    /// Union of all workers' state fingerprints.
    master: HashSet<u64>,
    /// Coverage growth samples; parallel runs sample at deterministic
    /// barriers (per ICB bound / at the end), not per execution.
    curve: Vec<(usize, usize)>,
    /// Executions as counted by the coverage tracker (one per event).
    coverage_executions: usize,
    executions: usize,
    buggy_executions: usize,
    /// Bugs keyed `(preemptions, faults, schedule)`: iteration order is
    /// the canonical minimal-first report order regardless of arrival
    /// order (lexicographic, matching the `(c, f)` level order).
    bugs: BTreeMap<(usize, usize, Schedule), BugReport>,
    max_stats: ExecStats,
    quarantined: Vec<QuarantinedTrace>,
    quarantined_total: usize,
    watchdog_trips: usize,
    truncated: bool,
    stop: bool,
    abort: Option<AbortReason>,
    current_bound: usize,
    /// ICB: `(c + 1, f)` work items collected from events this level.
    deferred: Vec<Schedule>,
    /// ICB: `(c, f + 1)` work items collected from events this level.
    deferred_faults: Vec<Schedule>,
    /// ICB: total items already queued at not-yet-run levels (for the
    /// `work_queue_depth` event, which reports all pending work).
    pending_depth: usize,
    /// Emit `work_queue_depth` after events (ICB only).
    track_queue: bool,
    want_choice: bool,
    /// Cache accounting; `Some` only when a cache is attached.
    cache: Option<CacheSummary>,
    /// Live registry mirror of pump-side quantities (channel depth,
    /// recv-timeout stalls). Event-level mirroring is the bridge's job.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Events sent but not yet applied — the observer-pump backlog.
    backlog: Arc<AtomicUsize>,
    observer: &'o mut dyn SearchObserver,
}

impl<'o> Ledger<'o> {
    fn new(
        config: SearchConfig,
        observer: &'o mut dyn SearchObserver,
        track_queue: bool,
        metrics: Option<Arc<MetricsRegistry>>,
        backlog: Arc<AtomicUsize>,
    ) -> Self {
        let want_choice = observer.wants_choice_points();
        Ledger {
            config,
            started: Instant::now(),
            master: HashSet::new(),
            curve: Vec::new(),
            coverage_executions: 0,
            executions: 0,
            buggy_executions: 0,
            bugs: BTreeMap::new(),
            max_stats: ExecStats::default(),
            quarantined: Vec::new(),
            quarantined_total: 0,
            watchdog_trips: 0,
            truncated: false,
            stop: false,
            abort: None,
            current_bound: 0,
            deferred: Vec::new(),
            deferred_faults: Vec::new(),
            pending_depth: 0,
            track_queue,
            want_choice,
            cache: None,
            metrics,
            backlog,
            observer,
        }
    }

    /// Counts one pump `recv_timeout` expiry (an idle pump tick).
    fn note_pump_stall(&self) {
        if let Some(m) = &self.metrics {
            m.pump_recv_timeout();
        }
    }

    /// Seeds the merge state from a checkpoint and announces the resume.
    fn restore(&mut self, base: ResumeBase, bound: usize, bound_executions: usize) {
        self.executions = base.executions;
        self.buggy_executions = base.buggy_executions;
        for bug in base.bugs {
            self.bugs
                .insert((bug.preemptions, bug.faults, bug.schedule.clone()), bug);
        }
        self.max_stats = base.max_stats;
        self.quarantined = base.quarantined;
        self.quarantined_total = base.quarantined_total;
        self.watchdog_trips = base.watchdog_trips;
        self.truncated = base.truncated;
        self.master = base.coverage_states.into_iter().collect();
        self.coverage_executions = base.coverage_executions;
        self.curve = base.coverage_curve;
        self.current_bound = bound;
        let info = ResumeInfo {
            executions: self.executions,
            distinct_states: self.master.len(),
            bound,
            bound_executions,
        };
        self.observer.search_resumed(&info);
    }

    fn remaining_budget(&self) -> usize {
        match self.config.max_executions {
            Some(max) => max.saturating_sub(self.executions),
            None => usize::MAX,
        }
    }

    fn over_deadline(&self) -> bool {
        self.config
            .max_duration
            .is_some_and(|limit| self.started.elapsed() >= limit)
    }

    fn halt(&mut self, reason: AbortReason) {
        if !self.stop {
            self.stop = true;
            self.abort = Some(reason);
            self.observer.search_aborted(reason);
        }
    }

    /// Replays one worker execution through the observer, in the same
    /// per-execution event order the sequential drivers emit, prefixed
    /// with the worker stamp.
    fn apply(&mut self, ev: ExecEvent) {
        let backlog = self
            .backlog
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        if let Some(m) = &self.metrics {
            m.set_pump_channel_depth(backlog);
        }
        self.observer.worker_stamp(ev.worker, ev.seq, ev.at);
        if let Some(message) = &ev.panic {
            // A panicked run produced no execution result: surface the
            // event (and the quarantine record on the second strike),
            // keep whatever coverage the partial run visited, and skip
            // the per-execution bookkeeping.
            self.observer.worker_panic(ev.worker, message);
            for &fp in &ev.fresh {
                self.master.insert(fp);
            }
            if let Some(q) = ev.quarantine {
                self.quarantined_total += 1;
                self.observer.trace_quarantined(&q);
                self.quarantined.push(q);
            }
            return;
        }
        self.observer.execution_started(self.executions + 1);
        for race in &ev.races {
            self.observer.race_detected(race);
        }
        for &(phase, elapsed) in &ev.phases {
            self.observer.phase_time(phase, elapsed);
        }
        for &fp in &ev.fresh {
            self.master.insert(fp);
        }
        self.coverage_executions += 1;
        self.executions += ev.cost;
        self.max_stats = self.max_stats.max(ev.stats);
        if self.want_choice {
            for c in &ev.choice {
                self.observer
                    .choice_point(c.site, self.current_bound, c.kind);
                if let Some(victim) = c.victim {
                    self.observer.preemption_taken(victim);
                }
            }
        }
        for &(site, step) in &ev.faults {
            self.observer.fault_injected(site, step);
        }
        self.observer.execution_finished(
            self.executions,
            &ev.stats,
            &ev.outcome,
            self.master.len(),
        );
        if ev.outcome == ExecutionOutcome::WatchdogTimeout {
            self.watchdog_trips += 1;
        }
        if let Some(q) = ev.quarantine {
            self.quarantined_total += 1;
            self.observer.trace_quarantined(&q);
            self.quarantined.push(q);
        }
        if ev.outcome.is_bug() {
            self.buggy_executions += 1;
            if let Some(schedule) = ev.bug_schedule {
                let key = (ev.stats.preemptions, ev.stats.faults, schedule.clone());
                if !self.bugs.contains_key(&key) {
                    let bug = BugReport {
                        outcome: ev.outcome.clone(),
                        schedule,
                        preemptions: ev.stats.preemptions,
                        faults: ev.stats.faults,
                        // Arrival-order index for the streamed event; the
                        // final report canonicalizes to rank order.
                        execution_index: self.executions,
                        steps: ev.stats.steps,
                    };
                    self.observer.bug_found(&bug);
                    self.bugs.insert(key, bug);
                    // Keep the minimal-key reports when over the cap.
                    while self.bugs.len() > self.config.max_bug_reports {
                        self.bugs.pop_last();
                    }
                }
            }
        }
        if !ev.deferred.is_empty() {
            for item in ev.deferred {
                self.deferred.push(item);
                self.observer.work_item_deferred(self.current_bound + 1);
            }
        }
        if !ev.deferred_faults.is_empty() {
            // Fault deferrals run at the *same* preemption bound (next
            // fault level), matching the sequential driver's event.
            for item in ev.deferred_faults {
                self.deferred_faults.push(item);
                self.observer.work_item_deferred(self.current_bound);
            }
        }
        if ev.cache_hits > 0 || ev.cache_stores > 0 {
            if let Some(c) = &mut self.cache {
                c.hits += ev.cache_hits;
                c.stores += ev.cache_stores;
            }
            if ev.cache_hits > 0 {
                self.observer.cache_hit(ev.cache_hits);
            }
            if ev.cache_stores > 0 {
                self.observer.cache_store(ev.cache_stores);
            }
        }
        if self.track_queue {
            self.observer.work_queue_depth(
                self.pending_depth + self.deferred.len() + self.deferred_faults.len(),
            );
        }
    }

    /// Canonically ordered bug reports: minimal preemptions first, then
    /// lexicographic schedule; `execution_index` becomes the 1-based rank.
    fn canonical_bugs(&self) -> Vec<BugReport> {
        let mut bugs: Vec<BugReport> = self.bugs.values().cloned().collect();
        for (i, b) in bugs.iter_mut().enumerate() {
            b.execution_index = i + 1;
        }
        bugs
    }

    /// Canonically ordered quarantined prefixes, capped like bug reports.
    fn canonical_quarantined(&self) -> Vec<QuarantinedTrace> {
        let mut qs = self.quarantined.clone();
        qs.sort_by(|a, b| (&a.schedule, a.step).cmp(&(&b.schedule, b.step)));
        qs.truncate(self.config.max_bug_reports);
        qs
    }

    /// The strategy-independent half of a checkpoint, from the merged
    /// totals (canonically ordered, so snapshot bytes are independent of
    /// worker timing).
    fn snapshot_base(&self) -> ResumeBase {
        let mut states: Vec<u64> = self.master.iter().copied().collect();
        states.sort_unstable();
        ResumeBase {
            executions: self.executions,
            buggy_executions: self.buggy_executions,
            bugs: self.canonical_bugs(),
            max_stats: self.max_stats,
            quarantined: self.canonical_quarantined(),
            quarantined_total: self.quarantined_total,
            watchdog_trips: self.watchdog_trips,
            truncated: self.truncated,
            coverage_states: states,
            coverage_executions: self.coverage_executions,
            coverage_curve: self.curve.clone(),
        }
    }

    /// Converts the ledger into the final report (emitting
    /// `search_finished`).
    fn into_report(
        self,
        strategy: String,
        completed: bool,
        completed_bound: Option<usize>,
        bound_history: Vec<BoundStats>,
    ) -> SearchReport {
        let report = SearchReport {
            strategy,
            executions: self.executions,
            distinct_states: self.master.len(),
            coverage_curve: self.curve.clone(),
            bugs: self.canonical_bugs(),
            buggy_executions: self.buggy_executions,
            completed,
            completed_bound,
            bound_history,
            max_stats: self.max_stats,
            truncated: self.truncated || self.abort == Some(AbortReason::Timeout),
            quarantined: self.canonical_quarantined(),
            quarantined_total: self.quarantined_total,
            watchdog_trips: self.watchdog_trips,
            cache: self.cache.clone(),
        };
        self.observer.search_finished(&report);
        report
    }
}

// ---------------------------------------------------------------------
// Shared worker plumbing
// ---------------------------------------------------------------------

/// Claims `cost` executions against the shared budget. Claim failure is
/// *terminal* for the caller: returning the item and exiting (instead of
/// retrying) avoids a livelock where every worker spins on a drained
/// budget while the frontier still holds work.
fn claim_budget(claimed: &AtomicUsize, budget: usize, cost: usize) -> bool {
    claimed.fetch_add(cost, Ordering::SeqCst) < budget
}

/// Dissolves an ICB work item's unexplored remainder into plain prefix
/// items. `path` is the full schedule of the item's *last* run and
/// `stack` its branch stack *after* backtracking: the deepest level's
/// current option and every level's later options are exactly the runs
/// the nested DFS has left, and each becomes `path[..step] · option` — a
/// fresh item whose own `fresh_from` (its prefix length, `step + 1`)
/// matches what this item would have used after backtracking to that
/// level, so deferral emission is unchanged by the dissolution.
fn dissolve_icb(path: &Schedule, stack: &[IcbBranch]) -> Vec<IcbItem> {
    let mut items = Vec::new();
    for (j, b) in stack.iter().enumerate() {
        let lo = if j + 1 == stack.len() {
            b.next_ix
        } else {
            b.next_ix + 1
        };
        for &option in &b.options[lo..] {
            let mut prefix = path.clone();
            prefix.truncate(b.step);
            prefix.push(option);
            items.push((prefix, Vec::new(), false));
        }
    }
    items
}

/// DFS analogue of [`dissolve_icb`]: branch level `j` of an item with
/// prefix length `p` sits at step `p + j` (parallel DFS branches at every
/// in-bound point past the prefix).
fn dissolve_dfs(prefix_len: usize, path: &Schedule, stack: &[DfsBranch]) -> Vec<DfsItem> {
    let mut items = Vec::new();
    for (j, b) in stack.iter().enumerate() {
        let lo = if j + 1 == stack.len() {
            b.next_ix
        } else {
            b.next_ix + 1
        };
        for &option in &b.options[lo..] {
            let mut prefix = path.clone();
            prefix.truncate(prefix_len + j);
            prefix.push(option);
            items.push((prefix, Vec::new(), false));
        }
    }
    items
}

/// Pops the deepest branch with options left (advancing it) and drops
/// exhausted ones. Returns `true` when the item is fully explored.
/// Identical to the sequential drivers' backtrack step.
fn backtrack_icb(stack: &mut Vec<IcbBranch>) -> bool {
    loop {
        match stack.last_mut() {
            Some(top) if top.next_ix + 1 < top.options.len() => {
                top.next_ix += 1;
                return false;
            }
            Some(_) => {
                stack.pop();
            }
            None => return true,
        }
    }
}

fn backtrack_dfs(stack: &mut Vec<DfsBranch>) -> bool {
    loop {
        match stack.last_mut() {
            Some(top) if top.next_ix + 1 < top.options.len() => {
                top.next_ix += 1;
                return false;
            }
            Some(_) => {
                stack.pop();
            }
            None => return true,
        }
    }
}

/// Immutable bundle of the knobs every worker needs.
struct WorkerEnv<'a> {
    program: &'a (dyn ControlledProgram + Sync),
    stop: &'a AtomicBool,
    claimed: &'a AtomicUsize,
    budget: usize,
    want_choice: bool,
    want_phases: bool,
    /// Shared time base for worker-side event stamps.
    epoch: Instant,
    /// Live registry for per-worker busy/idle/donation accounting.
    metrics: Option<&'a MetricsRegistry>,
    /// Events sent but not yet applied by the pump (channel depth).
    backlog: &'a AtomicUsize,
}

impl WorkerEnv<'_> {
    /// Stamps an event about to be sent: the channel-depth counter must
    /// rise *before* the send so the pump's decrement never underflows.
    fn stamp(&self) -> Duration {
        self.backlog.fetch_add(1, Ordering::Relaxed);
        self.epoch.elapsed()
    }
}

// ---------------------------------------------------------------------
// Parallel ICB
// ---------------------------------------------------------------------

/// `(prefix, branch stack, retried)` — `retried` marks an item already
/// requeued once after a worker-side panic; a second panic quarantines
/// it instead of retrying again.
type IcbItem = (Schedule, Vec<IcbBranch>, bool);

#[allow(clippy::too_many_arguments)]
fn icb_worker(
    env: &WorkerEnv<'_>,
    frontier: &Frontier<IcbItem>,
    tx: mpsc::Sender<ExecEvent>,
    worker: usize,
    seq: &AtomicU64,
    cache: Option<(&dyn ExplorationCache, Option<u32>, Option<u32>)>,
    emit_faults: bool,
) {
    let cost = env.program.executions_per_run().max(1);
    let mut dedup = DedupSink::default();
    let cursor = Rc::new(Cell::new(0u64));
    'items: loop {
        let wait = Instant::now();
        let Some((prefix, mut stack, retried)) = frontier.pop() else {
            break;
        };
        if let Some(m) = env.metrics {
            m.worker_idle(worker, wait.elapsed());
        }
        let mut first_run = stack.is_empty();
        loop {
            if env.stop.load(Ordering::SeqCst) {
                frontier.complete();
                return;
            }
            if !claim_budget(env.claimed, env.budget, cost) {
                frontier.push_many([(prefix, stack, retried)]);
                frontier.complete();
                return;
            }
            let fresh_from = if first_run && stack.is_empty() {
                prefix.len()
            } else {
                stack.last().map_or(prefix.len(), |b| b.step + 1)
            };
            first_run = false;
            // Kept so a panicking run can be requeued from its pre-run
            // state (the scheduler's stack is garbage after a panic).
            let stack_backup = stack.clone();
            let mut sched = ItemScheduler {
                prefix: &prefix,
                stack,
                cursor: 0,
                path: Schedule::new(),
                fresh_from,
                emitted: Vec::new(),
                emitted_faults: Vec::new(),
                emit_faults,
                cache: cache.map(|(cache, credit, fault_credit)| ItemCache {
                    cache,
                    state: Rc::clone(&cursor),
                    credit,
                    fault_credit,
                    hits: 0,
                    stores: 0,
                }),
            };
            let mut buf = BufObserver::new(env.want_phases);
            let busy = Instant::now();
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some((cache, _, _)) = cache {
                    cursor.set(0);
                    let mut sink = CursorSink {
                        inner: &mut dedup,
                        state: &cursor,
                        cache,
                    };
                    execute_recovering(env.program, &mut sched, &mut sink, &mut buf)
                } else {
                    execute_recovering(env.program, &mut sched, &mut dedup, &mut buf)
                }
            }));
            if let Some(m) = env.metrics {
                m.worker_busy(worker, busy.elapsed());
                m.worker_execution(worker);
            }
            let result = match run {
                Ok(result) => result,
                Err(payload) => {
                    // The program panicked out of the run. First strike:
                    // requeue the item (marked) for one retry. Second:
                    // quarantine its prefix and abandon the item.
                    drop(sched); // releases the borrow of `prefix`
                    let quarantine = retried.then(|| QuarantinedTrace {
                        schedule: prefix.clone(),
                        step: prefix.len(),
                        expected: Tid(0),
                        actual: Vec::new(),
                    });
                    let _ = tx.send(ExecEvent {
                        worker,
                        seq: seq.fetch_add(1, Ordering::Relaxed) + 1,
                        at: env.stamp(),
                        cost,
                        stats: ExecStats::default(),
                        outcome: ExecutionOutcome::Terminated,
                        fresh: dedup.take_fresh(),
                        bug_schedule: None,
                        choice: Vec::new(),
                        races: std::mem::take(&mut buf.races),
                        phases: std::mem::take(&mut buf.phases),
                        deferred: Vec::new(),
                        deferred_faults: Vec::new(),
                        faults: Vec::new(),
                        quarantine,
                        cache_hits: 0,
                        cache_stores: 0,
                        panic: Some(panic_message(payload)),
                    });
                    if !retried {
                        frontier.push_many([(prefix, stack_backup, true)]);
                    }
                    frontier.complete();
                    continue 'items;
                }
            };
            let ItemScheduler {
                stack: run_stack,
                path,
                emitted,
                emitted_faults,
                cache: item_cache,
                ..
            } = sched;
            stack = run_stack;
            let (cache_hits, cache_stores) = item_cache.map_or((0, 0), |c| (c.hits, c.stores));

            let (quarantine, deferred, deferred_faults) =
                if let ExecutionOutcome::ReplayDivergence {
                    step,
                    expected,
                    ref actual,
                } = result.outcome
                {
                    // Determinism broke on this path: forfeit its emitted
                    // items, quarantine the diverging schedule.
                    (
                        Some(QuarantinedTrace {
                            schedule: path.clone(),
                            step,
                            expected,
                            actual: actual.clone(),
                        }),
                        Vec::new(),
                        Vec::new(),
                    )
                } else {
                    (None, emitted, emitted_faults)
                };

            let item_done = backtrack_icb(&mut stack);
            let _ = tx.send(ExecEvent {
                worker,
                // fetch_add, not a local counter: the swarm is re-spawned
                // at every bound barrier, but a worker's stamps must stay
                // contiguous across the whole search.
                seq: seq.fetch_add(1, Ordering::Relaxed) + 1,
                at: env.stamp(),
                cost,
                stats: result.stats,
                bug_schedule: result.outcome.is_bug().then(|| result.trace.schedule()),
                choice: if env.want_choice {
                    choice_events(&result)
                } else {
                    Vec::new()
                },
                faults: if result.stats.faults > 0 {
                    fault_events(&result)
                } else {
                    Vec::new()
                },
                outcome: result.outcome,
                fresh: dedup.take_fresh(),
                races: std::mem::take(&mut buf.races),
                phases: std::mem::take(&mut buf.phases),
                deferred,
                deferred_faults,
                quarantine,
                cache_hits,
                cache_stores,
                panic: None,
            });
            if item_done {
                frontier.complete();
                continue 'items;
            }
            if frontier.paused() || frontier.starving() {
                let donated = dissolve_icb(&path, &stack);
                if let Some(m) = env.metrics {
                    m.steal_donation(donated.len());
                    m.worker_donation(worker);
                }
                frontier.push_many(donated);
                frontier.complete();
                continue 'items;
            }
        }
    }
}

/// Per-level bookkeeping the pump needs to write mid-level checkpoints.
struct IcbBoundCtx {
    bound: usize,
    /// Fault level `f` of the `(c, f)` level currently being drained.
    fault: usize,
    execs_base: usize,
    bugs_base: usize,
    completed_bound: Option<usize>,
    bound_history: Vec<BoundStats>,
    /// Work already queued at not-yet-run levels, keyed `(c, f)` —
    /// the parallel analogue of the sequential driver's deferred map
    /// (minus the current level's still-accruing items, which live in
    /// the ledger until the level barrier folds them in).
    pending: BTreeMap<(usize, usize), Vec<Schedule>>,
}

/// Pauses the frontier, waits for every worker to return (dissolve) its
/// item, and drains the event channel: afterwards the queue is the
/// complete set of unexplored work for this bound.
fn quiesce<T>(frontier: &Frontier<T>, rx: &mpsc::Receiver<ExecEvent>, ledger: &mut Ledger<'_>) {
    frontier.pause();
    while !frontier.idle() {
        match rx.recv_timeout(PUMP_TICK) {
            Ok(ev) => ledger.apply(ev),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    while let Ok(ev) = rx.try_recv() {
        ledger.apply(ev);
    }
}

/// Splits a quiesced ICB frontier into plain prefixes plus the at most
/// one stacked item (a resumed `in_progress` no worker picked up).
fn split_icb_queue(queue: Vec<IcbItem>) -> (Vec<Schedule>, Option<(Schedule, Vec<IcbBranch>)>) {
    let mut work = Vec::new();
    let mut in_progress = None;
    for (prefix, stack, _) in queue {
        if stack.is_empty() {
            work.push(prefix);
        } else {
            in_progress = Some((prefix, stack));
        }
    }
    work.sort();
    (work, in_progress)
}

fn write_icb_checkpoint(
    ledger: &mut Ledger<'_>,
    ckpt: &mut Option<&mut Checkpointer>,
    bc: &IcbBoundCtx,
    queue: Vec<IcbItem>,
) {
    let Some(ck) = ckpt.as_deref_mut() else {
        return;
    };
    let (work, in_progress) = split_icb_queue(queue);
    // Fold the level's still-accruing deferrals into the pending-level
    // map, then emit it as sorted rows so snapshot bytes are independent
    // of worker timing.
    let mut levels = bc.pending.clone();
    if !ledger.deferred.is_empty() {
        levels
            .entry((bc.bound + 1, bc.fault))
            .or_default()
            .extend(ledger.deferred.iter().cloned());
    }
    if !ledger.deferred_faults.is_empty() {
        levels
            .entry((bc.bound, bc.fault + 1))
            .or_default()
            .extend(ledger.deferred_faults.iter().cloned());
    }
    let deferred = levels
        .into_iter()
        .map(|((c, f), mut q)| {
            q.sort();
            (c, f, q)
        })
        .collect();
    let base = ledger.snapshot_base();
    let executions = base.executions;
    let snapshot = SearchSnapshot {
        strategy: "icb".to_string(),
        meta: ck.meta().to_vec(),
        config: ledger.config.clone(),
        base,
        state: StrategyState::Icb(IcbState {
            bound: bc.bound,
            fault: bc.fault,
            bound_executions_base: bc.execs_base,
            bound_bugs_base: bc.bugs_base,
            completed_bound: bc.completed_bound,
            work,
            deferred,
            bound_history: bc.bound_history.clone(),
            in_progress: in_progress
                .map(|(p, s)| (p, s.iter().map(IcbBranch::to_snapshot).collect())),
        }),
    };
    match ck.write(&snapshot) {
        Ok(()) => ledger.observer.checkpoint_written(executions),
        Err(e) => eprintln!("warning: checkpoint write failed: {e}"),
    }
}

/// Drains one ICB `(c, f)` level with a worker swarm; returns the
/// frontier's leftover items (non-empty only when the search stopped
/// mid-level).
#[allow(clippy::too_many_arguments)]
fn run_icb_bound(
    env: &WorkerEnv<'_>,
    jobs: usize,
    items: Vec<IcbItem>,
    ledger: &mut Ledger<'_>,
    ckpt: &mut Option<&mut Checkpointer>,
    bc: &IcbBoundCtx,
    seqs: &[AtomicU64],
    cache: Option<(&dyn ExplorationCache, Option<u32>, Option<u32>)>,
    emit_faults: bool,
) -> Vec<IcbItem> {
    let frontier = Frontier::with_metrics(items, ledger.metrics.clone());
    let (tx, rx) = mpsc::channel::<ExecEvent>();
    std::thread::scope(|s| {
        for (worker, seq) in seqs.iter().enumerate().take(jobs) {
            let tx = tx.clone();
            let frontier = &frontier;
            s.spawn(move || icb_worker(env, frontier, tx, worker, seq, cache, emit_faults));
        }
        drop(tx);
        loop {
            match rx.recv_timeout(PUMP_TICK) {
                Ok(ev) => ledger.apply(ev),
                Err(RecvTimeoutError::Timeout) => ledger.note_pump_stall(),
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if ledger.stop {
                continue; // drain remaining events until workers exit
            }
            if ckpt.is_some() && interrupt::interrupted() {
                quiesce(&frontier, &rx, ledger);
                write_icb_checkpoint(ledger, ckpt, bc, frontier.snapshot_queue());
                ledger.halt(AbortReason::Interrupted);
                env.stop.store(true, Ordering::SeqCst);
                frontier.close();
                continue;
            }
            if ledger.over_deadline() {
                if ckpt.is_some() {
                    quiesce(&frontier, &rx, ledger);
                    write_icb_checkpoint(ledger, ckpt, bc, frontier.snapshot_queue());
                }
                ledger.halt(AbortReason::Timeout);
                env.stop.store(true, Ordering::SeqCst);
                frontier.close();
                continue;
            }
            if ckpt.as_deref().is_some_and(|ck| ck.due(ledger.executions)) {
                quiesce(&frontier, &rx, ledger);
                write_icb_checkpoint(ledger, ckpt, bc, frontier.snapshot_queue());
                frontier.unpause();
            }
        }
    });
    frontier.snapshot_queue()
}

/// The parallel ICB driver: shards each bound's work queue across `jobs`
/// workers with a per-bound barrier, preserving the minimal-preemption
/// bug guarantee.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel_icb(
    program: &(dyn ControlledProgram + Sync),
    config: &SearchConfig,
    jobs: usize,
    observer: &mut dyn SearchObserver,
    mut ckpt: Option<&mut Checkpointer>,
    resume: Option<(ResumeBase, IcbState)>,
    cache: Option<CacheBinding<'_>>,
    metrics: Option<Arc<MetricsRegistry>>,
) -> SearchReport {
    observer.search_started("icb");
    if let Some(m) = &metrics {
        m.set_workers(jobs);
    }
    let want_choice = observer.wants_choice_points();
    let want_phases = observer.wants_phase_timing();
    let backlog = Arc::new(AtomicUsize::new(0));
    let mut ledger = Ledger::new(
        config.clone(),
        observer,
        true,
        metrics.clone(),
        Arc::clone(&backlog),
    );
    let budget = config.max_executions.unwrap_or(usize::MAX);
    if let Some(binding) = &cache {
        ledger.cache = Some(CacheSummary {
            heuristic: binding.heuristic,
            ..CacheSummary::default()
        });
    }

    let mut bc;
    let mut work: Vec<IcbItem>;
    match resume {
        None => {
            bc = IcbBoundCtx {
                bound: 0,
                fault: 0,
                execs_base: 0,
                bugs_base: 0,
                completed_bound: None,
                bound_history: Vec::new(),
                pending: BTreeMap::new(),
            };
            work = vec![(Schedule::new(), Vec::new(), false)];
        }
        Some((base, state)) => {
            let bound_executions = base.executions - state.bound_executions_base;
            ledger.restore(base, state.bound, bound_executions);
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.mark_written(ledger.executions);
            }
            bc = IcbBoundCtx {
                bound: state.bound,
                fault: state.fault,
                execs_base: state.bound_executions_base,
                bugs_base: state.bound_bugs_base,
                completed_bound: state.completed_bound,
                bound_history: state.bound_history,
                // Snapshots fold the current level's accruals into the
                // pending rows, so the ledger starts each resumed level
                // with empty accrual lists.
                pending: state
                    .deferred
                    .into_iter()
                    .map(|(c, f, q)| ((c, f), q))
                    .collect(),
            };
            work = state
                .work
                .into_iter()
                .map(|p| (p, Vec::new(), false))
                .collect();
            if let Some((prefix, stack)) = state.in_progress {
                work.insert(
                    0,
                    (
                        prefix,
                        stack.into_iter().map(IcbBranch::from).collect(),
                        false,
                    ),
                );
            }
            if ledger.remaining_budget() == 0 {
                ledger.halt(AbortReason::ExecutionBudget);
            }
        }
    }
    if let Some(binding) = &cache {
        // After the resume-restore: idempotent there since any snapshot
        // taken with the cache attached already includes the seeds.
        for fp in binding.cache.seed_states() {
            ledger.master.insert(fp);
        }
    }
    let stop_flag = AtomicBool::new(false);
    let claimed = AtomicUsize::new(ledger.executions);
    let seqs: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
    let env = WorkerEnv {
        program,
        stop: &stop_flag,
        claimed: &claimed,
        budget,
        want_choice,
        want_phases,
        epoch: Instant::now(),
        metrics: metrics.as_deref(),
        backlog: &backlog,
    };

    let mut completed = false;
    while !ledger.stop {
        ledger.current_bound = bc.bound;
        ledger.pending_depth = bc.pending.values().map(Vec::len).sum();
        let depth = work.len();
        ledger.observer.bound_started(bc.bound, depth);
        let began = Instant::now();
        let bound_cache = cache.as_ref().map(|b| {
            (
                b.cache,
                coverage_credit(bc.bound + 1, config.preemption_bound),
                coverage_credit(bc.bound, config.preemption_bound),
            )
        });
        let emit_faults = bc.fault < config.fault_bound;
        let leftover = run_icb_bound(
            &env,
            jobs,
            std::mem::take(&mut work),
            &mut ledger,
            &mut ckpt,
            &bc,
            &seqs,
            bound_cache,
            emit_faults,
        );
        if !ledger.stop && !leftover.is_empty() && ledger.remaining_budget() == 0 {
            ledger.halt(AbortReason::ExecutionBudget);
        }
        if ledger.stop {
            write_icb_checkpoint(&mut ledger, &mut ckpt, &bc, leftover);
            break;
        }
        debug_assert!(leftover.is_empty(), "level drained without stopping");

        let stats = BoundStats {
            bound: bc.bound,
            faults: bc.fault,
            executions: ledger.executions - bc.execs_base,
            cumulative_states: ledger.master.len(),
            bugs_found: ledger.buggy_executions - bc.bugs_base,
        };
        ledger.observer.bound_completed(&stats, began.elapsed());
        bc.bound_history.push(stats);
        ledger.curve.push((ledger.executions, ledger.master.len()));

        if ledger.config.stop_on_first_bug && ledger.buggy_executions > 0 {
            // The level was finished before halting, preserving the
            // minimal-(preemptions, faults) guarantee for the bug. (The
            // checkpoint folds the un-run deferrals in by itself.)
            ledger.halt(AbortReason::FirstBug);
            write_icb_checkpoint(&mut ledger, &mut ckpt, &bc, Vec::new());
            break;
        }
        // Fold the level's deferrals into the pending-level map; each
        // batch is sorted so the items a level starts with — and with
        // them the whole exploration — are independent of worker timing.
        let cap = ledger
            .config
            .max_work_queue
            .unwrap_or(usize::MAX)
            .min(ledger.remaining_budget());
        for (level, items) in [
            (
                (bc.bound + 1, bc.fault),
                std::mem::take(&mut ledger.deferred),
            ),
            (
                (bc.bound, bc.fault + 1),
                std::mem::take(&mut ledger.deferred_faults),
            ),
        ] {
            if items.is_empty() {
                continue;
            }
            let mut items = items;
            items.sort();
            let queue = bc.pending.entry(level).or_default();
            for item in items {
                if queue.len() < cap {
                    queue.push(item);
                } else {
                    ledger.truncated = true;
                }
            }
        }
        bc.pending.retain(|_, q| !q.is_empty());

        // A preemption bound counts as completed only once every fault
        // level `(c, _)` with pending work has been drained.
        let next_level = bc.pending.keys().next().copied();
        if next_level.is_none_or(|(c, _)| c > bc.bound) {
            bc.completed_bound = Some(bc.bound);
        }
        let Some(level) = next_level else {
            completed = !ledger.truncated;
            break;
        };
        if ledger
            .config
            .preemption_bound
            .is_some_and(|pb| level.0 > pb)
        {
            break;
        }
        if ledger.over_deadline() {
            ledger.halt(AbortReason::Timeout);
            ledger.truncated = true;
            write_icb_checkpoint(&mut ledger, &mut ckpt, &bc, Vec::new());
            break;
        }
        let queue = bc.pending.remove(&level).expect("peeked key exists");
        (bc.bound, bc.fault) = level;
        bc.execs_base = ledger.executions;
        bc.bugs_base = ledger.buggy_executions;
        work = queue.into_iter().map(|p| (p, Vec::new(), false)).collect();
    }
    if !ledger.stop {
        if let Some(ck) = ckpt {
            ck.finish();
        }
    }
    let (completed_bound, bound_history) = (bc.completed_bound, bc.bound_history);
    ledger.into_report("icb".to_string(), completed, completed_bound, bound_history)
}

// ---------------------------------------------------------------------
// Parallel DFS
// ---------------------------------------------------------------------

/// `(prefix, branch stack, retried)`; see [`IcbItem`] for `retried`.
type DfsItem = (Schedule, Vec<DfsBranch>, bool);

/// Replays the item's prefix, then branches over every enabled thread at
/// each in-bound point past it — the prefix-rooted form of the
/// sequential `DfsScheduler`.
struct PrefixDfsScheduler<'a> {
    prefix: &'a Schedule,
    stack: Vec<DfsBranch>,
    cursor: usize,
    path: Schedule,
    bound: usize,
}

impl Scheduler for PrefixDfsScheduler<'_> {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        if let Some(tid) = self.prefix.get(point.step_index) {
            if !point.is_enabled(tid) {
                DivergencePayload::new(point.step_index, tid, point.enabled.to_vec()).raise();
            }
            self.path.push(tid);
            return tid;
        }
        if point.step_index >= self.bound {
            // Truncated region: complete the run without branching.
            let choice = point.default_choice();
            self.path.push(choice);
            return choice;
        }
        let choice = if self.cursor < self.stack.len() {
            let b = &self.stack[self.cursor];
            let tid = b.options[b.next_ix];
            if !point.is_enabled(tid) {
                DivergencePayload::new(point.step_index, tid, point.enabled.to_vec()).raise();
            }
            self.cursor += 1;
            tid
        } else {
            self.stack.push(DfsBranch {
                options: point.enabled.to_vec(),
                next_ix: 0,
            });
            self.cursor += 1;
            point.enabled[0]
        };
        self.path.push(choice);
        choice
    }
}

fn dfs_worker(
    env: &WorkerEnv<'_>,
    frontier: &Frontier<DfsItem>,
    tx: mpsc::Sender<ExecEvent>,
    worker: usize,
    depth_bound: Option<usize>,
) {
    let bound = depth_bound.unwrap_or(usize::MAX);
    let cost = env.program.executions_per_run().max(1);
    let mut seq: u64 = 0;
    let mut dedup = DedupSink::default();
    'items: loop {
        let wait = Instant::now();
        let Some((prefix, mut stack, retried)) = frontier.pop() else {
            break;
        };
        if let Some(m) = env.metrics {
            m.worker_idle(worker, wait.elapsed());
        }
        loop {
            if env.stop.load(Ordering::SeqCst) {
                frontier.complete();
                return;
            }
            if !claim_budget(env.claimed, env.budget, cost) {
                frontier.push_many([(prefix, stack, retried)]);
                frontier.complete();
                return;
            }
            let stack_backup = stack.clone();
            let mut sched = PrefixDfsScheduler {
                prefix: &prefix,
                stack,
                cursor: 0,
                path: Schedule::new(),
                bound,
            };
            let mut buf = BufObserver::new(env.want_phases);
            let busy = Instant::now();
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut sink = GatedSink {
                    inner: &mut dedup,
                    remaining: bound,
                };
                execute_recovering(env.program, &mut sched, &mut sink, &mut buf)
            }));
            if let Some(m) = env.metrics {
                m.worker_busy(worker, busy.elapsed());
                m.worker_execution(worker);
            }
            let result = match run {
                Ok(result) => result,
                Err(payload) => {
                    drop(sched);
                    let quarantine = retried.then(|| QuarantinedTrace {
                        schedule: prefix.clone(),
                        step: prefix.len(),
                        expected: Tid(0),
                        actual: Vec::new(),
                    });
                    let _ = tx.send(ExecEvent {
                        worker,
                        seq: {
                            seq += 1;
                            seq
                        },
                        at: env.stamp(),
                        cost,
                        stats: ExecStats::default(),
                        outcome: ExecutionOutcome::Terminated,
                        fresh: dedup.take_fresh(),
                        bug_schedule: None,
                        choice: Vec::new(),
                        races: std::mem::take(&mut buf.races),
                        phases: std::mem::take(&mut buf.phases),
                        deferred: Vec::new(),
                        deferred_faults: Vec::new(),
                        faults: Vec::new(),
                        quarantine,
                        cache_hits: 0,
                        cache_stores: 0,
                        panic: Some(panic_message(payload)),
                    });
                    if !retried {
                        frontier.push_many([(prefix, stack_backup, true)]);
                    }
                    frontier.complete();
                    continue 'items;
                }
            };
            let path = std::mem::take(&mut sched.path);
            stack = sched.stack;

            let quarantine = if let ExecutionOutcome::ReplayDivergence {
                step,
                expected,
                ref actual,
            } = result.outcome
            {
                Some(QuarantinedTrace {
                    schedule: path.clone(),
                    step,
                    expected,
                    actual: actual.clone(),
                })
            } else {
                None
            };

            // Within the depth bound the result stands; beyond it the run
            // is an artifact of the completion policy — downgrade bugs.
            let effective = if result.stats.steps <= bound || !result.outcome.is_bug() {
                result
            } else {
                let mut r = result;
                r.outcome = ExecutionOutcome::Terminated;
                r
            };

            let item_done = backtrack_dfs(&mut stack);
            let _ = tx.send(ExecEvent {
                worker,
                seq: {
                    seq += 1;
                    seq
                },
                at: env.stamp(),
                cost,
                stats: effective.stats,
                bug_schedule: effective
                    .outcome
                    .is_bug()
                    .then(|| effective.trace.schedule()),
                choice: if env.want_choice {
                    choice_events(&effective)
                } else {
                    Vec::new()
                },
                outcome: effective.outcome,
                fresh: dedup.take_fresh(),
                races: std::mem::take(&mut buf.races),
                phases: std::mem::take(&mut buf.phases),
                deferred: Vec::new(),
                deferred_faults: Vec::new(),
                faults: Vec::new(),
                quarantine,
                cache_hits: 0,
                cache_stores: 0,
                panic: None,
            });
            if item_done {
                frontier.complete();
                continue 'items;
            }
            if frontier.paused() || frontier.starving() {
                let donated = dissolve_dfs(prefix.len(), &path, &stack);
                if let Some(m) = env.metrics {
                    m.steal_donation(donated.len());
                    m.worker_donation(worker);
                }
                frontier.push_many(donated);
                frontier.complete();
                continue 'items;
            }
        }
    }
}

fn write_dfs_checkpoint(
    ledger: &mut Ledger<'_>,
    ckpt: &mut Option<&mut Checkpointer>,
    label: &str,
    depth_bound: Option<usize>,
    queue: Vec<DfsItem>,
) {
    let Some(ck) = ckpt.as_deref_mut() else {
        return;
    };
    let mut frontier = Vec::new();
    let mut pending = None;
    for (prefix, stack, _) in queue {
        if stack.is_empty() {
            frontier.push(prefix);
        } else {
            pending = Some((prefix, stack.iter().map(DfsBranch::to_snapshot).collect()));
        }
    }
    frontier.sort();
    let base = ledger.snapshot_base();
    let executions = base.executions;
    let snapshot = SearchSnapshot {
        strategy: label.to_string(),
        meta: ck.meta().to_vec(),
        config: ledger.config.clone(),
        base,
        state: StrategyState::ParallelDfs(ParallelDfsState {
            depth_bound,
            frontier,
            pending,
        }),
    };
    match ck.write(&snapshot) {
        Ok(()) => ledger.observer.checkpoint_written(executions),
        Err(e) => eprintln!("warning: checkpoint write failed: {e}"),
    }
}

/// The parallel DFS driver (`dfs` / `db:N`): shards subtree prefixes
/// across `jobs` workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel_dfs(
    program: &(dyn ControlledProgram + Sync),
    config: &SearchConfig,
    jobs: usize,
    depth_bound: Option<usize>,
    observer: &mut dyn SearchObserver,
    mut ckpt: Option<&mut Checkpointer>,
    resume: Option<(ResumeBase, Vec<DfsItem>)>,
    metrics: Option<Arc<MetricsRegistry>>,
) -> SearchReport {
    let label = match depth_bound {
        Some(b) => format!("db:{b}"),
        None => "dfs".to_string(),
    };
    observer.search_started(&label);
    if let Some(m) = &metrics {
        m.set_workers(jobs);
    }
    let want_choice = observer.wants_choice_points();
    let want_phases = observer.wants_phase_timing();
    let backlog = Arc::new(AtomicUsize::new(0));
    let mut ledger = Ledger::new(
        config.clone(),
        observer,
        false,
        metrics.clone(),
        Arc::clone(&backlog),
    );
    let budget = config.max_executions.unwrap_or(usize::MAX);

    let items = match resume {
        None => vec![(Schedule::new(), Vec::new(), false)],
        Some((base, items)) => {
            let executions = base.executions;
            ledger.restore(base, 0, executions);
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.mark_written(ledger.executions);
            }
            if ledger.remaining_budget() == 0 {
                ledger.halt(AbortReason::ExecutionBudget);
            }
            items
        }
    };
    let stop_flag = AtomicBool::new(false);
    let claimed = AtomicUsize::new(ledger.executions);
    let env = WorkerEnv {
        program,
        stop: &stop_flag,
        claimed: &claimed,
        budget,
        want_choice,
        want_phases,
        epoch: Instant::now(),
        metrics: metrics.as_deref(),
        backlog: &backlog,
    };

    let frontier = Frontier::with_metrics(
        if ledger.stop { Vec::new() } else { items },
        metrics.clone(),
    );
    let (tx, rx) = mpsc::channel::<ExecEvent>();
    std::thread::scope(|s| {
        for worker in 0..jobs {
            let tx = tx.clone();
            let frontier = &frontier;
            let env = &env;
            s.spawn(move || dfs_worker(env, frontier, tx, worker, depth_bound));
        }
        drop(tx);
        loop {
            match rx.recv_timeout(PUMP_TICK) {
                Ok(ev) => ledger.apply(ev),
                Err(RecvTimeoutError::Timeout) => ledger.note_pump_stall(),
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if ledger.stop {
                continue;
            }
            let first_bug = ledger.config.stop_on_first_bug && ledger.buggy_executions > 0;
            if ckpt.is_some() && interrupt::interrupted() {
                quiesce(&frontier, &rx, &mut ledger);
                write_dfs_checkpoint(
                    &mut ledger,
                    &mut ckpt,
                    &label,
                    depth_bound,
                    frontier.snapshot_queue(),
                );
                ledger.halt(AbortReason::Interrupted);
                stop_flag.store(true, Ordering::SeqCst);
                frontier.close();
                continue;
            }
            if first_bug || ledger.over_deadline() {
                if ckpt.is_some() {
                    quiesce(&frontier, &rx, &mut ledger);
                    write_dfs_checkpoint(
                        &mut ledger,
                        &mut ckpt,
                        &label,
                        depth_bound,
                        frontier.snapshot_queue(),
                    );
                }
                ledger.halt(if first_bug {
                    AbortReason::FirstBug
                } else {
                    AbortReason::Timeout
                });
                stop_flag.store(true, Ordering::SeqCst);
                frontier.close();
                continue;
            }
            if ckpt.as_deref().is_some_and(|ck| ck.due(ledger.executions)) {
                quiesce(&frontier, &rx, &mut ledger);
                write_dfs_checkpoint(
                    &mut ledger,
                    &mut ckpt,
                    &label,
                    depth_bound,
                    frontier.snapshot_queue(),
                );
                frontier.unpause();
            }
        }
    });
    let leftover = frontier.snapshot_queue();
    if !ledger.stop && !leftover.is_empty() && ledger.remaining_budget() == 0 {
        ledger.halt(AbortReason::ExecutionBudget);
    }
    let completed = !ledger.stop && leftover.is_empty();
    if completed {
        if let Some(ck) = ckpt.as_deref_mut() {
            ck.finish();
        }
    } else if ledger.stop {
        write_dfs_checkpoint(&mut ledger, &mut ckpt, &label, depth_bound, leftover);
    }
    ledger.curve.push((ledger.executions, ledger.master.len()));
    ledger.into_report(label, completed, None, Vec::new())
}

// ---------------------------------------------------------------------
// Parallel random walk
// ---------------------------------------------------------------------

/// Hands out execution indices to random-walk workers. The parallel walk
/// derives one independent RNG stream per *index* (not per worker), so
/// the set of walks performed — and with it every order-independent
/// report field — depends only on the seed and the budget, not on the
/// worker count or timing.
pub(crate) struct IndexClaimer {
    inner: Mutex<ClaimerInner>,
    cv: Condvar,
}

struct ClaimerInner {
    next: u64,
    limit: u64,
    paused: bool,
    closed: bool,
    in_flight: usize,
}

impl IndexClaimer {
    fn new(next: u64, limit: u64) -> Self {
        IndexClaimer {
            inner: Mutex::new(ClaimerInner {
                next,
                limit,
                paused: false,
                closed: false,
                in_flight: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Claims the next index, advancing the cursor by `cost`. Blocks
    /// while paused; returns `None` when the budget is exhausted or the
    /// claimer is closed.
    fn claim(&self, cost: u64) -> Option<u64> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed || g.next >= g.limit {
                return None;
            }
            if !g.paused {
                let ix = g.next;
                g.next += cost;
                g.in_flight += 1;
                return Some(ix);
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    fn finish_one(&self) {
        let mut g = self.inner.lock().unwrap();
        g.in_flight = g.in_flight.saturating_sub(1);
        drop(g);
        self.cv.notify_all();
    }

    fn pause(&self) {
        self.inner.lock().unwrap().paused = true;
        self.cv.notify_all();
    }

    fn unpause(&self) {
        self.inner.lock().unwrap().paused = false;
        self.cv.notify_all();
    }

    /// Under pause, `idle` means every claimed index has completed: the
    /// executed set is exactly `[start, next_index)`.
    fn idle(&self) -> bool {
        self.inner.lock().unwrap().in_flight == 0
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    fn next_index(&self) -> u64 {
        self.inner.lock().unwrap().next
    }
}

/// Chooses uniformly among the enabled threads from a per-index stream.
struct WalkScheduler<'a> {
    rng: &'a mut SplitMix64,
}

impl Scheduler for WalkScheduler<'_> {
    fn pick(&mut self, point: SchedulePoint<'_>) -> Tid {
        point.enabled[self.rng.gen_index(point.enabled.len())]
    }
}

/// The stream for walk number `index` under `seed`.
fn walk_rng(seed: u64, index: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ mix64(index.wrapping_add(1)))
}

fn random_worker(
    env: &WorkerEnv<'_>,
    claimer: &IndexClaimer,
    tx: mpsc::Sender<ExecEvent>,
    worker: usize,
    seed: u64,
) {
    let cost = env.program.executions_per_run().max(1);
    let mut seq: u64 = 0;
    let mut dedup = DedupSink::default();
    loop {
        let wait = Instant::now();
        let Some(index) = claimer.claim(cost as u64) else {
            break;
        };
        if let Some(m) = env.metrics {
            m.worker_idle(worker, wait.elapsed());
        }
        if env.stop.load(Ordering::SeqCst) {
            claimer.finish_one();
            return;
        }
        // A panicking walk is retried once (same index, same RNG stream,
        // so the retry replays the identical walk) and then abandoned
        // with a `worker-panic` event per strike.
        let mut retried = false;
        loop {
            let mut rng = walk_rng(seed, index);
            let mut buf = BufObserver::new(env.want_phases);
            let busy = Instant::now();
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut sched = WalkScheduler { rng: &mut rng };
                execute_recovering(env.program, &mut sched, &mut dedup, &mut buf)
            }));
            if let Some(m) = env.metrics {
                m.worker_busy(worker, busy.elapsed());
                m.worker_execution(worker);
            }
            let result = match run {
                Ok(result) => result,
                Err(payload) => {
                    let _ = tx.send(ExecEvent {
                        worker,
                        seq: {
                            seq += 1;
                            seq
                        },
                        at: env.stamp(),
                        cost,
                        stats: ExecStats::default(),
                        outcome: ExecutionOutcome::Terminated,
                        fresh: dedup.take_fresh(),
                        bug_schedule: None,
                        choice: Vec::new(),
                        races: std::mem::take(&mut buf.races),
                        phases: std::mem::take(&mut buf.phases),
                        deferred: Vec::new(),
                        deferred_faults: Vec::new(),
                        faults: Vec::new(),
                        quarantine: None,
                        cache_hits: 0,
                        cache_stores: 0,
                        panic: Some(panic_message(payload)),
                    });
                    if retried {
                        break;
                    }
                    retried = true;
                    continue;
                }
            };
            let _ = tx.send(ExecEvent {
                worker,
                seq: {
                    seq += 1;
                    seq
                },
                at: env.stamp(),
                cost,
                stats: result.stats,
                bug_schedule: result.outcome.is_bug().then(|| result.trace.schedule()),
                choice: if env.want_choice {
                    choice_events(&result)
                } else {
                    Vec::new()
                },
                outcome: result.outcome,
                fresh: dedup.take_fresh(),
                races: std::mem::take(&mut buf.races),
                phases: std::mem::take(&mut buf.phases),
                deferred: Vec::new(),
                deferred_faults: Vec::new(),
                faults: Vec::new(),
                quarantine: None,
                cache_hits: 0,
                cache_stores: 0,
                panic: None,
            });
            break;
        }
        claimer.finish_one();
    }
}

fn write_random_checkpoint(
    ledger: &mut Ledger<'_>,
    ckpt: &mut Option<&mut Checkpointer>,
    seed: u64,
    next_index: u64,
) {
    let Some(ck) = ckpt.as_deref_mut() else {
        return;
    };
    let base = ledger.snapshot_base();
    let executions = base.executions;
    let snapshot = SearchSnapshot {
        strategy: "random".to_string(),
        meta: ck.meta().to_vec(),
        config: ledger.config.clone(),
        base,
        state: StrategyState::ParallelRandom(ParallelRandomState { seed, next_index }),
    };
    match ck.write(&snapshot) {
        Ok(()) => ledger.observer.checkpoint_written(executions),
        Err(e) => eprintln!("warning: checkpoint write failed: {e}"),
    }
}

/// The parallel random-walk driver. Each execution index gets its own
/// seed-derived RNG stream, so results are identical at any worker count
/// (but deliberately differ from the sequential single-stream walk —
/// the two samplings are equally uniform and are not interchangeable).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel_random(
    program: &(dyn ControlledProgram + Sync),
    config: &SearchConfig,
    jobs: usize,
    seed: u64,
    observer: &mut dyn SearchObserver,
    mut ckpt: Option<&mut Checkpointer>,
    resume: Option<(ResumeBase, ParallelRandomState)>,
    metrics: Option<Arc<MetricsRegistry>>,
) -> SearchReport {
    observer.search_started("random");
    if let Some(m) = &metrics {
        m.set_workers(jobs);
    }
    let want_choice = observer.wants_choice_points();
    let want_phases = observer.wants_phase_timing();
    let backlog = Arc::new(AtomicUsize::new(0));
    let mut ledger = Ledger::new(
        config.clone(),
        observer,
        false,
        metrics.clone(),
        Arc::clone(&backlog),
    );
    let budget = config
        .max_executions
        .expect("parallel random search requires an execution budget");

    let (seed, start_index) = match resume {
        None => (seed, 0),
        Some((base, state)) => {
            let executions = base.executions;
            ledger.restore(base, 0, executions);
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.mark_written(ledger.executions);
            }
            if ledger.remaining_budget() == 0 {
                ledger.halt(AbortReason::ExecutionBudget);
            }
            (state.seed, state.next_index)
        }
    };
    let stop_flag = AtomicBool::new(false);
    let claimed = AtomicUsize::new(0); // budget is enforced by the claimer
    let env = WorkerEnv {
        program,
        stop: &stop_flag,
        claimed: &claimed,
        budget: usize::MAX,
        want_choice,
        want_phases,
        epoch: Instant::now(),
        metrics: metrics.as_deref(),
        backlog: &backlog,
    };

    let claimer = IndexClaimer::new(
        start_index,
        if ledger.stop {
            start_index
        } else {
            budget as u64
        },
    );
    let (tx, rx) = mpsc::channel::<ExecEvent>();
    std::thread::scope(|s| {
        for worker in 0..jobs {
            let tx = tx.clone();
            let claimer = &claimer;
            let env = &env;
            s.spawn(move || random_worker(env, claimer, tx, worker, seed));
        }
        drop(tx);
        loop {
            match rx.recv_timeout(PUMP_TICK) {
                Ok(ev) => ledger.apply(ev),
                Err(RecvTimeoutError::Timeout) => ledger.note_pump_stall(),
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if ledger.stop {
                continue;
            }
            let first_bug = ledger.config.stop_on_first_bug && ledger.buggy_executions > 0;
            let interruptd = ckpt.is_some() && interrupt::interrupted();
            if first_bug || interruptd || ledger.over_deadline() {
                if ckpt.is_some() {
                    quiesce_claimer(&claimer, &rx, &mut ledger);
                    write_random_checkpoint(&mut ledger, &mut ckpt, seed, claimer.next_index());
                }
                ledger.halt(if interruptd {
                    AbortReason::Interrupted
                } else if first_bug {
                    AbortReason::FirstBug
                } else {
                    AbortReason::Timeout
                });
                stop_flag.store(true, Ordering::SeqCst);
                claimer.close();
                continue;
            }
            if ckpt.as_deref().is_some_and(|ck| ck.due(ledger.executions)) {
                quiesce_claimer(&claimer, &rx, &mut ledger);
                write_random_checkpoint(&mut ledger, &mut ckpt, seed, claimer.next_index());
                claimer.unpause();
            }
        }
    });
    if !ledger.stop {
        if ledger.remaining_budget() == 0 {
            ledger.halt(AbortReason::ExecutionBudget);
            write_random_checkpoint(&mut ledger, &mut ckpt, seed, claimer.next_index());
        } else if let Some(ck) = ckpt {
            // Stopped for no recorded reason (cannot happen today): keep
            // the snapshot rather than deleting a resumable state.
            let _ = ck;
        }
    }
    ledger.curve.push((ledger.executions, ledger.master.len()));
    // Like the sequential walk, a random search never exhausts its space.
    ledger.into_report("random".to_string(), false, None, Vec::new())
}

/// [`quiesce`] for the random walk's claimer.
fn quiesce_claimer(
    claimer: &IndexClaimer,
    rx: &mpsc::Receiver<ExecEvent>,
    ledger: &mut Ledger<'_>,
) {
    claimer.pause();
    while !claimer.idle() {
        match rx.recv_timeout(PUMP_TICK) {
            Ok(ev) => ledger.apply(ev),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    while let Ok(ev) = rx.try_recv() {
        ledger.apply(ev);
    }
}
