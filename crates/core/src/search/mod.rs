//! Systematic search strategies over the schedule tree of a
//! [`ControlledProgram`] implementation.
//!
//! [`ControlledProgram`]: crate::program::ControlledProgram
//!
//! * [`IcbSearch`] — **iterative context bounding**, the paper's
//!   Algorithm 1 in its stateless (replay-based) form: all executions with
//!   `i` preemptions are explored before any execution with `i + 1`.
//! * [`DfsSearch`] — depth-first enumeration of all schedules, optionally
//!   depth-bounded (the paper's `dfs` and `db:N` baselines).
//! * [`IterativeDeepeningSearch`] — iterative depth-bounding (`idfs`).
//! * [`RandomSearch`] — uniform random walk (`random`).
//! * [`BestFirstSearch`] — the Groce–Visser "more enabled threads"
//!   heuristic from the paper's related work.
//!
//! All strategies share [`SearchConfig`] / [`SearchReport`] and implement
//! the object-safe [`SearchStrategy`] trait so the benchmark harness can
//! treat them uniformly.

mod bestfirst;
mod dfs;
pub mod frontier;
mod icb;
mod parallel;
mod random;
mod session;

pub use bestfirst::BestFirstSearch;
pub use dfs::{DfsSearch, IterativeDeepeningSearch};
pub use frontier::Frontier;
pub use icb::IcbSearch;
pub use random::RandomSearch;
pub use session::{Search, SearchError, Strategy};

use crate::cache::ExplorationCache;
use crate::coverage::{CoverageTracker, StateSink};
use crate::program::{ControlledProgram, Scheduler};
use crate::snapshot::ResumeBase;
use crate::telemetry::{AbortReason, ChoiceKind, NoopObserver, ResumeInfo, SearchObserver, SiteId};
use crate::tid::Tid;
use crate::trace::{
    DivergencePayload, ExecStats, ExecutionOutcome, ExecutionResult, Schedule, Trace,
};

/// Limits and options common to all search strategies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchConfig {
    /// Stop after this many executions (`None` = unlimited; prefer a
    /// limit for programs whose schedule space you have not measured).
    pub max_executions: Option<usize>,
    /// For [`IcbSearch`]: stop after *completing* this preemption bound.
    /// `None` iterates until the space is exhausted or another limit
    /// triggers.
    pub preemption_bound: Option<usize>,
    /// For [`IcbSearch`]: the iterative *fault bound* `f`, composing
    /// lexicographically with the preemption bound `c` — levels are
    /// explored in the order `(0,0), (0,1), …, (0,f), (1,0), …`, so the
    /// first bug found carries a minimum-`(preemptions, faults)`
    /// witness. 0 (the default) never injects a fault and reproduces
    /// pre-fault behavior exactly.
    pub fault_bound: usize,
    /// Abort the search as soon as the first bug is recorded.
    pub stop_on_first_bug: bool,
    /// Keep at most this many bug reports (further buggy executions are
    /// still counted in [`SearchReport::buggy_executions`]).
    pub max_bug_reports: usize,
    /// Hard cap on the deferred work queue of [`IcbSearch`]; exceeding it
    /// sets [`SearchReport::truncated`]. `None` = unbounded.
    pub max_work_queue: Option<usize>,
    /// Wall-clock budget: the search stops (incomplete) after this long.
    /// `None` = unlimited.
    pub max_duration: Option<std::time::Duration>,
    /// Growth-curve sampling stride: one coverage-curve point per this
    /// many executions (see [`CoverageTracker::with_stride`]). The
    /// default of 1 keeps the legacy point-per-execution curve; raise it
    /// so million-execution runs don't hold a point per execution. 0 is
    /// treated as 1.
    pub coverage_stride: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_executions: Some(1_000_000),
            preemption_bound: None,
            fault_bound: 0,
            stop_on_first_bug: false,
            max_bug_reports: 64,
            max_work_queue: None,
            max_duration: None,
            coverage_stride: 1,
        }
    }
}

impl SearchConfig {
    /// Config that hunts for the first bug and stops.
    pub fn bug_hunt() -> Self {
        SearchConfig {
            stop_on_first_bug: true,
            ..SearchConfig::default()
        }
    }

    /// Config with an execution budget.
    pub fn with_max_executions(max: usize) -> Self {
        SearchConfig {
            max_executions: Some(max),
            ..SearchConfig::default()
        }
    }
}

/// A bug found by a search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BugReport {
    /// What went wrong.
    pub outcome: ExecutionOutcome,
    /// The complete schedule of the failing execution — replay it with
    /// [`crate::ReplayScheduler`] to reproduce the bug deterministically.
    pub schedule: Schedule,
    /// Number of preemptions in the failing execution. For [`IcbSearch`]
    /// the first report's value is *minimal* over all failing executions
    /// (lexicographically in `(preemptions, faults)` when a fault bound
    /// is set).
    pub preemptions: usize,
    /// Number of injected faults in the failing execution (0 unless the
    /// search ran with a fault bound).
    pub faults: usize,
    /// 1-based index of the failing execution within the search.
    pub execution_index: usize,
    /// Length of the failing execution in steps.
    pub steps: usize,
}

/// A schedule prefix whose subtree the search forfeited because replay
/// diverged there (the program under test is not deterministic).
///
/// Quarantined prefixes are *not* bugs in the program's logic — they are
/// failures of the testing infrastructure's determinism contract. The
/// search skips the diverging subtree and keeps going; the final
/// [`SearchReport`] lists what was forfeited so coverage claims can be
/// qualified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedTrace {
    /// The schedule prefix identifying the forfeited subtree.
    pub schedule: Schedule,
    /// The step index at which replay diverged.
    pub step: usize,
    /// The thread the recorded schedule expected to run.
    pub expected: Tid,
    /// The threads actually enabled at the diverging point.
    pub actual: Vec<Tid>,
}

/// Statistics for one completed preemption bound of [`IcbSearch`] — or,
/// when a fault bound is set, one `(preemption, fault)` level of the
/// lexicographic grid (one row per level, identified by
/// `(bound, faults)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundStats {
    /// The preemption bound these statistics describe.
    pub bound: usize,
    /// The fault level these statistics describe (0 in fault-free runs,
    /// where one row per preemption bound is emitted as before).
    pub faults: usize,
    /// Executions explored *at* this bound.
    pub executions: usize,
    /// Cumulative distinct states after completing this bound — the
    /// y-axis of Figures 1 and 4.
    pub cumulative_states: usize,
    /// Bugs first observed at this bound.
    pub bugs_found: usize,
}

/// Fingerprint-cache outcome of one search run (present only when a
/// cache was attached via [`Search::cache`](crate::search::Search)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Work items skipped because the cache already covered their
    /// `(state, next thread)` subtree.
    pub hits: usize,
    /// New `(state, next thread)` subtrees recorded.
    pub stores: usize,
    /// The cache pruned on *heuristic* (happens-before) fingerprints:
    /// the run is NOT exhaustive — a pruned subtree may have contained
    /// unvisited states. Always `false` for exact (explicit-state)
    /// fingerprints.
    pub heuristic: bool,
    /// The run was answered entirely from the certification ledger: a
    /// previous clean run already certified this program bug-free at
    /// the requested bound, so no executions were performed.
    pub certified: bool,
}

impl CacheSummary {
    /// Fraction of cache probes that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.stores;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The result of running a search strategy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchReport {
    /// Human-readable strategy label (`icb`, `dfs`, `db:40`, …).
    pub strategy: String,
    /// Executions performed.
    pub executions: usize,
    /// Distinct state fingerprints visited.
    pub distinct_states: usize,
    /// Cumulative distinct states after each execution (Figures 2/5/6).
    pub coverage_curve: Vec<(usize, usize)>,
    /// Bug reports, in discovery order (capped by
    /// [`SearchConfig::max_bug_reports`]).
    pub bugs: Vec<BugReport>,
    /// Total executions that ended in a bug.
    pub buggy_executions: usize,
    /// `true` if the schedule space was exhausted within the limits.
    pub completed: bool,
    /// Highest preemption bound fully explored ([`IcbSearch`] only).
    pub completed_bound: Option<usize>,
    /// Per-bound statistics ([`IcbSearch`] only).
    pub bound_history: Vec<BoundStats>,
    /// Pointwise maxima of the per-execution statistics (Table 1).
    pub max_stats: ExecStats,
    /// Work had to be dropped (queue cap) — coverage claims are lower
    /// bounds only.
    pub truncated: bool,
    /// Schedule prefixes whose subtrees were forfeited because replay
    /// diverged (capped like bug reports; see `quarantined_total` for
    /// the full count).
    pub quarantined: Vec<QuarantinedTrace>,
    /// Total number of quarantined (forfeited) subtrees.
    pub quarantined_total: usize,
    /// Executions abandoned by the per-execution wall-clock watchdog.
    pub watchdog_trips: usize,
    /// Fingerprint-cache outcome; `None` when no cache was attached.
    /// When `cache.heuristic` is set the search was NOT exhaustive even
    /// if `completed` is `true` — see [`CacheSummary::heuristic`].
    pub cache: Option<CacheSummary>,
}

impl SearchReport {
    /// The first (for ICB: minimal-preemption) bug, if any was found.
    pub fn first_bug(&self) -> Option<&BugReport> {
        self.bugs.first()
    }

    /// The per-bound statistics ([`IcbSearch`] only) — the rows streamed
    /// through [`SearchObserver::bound_completed`] during the search.
    pub fn bound_stats(&self) -> &[BoundStats] {
        &self.bound_history
    }
}

impl std::fmt::Display for SearchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} executions, {} states",
            self.strategy, self.executions, self.distinct_states
        )?;
        if let Some(bound) = self.completed_bound {
            write!(f, ", bound {bound} complete")?;
        }
        if self.completed {
            write!(f, ", space exhausted")?;
        }
        if self.truncated {
            write!(f, ", TRUNCATED")?;
        }
        match self.buggy_executions {
            0 => write!(f, ", no bugs")?,
            n => {
                write!(f, ", {n} failing execution(s)")?;
                if let Some(bug) = self.first_bug() {
                    write!(
                        f,
                        "; first: {} ({} preemptions",
                        bug.outcome, bug.preemptions
                    )?;
                    // Stated only for faulted witnesses: fault-free
                    // reports stay byte-identical to older releases.
                    if bug.faults > 0 {
                        write!(f, ", {} faults", bug.faults)?;
                    }
                    write!(f, ")")?;
                }
            }
        }
        if self.quarantined_total > 0 {
            write!(
                f,
                ", {} subtree(s) quarantined (replay diverged; space forfeited)",
                self.quarantined_total
            )?;
        }
        if self.watchdog_trips > 0 {
            write!(f, ", {} watchdog trip(s)", self.watchdog_trips)?;
        }
        if let Some(cache) = &self.cache {
            if cache.certified {
                write!(f, ", CERTIFIED (answered from cache ledger)")?;
            } else {
                write!(
                    f,
                    ", cache: {} hit(s) / {} store(s)",
                    cache.hits, cache.stores
                )?;
            }
            if cache.heuristic {
                write!(f, ", HEURISTIC fingerprints (non-exhaustive)")?;
            }
        }
        Ok(())
    }
}

/// Object-safe interface over all search strategies.
pub trait SearchStrategy {
    /// Runs the search against `program`, streaming telemetry events to
    /// `observer`.
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(..).observer(obs).run()"
    )]
    fn search_observed(
        &self,
        program: &dyn ControlledProgram,
        observer: &mut dyn SearchObserver,
    ) -> SearchReport;

    /// Runs the search without telemetry (a [`NoopObserver`]).
    #[deprecated(
        note = "superseded by the unified builder: Search::over(program).strategy(..).run()"
    )]
    fn search(&self, program: &dyn ControlledProgram) -> SearchReport {
        #[allow(deprecated)]
        self.search_observed(program, &mut NoopObserver)
    }

    /// Short label for reports and plots (`icb`, `dfs`, `db:40`, …).
    fn name(&self) -> String;
}

/// A fingerprint cache attached to one search run, resolved by the
/// session builder: the cache itself plus the exactness of the
/// program's fingerprints (heuristic pruning makes the run
/// non-exhaustive; the flag is carried into the report).
#[derive(Clone, Copy)]
pub(crate) struct CacheBinding<'c> {
    pub(crate) cache: &'c dyn ExplorationCache,
    pub(crate) heuristic: bool,
}

impl std::fmt::Debug for CacheBinding<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheBinding")
            .field("heuristic", &self.heuristic)
            .finish_non_exhaustive()
    }
}

/// Shared bookkeeping: budget, coverage, bug collection, telemetry.
pub(crate) struct SearchCtx<'o> {
    pub(crate) config: SearchConfig,
    pub(crate) started: std::time::Instant,
    pub(crate) coverage: CoverageTracker,
    pub(crate) executions: usize,
    pub(crate) bugs: Vec<BugReport>,
    pub(crate) buggy_executions: usize,
    pub(crate) max_stats: ExecStats,
    pub(crate) stop: bool,
    pub(crate) abort: Option<AbortReason>,
    /// The preemption bound the strategy is currently exploring, used to
    /// attribute `choice_point` events. Strategies without bounds leave
    /// it at 0.
    pub(crate) current_bound: usize,
    pub(crate) quarantined: Vec<QuarantinedTrace>,
    pub(crate) quarantined_total: usize,
    pub(crate) watchdog_trips: usize,
    /// Cache accounting; `Some` only when the driver attached a cache
    /// (the summary's `heuristic` flag is fixed at attach time, the
    /// counters accumulate during the search).
    pub(crate) cache: Option<CacheSummary>,
    pub(crate) observer: &'o mut dyn SearchObserver,
}

impl<'o> SearchCtx<'o> {
    pub(crate) fn new(config: SearchConfig, observer: &'o mut dyn SearchObserver) -> Self {
        let stride = config.coverage_stride;
        SearchCtx {
            config,
            started: std::time::Instant::now(),
            coverage: CoverageTracker::new().with_stride(stride),
            executions: 0,
            bugs: Vec::new(),
            buggy_executions: 0,
            max_stats: ExecStats::default(),
            stop: false,
            abort: None,
            current_bound: 0,
            quarantined: Vec::new(),
            quarantined_total: 0,
            watchdog_trips: 0,
            cache: None,
            observer,
        }
    }

    /// Attaches cache accounting to the context: the report will carry a
    /// [`CacheSummary`] with the given exactness flag.
    pub(crate) fn attach_cache(&mut self, heuristic: bool) {
        self.cache = Some(CacheSummary {
            heuristic,
            ..CacheSummary::default()
        });
    }

    /// Counts one cache hit (a pruned work item) and tells the observer.
    pub(crate) fn cache_hit(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        if let Some(cache) = &mut self.cache {
            cache.hits += count;
        }
        self.observer.cache_hit(count);
    }

    /// Seeds the coverage tracker with state fingerprints inherited from
    /// previous runs (see [`ExplorationCache::seed_states`]), so a warm
    /// run's *final* coverage matches the cold run it prunes parts of.
    pub(crate) fn seed_coverage(&mut self, states: &[u64]) {
        for &fp in states {
            self.coverage.visit(fp);
        }
    }

    /// Counts one cache store (a newly recorded subtree) and tells the
    /// observer.
    pub(crate) fn cache_store(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        if let Some(cache) = &mut self.cache {
            cache.stores += count;
        }
        self.observer.cache_store(count);
    }

    /// Seeds the context's cumulative counters, coverage and findings
    /// from a checkpoint, then announces the resume to the observer.
    /// `bound_executions` is the number of executions already spent at
    /// the bound being resumed (0 for unbounded strategies).
    pub(crate) fn restore(&mut self, base: ResumeBase, bound: usize, bound_executions: usize) {
        self.executions = base.executions;
        self.buggy_executions = base.buggy_executions;
        self.bugs = base.bugs;
        self.max_stats = base.max_stats;
        self.quarantined = base.quarantined;
        self.quarantined_total = base.quarantined_total;
        self.watchdog_trips = base.watchdog_trips;
        self.coverage = CoverageTracker::restore(
            base.coverage_states,
            base.coverage_executions,
            base.coverage_curve,
        )
        .with_stride(self.config.coverage_stride);
        self.current_bound = bound;
        let info = ResumeInfo {
            executions: self.executions,
            distinct_states: self.coverage.distinct_states(),
            bound,
            bound_executions,
        };
        self.observer.search_resumed(&info);
    }

    /// Extracts the cumulative counters, coverage and findings into the
    /// strategy-independent half of a checkpoint.
    pub(crate) fn snapshot_base(&self) -> ResumeBase {
        ResumeBase {
            executions: self.executions,
            buggy_executions: self.buggy_executions,
            bugs: self.bugs.clone(),
            max_stats: self.max_stats,
            quarantined: self.quarantined.clone(),
            quarantined_total: self.quarantined_total,
            watchdog_trips: self.watchdog_trips,
            coverage_states: self.coverage.state_hashes(),
            coverage_executions: self.coverage.executions(),
            coverage_curve: self.coverage.curve().to_vec(),
            truncated: false,
        }
    }

    /// Quarantines a diverging schedule prefix: counts it, keeps a
    /// capped list for the report, and notifies the observer. The
    /// search forfeits the prefix's subtree and keeps going.
    pub(crate) fn quarantine(&mut self, q: QuarantinedTrace) {
        self.quarantined_total += 1;
        self.observer.trace_quarantined(&q);
        if self.quarantined.len() < self.config.max_bug_reports {
            self.quarantined.push(q);
        }
    }

    /// Remaining execution budget, `usize::MAX` if unlimited.
    pub(crate) fn remaining_budget(&self) -> usize {
        match self.config.max_executions {
            Some(max) => max.saturating_sub(self.executions),
            None => usize::MAX,
        }
    }

    /// Announces the next execution to the observer. Call immediately
    /// before `execute`; every call must be paired with one `record`.
    pub(crate) fn begin_execution(&mut self) {
        self.observer.execution_started(self.executions + 1);
    }

    /// Stops the search, reporting the (first) reason to the observer.
    pub(crate) fn halt(&mut self, reason: AbortReason) {
        if !self.stop {
            self.stop = true;
            self.abort = Some(reason);
            self.observer.search_aborted(reason);
        }
    }

    /// Whether the wall-clock budget is exhausted.
    pub(crate) fn over_deadline(&self) -> bool {
        self.config
            .max_duration
            .is_some_and(|limit| self.started.elapsed() >= limit)
    }

    /// Streams the attributed per-decision events of a finished
    /// execution — one `choice_point` per trace entry, plus a
    /// `preemption_taken` charged to the victim's most recent operation.
    /// One batched pass, entered only when an observer asked for it, so
    /// the hot path of an unprofiled search is a single branch.
    fn emit_choice_points(&mut self, result: &ExecutionResult) {
        for ev in choice_events(result) {
            self.observer
                .choice_point(ev.site, self.current_bound, ev.kind);
            if let Some(victim) = ev.victim {
                self.observer.preemption_taken(victim);
            }
        }
    }

    /// Records a finished execution; sets `stop` when a limit is hit.
    pub(crate) fn record(&mut self, result: &ExecutionResult, cost: usize) {
        self.executions += cost;
        self.coverage.end_execution();
        self.max_stats = self.max_stats.max(result.stats);
        if self.observer.wants_choice_points() {
            self.emit_choice_points(result);
        }
        if result.stats.faults > 0 {
            for (site, step) in fault_events(result) {
                self.observer.fault_injected(site, step);
            }
        }
        self.observer.execution_finished(
            self.executions,
            &result.stats,
            &result.outcome,
            self.coverage.distinct_states(),
        );
        if result.outcome == ExecutionOutcome::WatchdogTimeout {
            self.watchdog_trips += 1;
        }
        if result.outcome.is_bug() {
            self.buggy_executions += 1;
            if self.bugs.len() < self.config.max_bug_reports {
                let bug = BugReport {
                    outcome: result.outcome.clone(),
                    schedule: result.trace.schedule(),
                    preemptions: result.stats.preemptions,
                    faults: result.stats.faults,
                    execution_index: self.executions,
                    steps: result.stats.steps,
                };
                self.observer.bug_found(&bug);
                self.bugs.push(bug);
            }
            if self.config.stop_on_first_bug {
                self.halt(AbortReason::FirstBug);
            }
        }
        if self.remaining_budget() == 0 {
            self.halt(AbortReason::ExecutionBudget);
        }
        if self.over_deadline() {
            self.halt(AbortReason::Timeout);
        }
    }

    /// Converts the context into a report (emitting `search_finished`).
    /// `completed` must reflect whether the strategy exhausted its
    /// search space. A timed-out search is additionally marked truncated
    /// so it is distinguishable from an exhausted one.
    pub(crate) fn into_report(
        mut self,
        strategy: String,
        completed: bool,
        completed_bound: Option<usize>,
        bound_history: Vec<BoundStats>,
        truncated: bool,
    ) -> SearchReport {
        let coverage = std::mem::take(&mut self.coverage);
        let report = SearchReport {
            strategy,
            executions: self.executions,
            distinct_states: coverage.distinct_states(),
            coverage_curve: coverage.into_curve(),
            bugs: std::mem::take(&mut self.bugs),
            buggy_executions: self.buggy_executions,
            completed,
            completed_bound,
            bound_history,
            max_stats: self.max_stats,
            truncated: truncated || self.abort == Some(AbortReason::Timeout),
            quarantined: std::mem::take(&mut self.quarantined),
            quarantined_total: self.quarantined_total,
            watchdog_trips: self.watchdog_trips,
            cache: self.cache.take(),
        };
        self.observer.search_finished(&report);
        report
    }
}

/// One attributed scheduling decision of a finished execution, extracted
/// from its trace: the site, the decision kind, and — for preemptions —
/// the victim's most recent site (`entry.current == entries[i-1].chosen`,
/// so the previous entry's site is the last op the preempted thread
/// executed). Shared by the sequential [`SearchCtx`] and the parallel
/// event pump so both attribute identically.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChoiceEvent {
    pub(crate) site: SiteId,
    pub(crate) kind: ChoiceKind,
    pub(crate) victim: Option<SiteId>,
}

/// The injected faults of a finished execution, as `(site, step)` pairs
/// in step order. Shared by the sequential [`SearchCtx`] and the
/// parallel event pump so both attribute identically.
pub(crate) fn fault_events(result: &ExecutionResult) -> Vec<(SiteId, usize)> {
    result
        .trace
        .entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.fault)
        .map(|(i, e)| (e.site, i))
        .collect()
}

pub(crate) fn choice_events(result: &ExecutionResult) -> Vec<ChoiceEvent> {
    let entries = result.trace.entries();
    entries
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let kind = if entry.is_preemption() {
                ChoiceKind::Preemption
            } else if entry.is_context_switch() {
                ChoiceKind::Switch
            } else {
                ChoiceKind::Continue
            };
            let victim = (kind == ChoiceKind::Preemption).then(|| {
                i.checked_sub(1)
                    .map_or(SiteId::UNKNOWN, |p| entries[p].site)
            });
            ChoiceEvent {
                site: entry.site,
                kind,
                victim,
            }
        })
        .collect()
}

/// Runs one execution, converting a [`DivergencePayload`] unwind coming
/// out of an *in-process* program host (the state VM, test programs)
/// into a recoverable [`ExecutionOutcome::ReplayDivergence`] result. The
/// threaded runtime catches the payload inside its engine and returns
/// the same outcome with the partial trace attached; either way the
/// strategies see divergence as an outcome, never as a panic. Any other
/// payload is a genuine panic and is re-raised.
pub(crate) fn execute_recovering(
    program: &dyn ControlledProgram,
    scheduler: &mut dyn Scheduler,
    coverage: &mut dyn StateSink,
    observer: &mut dyn SearchObserver,
) -> ExecutionResult {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        program.execute_observed(scheduler, coverage, observer)
    }));
    match run {
        Ok(result) => result,
        Err(payload) => match payload.downcast::<DivergencePayload>() {
            // The host's trace died with the unwind; the quarantine
            // entry (recorded by the caller) identifies the subtree.
            Ok(d) => ExecutionResult::from_trace(d.into_outcome(), Trace::new()),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

#[cfg(test)]
pub(crate) mod testprog {
    //! A tiny deterministic multithreaded interpreter used by the search
    //! unit tests: `n` threads, each executing `k` increments of a shared
    //! counter; an optional assertion fails iff a specific interleaving
    //! pattern occurs. Enabledness can include a one-slot "lock" to
    //! exercise blocking (nonpreempting switches).

    use crate::coverage::{fingerprint_bytes, StateSink};
    use crate::program::{ControlledProgram, FaultPoint, SchedulePoint, Scheduler};
    use crate::telemetry::SiteId;
    use crate::tid::Tid;
    use crate::trace::{ExecutionOutcome, ExecutionResult, Trace, TraceEntry};

    /// `n` threads × `k` steps, no blocking; optional bug when thread
    /// `bug_thread` observes `counter == bug_value` at its own step
    /// `bug_step`.
    pub(crate) struct Counters {
        pub n: usize,
        pub k: usize,
        pub bug: Option<(usize, usize, u32)>, // (thread, its step, counter value)
    }

    impl ControlledProgram for Counters {
        fn execute(
            &self,
            scheduler: &mut dyn Scheduler,
            sink: &mut dyn StateSink,
        ) -> ExecutionResult {
            let mut counter: u32 = 0;
            let mut pos = vec![0usize; self.n];
            let mut trace = Trace::new();
            let mut current: Option<Tid> = None;
            let mut failure: Option<Tid> = None;
            loop {
                let enabled: Vec<Tid> = (0..self.n).filter(|&i| pos[i] < self.k).map(Tid).collect();
                if enabled.is_empty() {
                    break;
                }
                let current_enabled = current.is_some_and(|t| pos[t.index()] < self.k);
                let chosen = scheduler.pick(SchedulePoint {
                    step_index: trace.len(),
                    current,
                    current_enabled,
                    enabled: &enabled,
                });
                trace.push(TraceEntry::new(
                    chosen,
                    enabled,
                    current,
                    current_enabled,
                    false,
                ));
                if let Some((bt, bs, bv)) = self.bug {
                    if chosen.index() == bt && pos[bt] == bs && counter == bv {
                        failure = Some(chosen);
                    }
                }
                counter += 1;
                pos[chosen.index()] += 1;
                current = Some(chosen);

                let mut bytes = Vec::with_capacity(4 + self.n * 8);
                bytes.extend_from_slice(&counter.to_le_bytes());
                for p in &pos {
                    bytes.extend_from_slice(&(*p as u64).to_le_bytes());
                }
                sink.visit(fingerprint_bytes(&bytes));

                if failure.is_some() {
                    break;
                }
            }
            let outcome = match failure {
                Some(thread) => ExecutionOutcome::AssertionFailure {
                    thread,
                    message: "bug pattern hit".into(),
                },
                None => ExecutionOutcome::Terminated,
            };
            ExecutionResult::from_trace(outcome, trace)
        }
    }

    /// `n` threads × `k` increments where every increment is a fallible
    /// operation: the scheduler may fault it, in which case the update is
    /// lost. The final counter is asserted at join, so the bug is
    /// invisible at `fault_bound: 0` and has a minimum witness of zero
    /// preemptions and exactly one injected fault.
    pub(crate) struct FaultyCounters {
        pub n: usize,
        pub k: usize,
    }

    impl ControlledProgram for FaultyCounters {
        fn execute(
            &self,
            scheduler: &mut dyn Scheduler,
            sink: &mut dyn StateSink,
        ) -> ExecutionResult {
            let mut counter: u32 = 0;
            let mut pos = vec![0usize; self.n];
            let mut trace = Trace::new();
            let mut current: Option<Tid> = None;
            loop {
                let enabled: Vec<Tid> = (0..self.n).filter(|&i| pos[i] < self.k).map(Tid).collect();
                if enabled.is_empty() {
                    break;
                }
                let current_enabled = current.is_some_and(|t| pos[t.index()] < self.k);
                let chosen = scheduler.pick(SchedulePoint {
                    step_index: trace.len(),
                    current,
                    current_enabled,
                    enabled: &enabled,
                });
                let site = SiteId::at(chosen.index() as u32, "incr", pos[chosen.index()] as u32);
                let fault = scheduler.decide_fault(FaultPoint {
                    step_index: trace.len(),
                    tid: chosen,
                    site,
                });
                trace.push(
                    TraceEntry::new(chosen, enabled, current, current_enabled, false)
                        .with_site(site)
                        .with_fault(fault),
                );
                if !fault {
                    counter += 1;
                }
                pos[chosen.index()] += 1;
                current = Some(chosen);

                let mut bytes = Vec::with_capacity(4 + self.n * 8);
                bytes.extend_from_slice(&counter.to_le_bytes());
                for p in &pos {
                    bytes.extend_from_slice(&(*p as u64).to_le_bytes());
                }
                sink.visit(fingerprint_bytes(&bytes));
            }
            let expected = (self.n * self.k) as u32;
            let outcome = if counter == expected {
                ExecutionOutcome::Terminated
            } else {
                ExecutionOutcome::AssertionFailure {
                    thread: Tid(0),
                    message: format!("lost update: counter {counter} != {expected}"),
                }
            };
            ExecutionResult::from_trace(outcome, trace)
        }
    }

    /// Total number of schedules of `n` threads × `k` steps:
    /// multinomial (nk)! / (k!)^n.
    pub(crate) fn schedule_count(n: u64, k: u64) -> u128 {
        let f = |x: u64| crate::bounds::factorial(x).unwrap();
        f(n * k) / f(k).pow(n as u32)
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use crate::search::testprog::Counters;

    #[test]
    fn display_summarizes_reports() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((1, 0, 1)),
        };
        let report = Search::over(&p)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        let text = report.to_string();
        assert!(text.starts_with("[icb]"), "{text}");
        assert!(text.contains("executions"), "{text}");
        assert!(text.contains("failing execution"), "{text}");
        assert!(text.contains("preemptions"), "{text}");
    }

    #[test]
    fn clean_report_displays_no_bugs() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: None,
        };
        let report = Search::over(&p)
            .config(SearchConfig::default())
            .run()
            .unwrap();
        let text = report.to_string();
        assert!(text.contains("no bugs"), "{text}");
        assert!(text.contains("space exhausted"), "{text}");
    }

    #[test]
    fn choice_points_batch_per_execution_and_count_preemptions() {
        use crate::telemetry::{ChoiceKind, SiteId};

        #[derive(Default)]
        struct Counting {
            choices: usize,
            preemptions: usize,
            max_bound: usize,
            open_execution: bool,
            out_of_band: bool,
        }
        impl SearchObserver for Counting {
            fn wants_choice_points(&self) -> bool {
                true
            }
            fn execution_started(&mut self, _index: usize) {
                self.open_execution = true;
            }
            fn execution_finished(
                &mut self,
                _index: usize,
                _stats: &ExecStats,
                _outcome: &ExecutionOutcome,
                _distinct_states: usize,
            ) {
                self.open_execution = false;
            }
            fn choice_point(&mut self, _site: SiteId, bound: usize, kind: ChoiceKind) {
                self.choices += 1;
                self.max_bound = self.max_bound.max(bound);
                self.out_of_band |= !self.open_execution;
                if kind == ChoiceKind::Preemption {
                    // `preemption_taken` must follow; counted there.
                }
            }
            fn preemption_taken(&mut self, _site: SiteId) {
                self.preemptions += 1;
                self.out_of_band |= !self.open_execution;
            }
        }

        let p = Counters {
            n: 2,
            k: 2,
            bug: None,
        };
        let mut obs = Counting::default();
        let report = Search::over(&p)
            .config(SearchConfig::default())
            .observer(&mut obs)
            .run()
            .unwrap();
        // One choice_point per step of every execution: 6 executions
        // of 4 steps each for the 2×2 counter program.
        assert_eq!(obs.choices, report.executions * 4);
        // Preemption events across the whole search equal the per-bound
        // totals: bounds 0/1/2 contribute 0, 2·1 and 2·2 preemptions.
        assert_eq!(obs.preemptions, 6);
        assert_eq!(obs.max_bound, 2, "bound attribution follows ICB's bounds");
        assert!(
            !obs.out_of_band,
            "attributed events arrive inside an open execution"
        );
    }

    #[test]
    fn choice_points_are_not_emitted_unrequested() {
        #[derive(Default)]
        struct Refusing {
            attributed: usize,
        }
        impl SearchObserver for Refusing {
            fn choice_point(
                &mut self,
                _site: crate::telemetry::SiteId,
                _bound: usize,
                _kind: crate::telemetry::ChoiceKind,
            ) {
                self.attributed += 1;
            }
            fn preemption_taken(&mut self, _site: crate::telemetry::SiteId) {
                self.attributed += 1;
            }
        }
        let p = Counters {
            n: 2,
            k: 2,
            bug: None,
        };
        let mut obs = Refusing::default();
        Search::over(&p)
            .config(SearchConfig::default())
            .observer(&mut obs)
            .run()
            .unwrap();
        assert_eq!(obs.attributed, 0, "gate defaults to off");
    }

    #[test]
    fn zero_duration_budget_stops_after_one_execution() {
        let p = Counters {
            n: 3,
            k: 3,
            bug: None,
        };
        // The builder rejects a zero max_duration up front
        // (SearchError::ZeroDuration); the deprecated shim still clamps
        // to one execution, which this regression test pins down.
        #[allow(deprecated)]
        let report = IcbSearch::new(SearchConfig {
            max_duration: Some(std::time::Duration::ZERO),
            ..SearchConfig::default()
        })
        .run(&p);
        assert_eq!(report.executions, 1);
        assert!(!report.completed);
    }
}
