//! Execution traces, outcomes and per-execution statistics.
//!
//! A [`Trace`] records, for every scheduling point of one execution, which
//! threads were enabled and which one the scheduler chose. Traces are the
//! ground truth from which the number of *preemptions* — the quantity the
//! iterative context-bounding algorithm bounds — is computed, exactly as in
//! Appendix A of the paper:
//!
//! ```text
//! NP(t)     = 0
//! NP(a · t) = NP(a)      if t = L(a)  or  L(a) ∉ enabled(a)
//!           = NP(a) + 1  otherwise
//! ```

use crate::telemetry::SiteId;
use crate::tid::Tid;
use std::fmt;

/// The reason an execution ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecutionOutcome {
    /// All threads ran to completion.
    Terminated,
    /// A thread failed an assertion (or panicked) with the given message.
    AssertionFailure {
        /// The thread that failed.
        thread: Tid,
        /// The assertion/panic message.
        message: String,
    },
    /// No thread is enabled but some threads have not terminated.
    Deadlock {
        /// The threads that are blocked forever.
        blocked: Vec<Tid>,
    },
    /// A data race was detected between two accesses to the same data
    /// variable unordered by happens-before (Section 3.1 of the paper).
    DataRace {
        /// Human-readable description of the two racing accesses.
        description: String,
    },
    /// The execution exceeded the configured per-execution step limit.
    ///
    /// The stateless checker requires terminating programs; hitting this
    /// limit usually indicates a livelock or an unbounded loop in the
    /// program under test.
    StepLimitExceeded,
    /// Replay of a recorded schedule diverged: at `step` the schedule
    /// demanded `expected`, but the program offered a different enabled
    /// set (`actual`). This means the program under test is not
    /// deterministic under the controlled scheduler — a *testing
    /// infrastructure* problem, not a program bug. Strategies quarantine
    /// the diverging prefix and forfeit its subtree instead of aborting.
    ReplayDivergence {
        /// The step index at which the replay diverged.
        step: usize,
        /// The thread the recorded schedule expected to run.
        expected: Tid,
        /// The threads that were actually enabled at that point.
        actual: Vec<Tid>,
    },
    /// The execution exceeded the configured per-execution wall-clock
    /// budget (the runtime's `max_wall_time`) and was abandoned by the
    /// watchdog.
    ///
    /// Like [`StepLimitExceeded`](ExecutionOutcome::StepLimitExceeded)
    /// this is recoverable: the search records the trip and moves on to
    /// the next schedule instead of hanging forever.
    WatchdogTimeout,
}

impl ExecutionOutcome {
    /// Returns `true` if this outcome represents a bug (anything other
    /// than normal termination or an exhausted step budget).
    pub fn is_bug(&self) -> bool {
        matches!(
            self,
            ExecutionOutcome::AssertionFailure { .. }
                | ExecutionOutcome::Deadlock { .. }
                | ExecutionOutcome::DataRace { .. }
        )
    }
}

impl fmt::Display for ExecutionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionOutcome::Terminated => write!(f, "terminated"),
            ExecutionOutcome::AssertionFailure { thread, message } => {
                write!(f, "assertion failure in {thread}: {message}")
            }
            ExecutionOutcome::Deadlock { blocked } => {
                write!(f, "deadlock (blocked:")?;
                for t in blocked {
                    write!(f, " {t}")?;
                }
                write!(f, ")")
            }
            ExecutionOutcome::DataRace { description } => {
                write!(f, "data race: {description}")
            }
            ExecutionOutcome::StepLimitExceeded => write!(f, "step limit exceeded"),
            ExecutionOutcome::ReplayDivergence {
                step,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "replay divergence at step {step}: expected {expected}, enabled:"
                )?;
                for t in actual {
                    write!(f, " {t}")?;
                }
                Ok(())
            }
            ExecutionOutcome::WatchdogTimeout => write!(f, "watchdog timeout"),
        }
    }
}

/// The panic payload schedulers raise when a recorded schedule cannot be
/// replayed (the program under test is not deterministic).
///
/// Schedulers run *inside* the program host's execution loop and have no
/// error channel of their own, so divergence is signalled by unwinding
/// with this payload via [`DivergencePayload::raise`]. Hosts and
/// strategies that catch the unwind downcast to this type and convert it
/// into a recoverable [`ExecutionOutcome::ReplayDivergence`] via
/// [`DivergencePayload::into_outcome`]; any other payload is a genuine
/// panic and must be re-raised.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergencePayload {
    /// The step index at which the replay diverged.
    pub step: usize,
    /// The thread the recorded schedule expected to run.
    pub expected: Tid,
    /// The threads that were actually enabled at that point.
    pub actual: Vec<Tid>,
}

impl DivergencePayload {
    /// Creates a payload describing a divergence at `step`.
    pub fn new(step: usize, expected: Tid, actual: Vec<Tid>) -> Self {
        DivergencePayload {
            step,
            expected,
            actual,
        }
    }

    /// Unwinds with this payload.
    ///
    /// Every catcher (the runtime engine, the search strategies)
    /// downcasts and recovers, so the first raise quietly chains a panic
    /// hook that suppresses the default "thread panicked" spew for this
    /// payload type — a search over a nondeterministic program would
    /// otherwise print one backtrace banner per quarantined subtree.
    /// All other payloads still reach the previously installed hook.
    pub fn raise(self) -> ! {
        static SILENCE: std::sync::Once = std::sync::Once::new();
        SILENCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<DivergencePayload>().is_none() {
                    prev(info);
                }
            }));
        });
        std::panic::panic_any(self)
    }

    /// Converts the payload into its recoverable execution outcome.
    pub fn into_outcome(self) -> ExecutionOutcome {
        ExecutionOutcome::ReplayDivergence {
            step: self.step,
            expected: self.expected,
            actual: self.actual,
        }
    }
}

impl fmt::Display for DivergencePayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay divergence at step {}: expected {}, enabled:",
            self.step, self.expected
        )?;
        for t in &self.actual {
            write!(f, " {t}")?;
        }
        Ok(())
    }
}

/// One scheduling decision within a [`Trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// The thread the scheduler chose to run.
    pub chosen: Tid,
    /// The threads that were enabled at this point (sorted by id).
    pub enabled: Vec<Tid>,
    /// The thread that executed the previous step (`None` at the initial
    /// point).
    pub current: Option<Tid>,
    /// Whether `current` was still enabled at this point. A switch away
    /// from an enabled current thread is a *preemption*.
    pub current_enabled: bool,
    /// Whether the operation the chosen thread is about to execute is
    /// potentially blocking (lock acquire, wait, join, …). This is the
    /// `b` of Theorem 1.
    pub blocking: bool,
    /// The program location / sync-op label of the operation the chosen
    /// thread executed at this step, as resolved by the program host
    /// ([`SiteId::UNKNOWN`] for hosts that do not resolve sites). This
    /// is what the exploration profiler attributes preemptions to.
    pub site: SiteId,
    /// Whether a fault was injected into the operation executed at this
    /// step (the scheduler answered `true` at a fallible operation: a
    /// `try_lock` forced to fail, a spurious condvar wakeup, a bounded
    /// send observing a full channel, a tripped `fail_point`). Fault
    /// decisions are the second bounded axis of nondeterminism next to
    /// preemptions.
    pub fault: bool,
}

impl TraceEntry {
    /// Creates a trace entry with an unresolved ([`SiteId::UNKNOWN`])
    /// site. Hosts that know the executing operation's location attach
    /// it with [`with_site`](TraceEntry::with_site).
    pub fn new(
        chosen: Tid,
        enabled: Vec<Tid>,
        current: Option<Tid>,
        current_enabled: bool,
        blocking: bool,
    ) -> Self {
        TraceEntry {
            chosen,
            enabled,
            current,
            current_enabled,
            blocking,
            site: SiteId::UNKNOWN,
            fault: false,
        }
    }

    /// Attaches the resolved site of the executed operation.
    pub fn with_site(mut self, site: SiteId) -> Self {
        self.site = site;
        self
    }

    /// Marks whether a fault was injected at this step.
    pub fn with_fault(mut self, fault: bool) -> Self {
        self.fault = fault;
        self
    }

    /// Returns `true` if this decision was a context switch (the chosen
    /// thread differs from the previously running one).
    pub fn is_context_switch(&self) -> bool {
        match self.current {
            Some(c) => c != self.chosen,
            None => false,
        }
    }

    /// Returns `true` if this decision was a *preempting* context switch:
    /// the previously running thread was still enabled, yet the scheduler
    /// chose a different thread.
    pub fn is_preemption(&self) -> bool {
        self.current_enabled && self.is_context_switch()
    }
}

/// The sequence of scheduling decisions of one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a decision to the trace.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// The decisions of this trace, in execution order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of steps (scheduling decisions) in this execution — the `K`
    /// column of Table 1.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no step has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of preempting context switches (`NP` in the paper).
    pub fn preemptions(&self) -> usize {
        self.entries.iter().filter(|e| e.is_preemption()).count()
    }

    /// Number of context switches of either kind.
    pub fn context_switches(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.is_context_switch())
            .count()
    }

    /// Number of nonpreempting context switches.
    pub fn nonpreempting_switches(&self) -> usize {
        self.context_switches() - self.preemptions()
    }

    /// Number of potentially blocking steps executed (`B` of Table 1).
    pub fn blocking_steps(&self) -> usize {
        self.entries.iter().filter(|e| e.blocking).count()
    }

    /// Number of injected faults (`f`, the second bounded axis).
    pub fn faults(&self) -> usize {
        self.entries.iter().filter(|e| e.fault).count()
    }

    /// The schedule (sequence of chosen thread ids, plus the steps at
    /// which faults were injected) of this trace, sufficient to replay
    /// the execution deterministically.
    pub fn schedule(&self) -> Schedule {
        let mut schedule = Schedule::from_iter(self.entries.iter().map(|e| e.chosen));
        for (i, e) in self.entries.iter().enumerate() {
            if e.fault {
                schedule.add_fault(i);
            }
        }
        schedule
    }
}

impl From<Vec<TraceEntry>> for Trace {
    fn from(entries: Vec<TraceEntry>) -> Self {
        Trace { entries }
    }
}

impl FromIterator<TraceEntry> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        Trace {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEntry> for Trace {
    fn extend<I: IntoIterator<Item = TraceEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

/// A sequence of thread choices — the compact, replayable form of a trace.
///
/// Because thread scheduling is assumed to be the only source of
/// nondeterminism in the program under test, replaying a schedule from the
/// initial state reproduces the execution exactly (Section 3 of the paper).
///
/// Schedules order lexicographically (by choice sequence, then by fault
/// set), which makes them usable directly as deterministic
/// priority-queue keys. A schedule with no faults orders and renders
/// exactly as it did before faults existed.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Schedule {
    choices: Vec<Tid>,
    /// Sorted step indices at which a fault is injected. Every index is
    /// `< choices.len()`; almost always empty (fault bound 0).
    faults: Vec<usize>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// The choice at step `i`, if the schedule is that long.
    pub fn get(&self, i: usize) -> Option<Tid> {
        self.choices.get(i).copied()
    }

    /// Appends a choice.
    pub fn push(&mut self, tid: Tid) {
        self.choices.push(tid);
    }

    /// Truncates the schedule to `len` choices, dropping fault marks on
    /// the removed steps.
    pub fn truncate(&mut self, len: usize) {
        self.choices.truncate(len);
        self.faults.retain(|&s| s < len);
    }

    /// Marks step `step` as fault-injected (idempotent; keeps the fault
    /// set sorted).
    pub fn add_fault(&mut self, step: usize) {
        if let Err(ix) = self.faults.binary_search(&step) {
            self.faults.insert(ix, step);
        }
    }

    /// Removes the fault mark on `step`, if present.
    pub fn remove_fault(&mut self, step: usize) {
        if let Ok(ix) = self.faults.binary_search(&step) {
            self.faults.remove(ix);
        }
    }

    /// Whether a fault is injected at step `step`.
    pub fn fault_at(&self, step: usize) -> bool {
        self.faults.binary_search(&step).is_ok()
    }

    /// The sorted step indices at which faults are injected.
    pub fn faults(&self) -> &[usize] {
        &self.faults
    }

    /// Number of injected faults.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Replaces the fault set (indices are sorted and deduplicated).
    pub fn set_faults(&mut self, mut faults: Vec<usize>) {
        faults.sort_unstable();
        faults.dedup();
        self.faults = faults;
    }

    /// Number of choices.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Returns `true` if the schedule contains no choices.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// The choices as a slice.
    pub fn as_slice(&self) -> &[Tid] {
        &self.choices
    }

    /// Iterates over the choices.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Tid>> {
        self.choices.iter().copied()
    }
}

impl FromIterator<Tid> for Schedule {
    fn from_iter<I: IntoIterator<Item = Tid>>(iter: I) -> Self {
        Schedule {
            choices: iter.into_iter().collect(),
            faults: Vec::new(),
        }
    }
}

impl Extend<Tid> for Schedule {
    fn extend<I: IntoIterator<Item = Tid>>(&mut self, iter: I) {
        self.choices.extend(iter);
    }
}

impl From<Vec<Tid>> for Schedule {
    fn from(choices: Vec<Tid>) -> Self {
        Schedule {
            choices,
            faults: Vec::new(),
        }
    }
}

impl fmt::Display for Schedule {
    /// Renders `[T0 T1]`; a schedule with injected faults appends one
    /// `!step` token per fault (`[T0 T1 !1]`), so fault-free schedules
    /// render byte-identically to previous releases.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        for (j, s) in self.faults.iter().enumerate() {
            if j > 0 || !self.choices.is_empty() {
                write!(f, " ")?;
            }
            write!(f, "!{s}")?;
        }
        write!(f, "]")
    }
}

/// Error parsing a [`Schedule`] from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseScheduleError {
    token: String,
}

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule token `{}`", self.token)
    }
}

impl std::error::Error for ParseScheduleError {}

impl std::str::FromStr for Schedule {
    type Err = ParseScheduleError;

    /// Parses the [`Display`](fmt::Display) form (`[T0 T1 T1]`, with
    /// optional `!step` fault tokens: `[T0 T1 !1]`) as well as bare
    /// whitespace/comma-separated indices (`0 1 1` / `0,1,1`), so
    /// witnesses can be pasted straight from a report back into a
    /// replay.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim().trim_start_matches('[').trim_end_matches(']');
        let mut choices = Vec::new();
        let mut faults = Vec::new();
        for raw in trimmed.split([' ', ',', '\t', '\n']) {
            let token = raw.trim();
            if token.is_empty() {
                continue;
            }
            if let Some(digits) = token.strip_prefix('!') {
                let step: usize = digits.parse().map_err(|_| ParseScheduleError {
                    token: token.to_string(),
                })?;
                faults.push(step);
                continue;
            }
            let digits = token.strip_prefix('T').unwrap_or(token);
            let ix: usize = digits.parse().map_err(|_| ParseScheduleError {
                token: token.to_string(),
            })?;
            choices.push(Tid(ix));
        }
        let mut schedule = Schedule {
            choices,
            faults: Vec::new(),
        };
        schedule.set_faults(faults);
        Ok(schedule)
    }
}

/// Aggregate statistics of one execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total scheduling points executed (`K`).
    pub steps: usize,
    /// Potentially blocking steps executed (`B`).
    pub blocking_steps: usize,
    /// Preempting context switches (`c`).
    pub preemptions: usize,
    /// Context switches of either kind.
    pub context_switches: usize,
    /// Injected faults (`f`, the second bounded axis; 0 unless the
    /// search runs with a fault bound).
    pub faults: usize,
}

impl ExecStats {
    /// Derives statistics from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        ExecStats {
            steps: trace.len(),
            blocking_steps: trace.blocking_steps(),
            preemptions: trace.preemptions(),
            context_switches: trace.context_switches(),
            faults: trace.faults(),
        }
    }

    /// Pointwise maximum of two statistics, used to aggregate the
    /// `Max K / Max B / Max c` columns of Table 1.
    pub fn max(self, other: ExecStats) -> ExecStats {
        ExecStats {
            steps: self.steps.max(other.steps),
            blocking_steps: self.blocking_steps.max(other.blocking_steps),
            preemptions: self.preemptions.max(other.preemptions),
            context_switches: self.context_switches.max(other.context_switches),
            faults: self.faults.max(other.faults),
        }
    }
}

/// Everything a single controlled execution produces.
#[derive(Clone, Debug)]
pub struct ExecutionResult {
    /// Why the execution ended.
    pub outcome: ExecutionOutcome,
    /// The full decision trace.
    pub trace: Trace,
    /// Aggregate statistics (normally derived from `trace`).
    pub stats: ExecStats,
}

impl ExecutionResult {
    /// Creates a result, deriving the statistics from the trace.
    pub fn from_trace(outcome: ExecutionOutcome, trace: Trace) -> Self {
        let stats = ExecStats::from_trace(&trace);
        ExecutionResult {
            outcome,
            trace,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(chosen: usize, enabled: &[usize], current: Option<usize>, cur_en: bool) -> TraceEntry {
        TraceEntry::new(
            Tid(chosen),
            enabled.iter().copied().map(Tid).collect(),
            current.map(Tid),
            cur_en,
            false,
        )
    }

    #[test]
    fn preemption_counting_matches_appendix_a() {
        // a = T0 T0 T1(T0 enabled: preemption) T0(T1 enabled: preemption)
        let trace: Trace = vec![
            entry(0, &[0, 1], None, false),
            entry(0, &[0, 1], Some(0), true),
            entry(1, &[0, 1], Some(0), true),
            entry(0, &[0, 1], Some(1), true),
        ]
        .into();
        assert_eq!(trace.preemptions(), 2);
        assert_eq!(trace.context_switches(), 2);
        assert_eq!(trace.nonpreempting_switches(), 0);
    }

    #[test]
    fn nonpreempting_switch_is_free() {
        // T0 runs, blocks; switch to T1 is nonpreempting.
        let trace: Trace = vec![
            entry(0, &[0, 1], None, false),
            entry(1, &[1], Some(0), false),
        ]
        .into();
        assert_eq!(trace.preemptions(), 0);
        assert_eq!(trace.context_switches(), 1);
        assert_eq!(trace.nonpreempting_switches(), 1);
    }

    #[test]
    fn initial_choice_is_never_a_switch() {
        let trace: Trace = vec![entry(1, &[0, 1], None, false)].into();
        assert_eq!(trace.preemptions(), 0);
        assert_eq!(trace.context_switches(), 0);
    }

    #[test]
    fn schedule_round_trip() {
        let trace: Trace = vec![
            entry(0, &[0, 1], None, false),
            entry(1, &[0, 1], Some(0), true),
        ]
        .into();
        let sched = trace.schedule();
        assert_eq!(sched.as_slice(), &[Tid(0), Tid(1)]);
        assert_eq!(sched.to_string(), "[T0 T1]");
    }

    #[test]
    fn stats_from_trace() {
        let mut e = entry(0, &[0, 1], None, false);
        e.blocking = true;
        let trace: Trace = vec![e, entry(1, &[0, 1], Some(0), true)].into();
        let stats = ExecStats::from_trace(&trace);
        assert_eq!(stats.steps, 2);
        assert_eq!(stats.blocking_steps, 1);
        assert_eq!(stats.preemptions, 1);
    }

    #[test]
    fn stats_max_is_pointwise() {
        let a = ExecStats {
            steps: 10,
            blocking_steps: 1,
            preemptions: 5,
            context_switches: 6,
            faults: 0,
        };
        let b = ExecStats {
            steps: 3,
            blocking_steps: 4,
            preemptions: 2,
            context_switches: 9,
            faults: 1,
        };
        let m = a.max(b);
        assert_eq!(m.steps, 10);
        assert_eq!(m.blocking_steps, 4);
        assert_eq!(m.preemptions, 5);
        assert_eq!(m.context_switches, 9);
        assert_eq!(m.faults, 1);
    }

    #[test]
    fn schedule_fault_set_round_trips() {
        let mut sched: Schedule = vec![Tid(0), Tid(1), Tid(1)].into();
        sched.add_fault(1);
        assert_eq!(sched.to_string(), "[T0 T1 T1 !1]");
        let parsed: Schedule = sched.to_string().parse().unwrap();
        assert_eq!(parsed, sched);
        assert!(parsed.fault_at(1));
        assert!(!parsed.fault_at(0));
        assert_eq!(parsed.fault_count(), 1);
        // Truncation drops fault marks on removed steps.
        let mut t = sched.clone();
        t.truncate(1);
        assert_eq!(t.fault_count(), 0);
        // Fault-free schedules render exactly as before.
        let plain: Schedule = vec![Tid(0), Tid(1)].into();
        assert_eq!(plain.to_string(), "[T0 T1]");
        // Ordering: the fault-free schedule sorts before its faulted twin.
        let mut faulted = plain.clone();
        faulted.add_fault(0);
        assert!(plain < faulted);
    }

    #[test]
    fn trace_faults_flow_into_schedule_and_stats() {
        let mut e = entry(0, &[0, 1], None, false);
        e.fault = true;
        let trace: Trace = vec![e, entry(1, &[0, 1], Some(0), true)].into();
        assert_eq!(trace.faults(), 1);
        let sched = trace.schedule();
        assert!(sched.fault_at(0));
        assert_eq!(ExecStats::from_trace(&trace).faults, 1);
    }

    #[test]
    fn outcome_bug_classification() {
        assert!(!ExecutionOutcome::Terminated.is_bug());
        assert!(!ExecutionOutcome::StepLimitExceeded.is_bug());
        assert!(ExecutionOutcome::Deadlock { blocked: vec![] }.is_bug());
        assert!(ExecutionOutcome::AssertionFailure {
            thread: Tid(0),
            message: "x".into()
        }
        .is_bug());
        assert!(ExecutionOutcome::DataRace {
            description: "r/w".into()
        }
        .is_bug());
        // Infrastructure outcomes are recoverable, not program bugs.
        assert!(!ExecutionOutcome::ReplayDivergence {
            step: 3,
            expected: Tid(1),
            actual: vec![Tid(0)],
        }
        .is_bug());
        assert!(!ExecutionOutcome::WatchdogTimeout.is_bug());
    }

    #[test]
    fn divergence_payload_round_trips_into_an_outcome() {
        let err = std::panic::catch_unwind(|| {
            DivergencePayload::new(4, Tid(2), vec![Tid(0), Tid(1)]).raise()
        })
        .unwrap_err();
        let payload = err
            .downcast::<DivergencePayload>()
            .expect("payload survives the unwind");
        let outcome = payload.into_outcome();
        assert!(!outcome.is_bug());
        assert!(outcome.to_string().contains("replay divergence at step 4"));
    }

    #[test]
    fn schedule_parses_its_display_form() {
        let sched: Schedule = vec![Tid(0), Tid(2), Tid(2)].into();
        let parsed: Schedule = sched.to_string().parse().unwrap();
        assert_eq!(parsed, sched);
    }

    #[test]
    fn schedule_parses_bare_and_comma_forms() {
        let expected: Schedule = vec![Tid(1), Tid(0), Tid(3)].into();
        assert_eq!("1 0 3".parse::<Schedule>().unwrap(), expected);
        assert_eq!("1,0,3".parse::<Schedule>().unwrap(), expected);
        assert_eq!(" [T1 T0 T3] ".parse::<Schedule>().unwrap(), expected);
        assert_eq!("".parse::<Schedule>().unwrap(), Schedule::new());
    }

    #[test]
    fn schedule_parse_rejects_garbage() {
        let err = "T1 banana".parse::<Schedule>().unwrap_err();
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn outcome_display() {
        let d = ExecutionOutcome::Deadlock {
            blocked: vec![Tid(1), Tid(2)],
        };
        assert_eq!(d.to_string(), "deadlock (blocked: T1 T2)");
    }
}
