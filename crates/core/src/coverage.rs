//! Distinct-state coverage tracking.
//!
//! The paper argues (Section 2.1) that the number of *distinct visited
//! states* is the right coverage notion for a semantics-based checker, and
//! all of its figures plot it. Programs under test report a 64-bit
//! fingerprint of the state reached after every step:
//!
//! * the explicit-state VM hashes the concrete state;
//! * the stateless runtime hashes the happens-before relation of the
//!   execution prefix (Section 4.3 of the paper), so that equivalent
//!   interleavings of independent steps map to the same fingerprint.

use std::collections::HashSet;

/// Receiver of state fingerprints during an execution.
pub trait StateSink {
    /// Records that a state with the given fingerprint was visited.
    fn visit(&mut self, fingerprint: u64);
}

impl<S: StateSink + ?Sized> StateSink for &mut S {
    fn visit(&mut self, fingerprint: u64) {
        (**self).visit(fingerprint)
    }
}

/// A sink that discards fingerprints, for searches that do not measure
/// coverage.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl StateSink for NullSink {
    fn visit(&mut self, _fingerprint: u64) {}
}

/// Accumulates distinct state fingerprints and a coverage growth curve.
///
/// # Examples
///
/// ```
/// use icb_core::{CoverageTracker, StateSink};
/// let mut cov = CoverageTracker::new();
/// cov.visit(1);
/// cov.visit(2);
/// cov.visit(1);
/// assert_eq!(cov.distinct_states(), 2);
/// cov.end_execution();
/// assert_eq!(cov.curve(), &[(1, 2)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CoverageTracker {
    seen: HashSet<u64>,
    executions: usize,
    curve: Vec<(usize, usize)>,
}

impl CoverageTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CoverageTracker::default()
    }

    /// Number of distinct states seen so far.
    pub fn distinct_states(&self) -> usize {
        self.seen.len()
    }

    /// Number of completed executions.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Returns `true` if `fingerprint` has been visited.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.seen.contains(&fingerprint)
    }

    /// Marks the end of one execution, appending a sample
    /// `(executions, distinct_states)` to the growth curve.
    pub fn end_execution(&mut self) {
        self.executions += 1;
        self.curve.push((self.executions, self.seen.len()));
    }

    /// The coverage growth curve: cumulative distinct states after each
    /// execution. This is the raw data behind Figures 2, 5 and 6.
    pub fn curve(&self) -> &[(usize, usize)] {
        &self.curve
    }

    /// Consumes the tracker, returning the growth curve.
    pub fn into_curve(self) -> Vec<(usize, usize)> {
        self.curve
    }

    /// The distinct state fingerprints seen so far, sorted — the
    /// serializable complement of [`restore`](CoverageTracker::restore)
    /// for checkpointing (sorting makes snapshots byte-deterministic).
    pub fn state_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> = self.seen.iter().copied().collect();
        hashes.sort_unstable();
        hashes
    }

    /// Rebuilds a tracker from checkpointed parts: the distinct state
    /// fingerprints, the completed-execution count, and the growth
    /// curve.
    pub fn restore(states: Vec<u64>, executions: usize, curve: Vec<(usize, usize)>) -> Self {
        CoverageTracker {
            seen: states.into_iter().collect(),
            executions,
            curve,
        }
    }
}

impl StateSink for CoverageTracker {
    fn visit(&mut self, fingerprint: u64) {
        self.seen.insert(fingerprint);
    }
}

/// Hashes arbitrary bytes into a state fingerprint (FNV-1a, 64-bit).
///
/// A tiny, dependency-free hash is sufficient here: fingerprints are used
/// only for coverage statistics and state caching of *small* spaces, and
/// every use site tolerates the (astronomically unlikely) collision by
/// undercounting a state.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mixes a 64-bit value into a well-distributed fingerprint
/// (SplitMix64 finalizer).
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_distinct() {
        let mut t = CoverageTracker::new();
        for f in [1u64, 2, 3, 2, 1] {
            t.visit(f);
        }
        assert_eq!(t.distinct_states(), 3);
        assert!(t.contains(2));
        assert!(!t.contains(9));
    }

    #[test]
    fn curve_samples_per_execution() {
        let mut t = CoverageTracker::new();
        t.visit(1);
        t.end_execution();
        t.visit(1);
        t.visit(2);
        t.end_execution();
        assert_eq!(t.curve(), &[(1, 1), (2, 2)]);
        assert_eq!(t.executions(), 2);
    }

    #[test]
    fn fnv_is_stable_and_spread() {
        let a = fingerprint_bytes(b"hello");
        let b = fingerprint_bytes(b"hellp");
        assert_ne!(a, b);
        assert_eq!(a, fingerprint_bytes(b"hello"));
    }

    #[test]
    fn mix64_changes_low_entropy_inputs() {
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn null_sink_ignores() {
        let mut s = NullSink;
        s.visit(42); // must not panic
    }
}
