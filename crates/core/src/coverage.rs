//! Distinct-state coverage tracking.
//!
//! The paper argues (Section 2.1) that the number of *distinct visited
//! states* is the right coverage notion for a semantics-based checker, and
//! all of its figures plot it. Programs under test report a 64-bit
//! fingerprint of the state reached after every step:
//!
//! * the explicit-state VM hashes the concrete state;
//! * the stateless runtime hashes the happens-before relation of the
//!   execution prefix (Section 4.3 of the paper), so that equivalent
//!   interleavings of independent steps map to the same fingerprint.

use std::collections::HashSet;

// The hash primitives historically lived here; they are now shared from
// [`crate::hash`] (the cache segment format and the race-fingerprint
// layer use the same functions), re-exported for compatibility.
pub use crate::hash::{fingerprint_bytes, mix64};

/// Receiver of state fingerprints during an execution.
pub trait StateSink {
    /// Records that a state with the given fingerprint was visited.
    fn visit(&mut self, fingerprint: u64);
}

impl<S: StateSink + ?Sized> StateSink for &mut S {
    fn visit(&mut self, fingerprint: u64) {
        (**self).visit(fingerprint)
    }
}

/// A sink that discards fingerprints, for searches that do not measure
/// coverage.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl StateSink for NullSink {
    fn visit(&mut self, _fingerprint: u64) {}
}

/// Accumulates distinct state fingerprints and a coverage growth curve.
///
/// # Examples
///
/// ```
/// use icb_core::{CoverageTracker, StateSink};
/// let mut cov = CoverageTracker::new();
/// cov.visit(1);
/// cov.visit(2);
/// cov.visit(1);
/// assert_eq!(cov.distinct_states(), 2);
/// cov.end_execution();
/// assert_eq!(cov.curve(), &[(1, 2)]);
/// ```
#[derive(Clone, Debug)]
pub struct CoverageTracker {
    seen: HashSet<u64>,
    executions: usize,
    curve: Vec<(usize, usize)>,
    stride: usize,
}

impl Default for CoverageTracker {
    fn default() -> Self {
        CoverageTracker {
            seen: HashSet::new(),
            executions: 0,
            curve: Vec::new(),
            stride: 1,
        }
    }
}

impl CoverageTracker {
    /// Creates an empty tracker sampling the growth curve at every
    /// execution.
    pub fn new() -> Self {
        CoverageTracker::default()
    }

    /// Sets the growth-curve sampling stride: one curve point per
    /// `stride` executions instead of one per execution, so
    /// million-execution runs don't hold a point per execution. The
    /// final execution is always sampled (by
    /// [`into_curve`](CoverageTracker::into_curve)), so the curve's end
    /// point matches the run totals at any stride. A stride of 0 is
    /// treated as 1 (the legacy point-per-execution behavior).
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Number of distinct states seen so far.
    pub fn distinct_states(&self) -> usize {
        self.seen.len()
    }

    /// Number of completed executions.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Returns `true` if `fingerprint` has been visited.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.seen.contains(&fingerprint)
    }

    /// Marks the end of one execution, appending a sample
    /// `(executions, distinct_states)` to the growth curve (subject to
    /// the sampling stride).
    pub fn end_execution(&mut self) {
        self.executions += 1;
        if self.executions.is_multiple_of(self.stride) {
            self.curve.push((self.executions, self.seen.len()));
        }
    }

    /// The coverage growth curve: cumulative distinct states after each
    /// execution. This is the raw data behind Figures 2, 5 and 6.
    pub fn curve(&self) -> &[(usize, usize)] {
        &self.curve
    }

    /// Consumes the tracker, returning the growth curve. When the
    /// sampling stride skipped the final execution, a closing point is
    /// appended so the curve always ends at the run's true totals.
    pub fn into_curve(mut self) -> Vec<(usize, usize)> {
        if self.executions > 0 && self.curve.last().map(|&(e, _)| e) != Some(self.executions) {
            self.curve.push((self.executions, self.seen.len()));
        }
        self.curve
    }

    /// The distinct state fingerprints seen so far, sorted — the
    /// serializable complement of [`restore`](CoverageTracker::restore)
    /// for checkpointing (sorting makes snapshots byte-deterministic).
    pub fn state_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> = self.seen.iter().copied().collect();
        hashes.sort_unstable();
        hashes
    }

    /// Rebuilds a tracker from checkpointed parts: the distinct state
    /// fingerprints, the completed-execution count, and the growth
    /// curve.
    pub fn restore(states: Vec<u64>, executions: usize, curve: Vec<(usize, usize)>) -> Self {
        CoverageTracker {
            seen: states.into_iter().collect(),
            executions,
            curve,
            stride: 1,
        }
    }
}

impl StateSink for CoverageTracker {
    fn visit(&mut self, fingerprint: u64) {
        self.seen.insert(fingerprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_distinct() {
        let mut t = CoverageTracker::new();
        for f in [1u64, 2, 3, 2, 1] {
            t.visit(f);
        }
        assert_eq!(t.distinct_states(), 3);
        assert!(t.contains(2));
        assert!(!t.contains(9));
    }

    #[test]
    fn curve_samples_per_execution() {
        let mut t = CoverageTracker::new();
        t.visit(1);
        t.end_execution();
        t.visit(1);
        t.visit(2);
        t.end_execution();
        assert_eq!(t.curve(), &[(1, 1), (2, 2)]);
        assert_eq!(t.executions(), 2);
    }

    #[test]
    fn reexported_hashes_are_the_shared_ones() {
        // The historical home of the hash functions must keep exposing
        // the canonical `crate::hash` implementations.
        assert_eq!(
            fingerprint_bytes(b"x"),
            crate::hash::fingerprint_bytes(b"x")
        );
        assert_eq!(mix64(7), crate::hash::mix64(7));
    }

    #[test]
    fn stride_thins_the_curve_but_keeps_the_end_point() {
        let mut t = CoverageTracker::new().with_stride(3);
        for f in 0..7u64 {
            t.visit(f);
            t.end_execution();
        }
        // Only every third execution is sampled...
        assert_eq!(t.curve(), &[(3, 3), (6, 6)]);
        // ...but the consumed curve is closed at the true totals.
        assert_eq!(t.into_curve().last(), Some(&(7, 7)));
    }

    #[test]
    fn default_stride_preserves_point_per_execution() {
        let mut t = CoverageTracker::new();
        t.visit(1);
        t.end_execution();
        t.visit(2);
        t.end_execution();
        assert_eq!(t.clone().into_curve(), vec![(1, 1), (2, 2)]);
        assert_eq!(t.curve(), &[(1, 1), (2, 2)]);
    }

    #[test]
    fn null_sink_ignores() {
        let mut s = NullSink;
        s.visit(42); // must not panic
    }
}
