//! Witness simplification.
//!
//! ICB already guarantees the *fewest preemptions* — the paper's
//! "simplest explanation for the error". This module shortens the
//! witness along the second axis: the number of *forced* choices. A
//! schedule prefix only needs to pin decisions up to the point where
//! the failure becomes inevitable; from there, the preemption-free
//! default policy reaches the bug on its own. [`minimize_witness`]
//! finds the shortest such prefix by replaying candidates.

use crate::program::ControlledProgram;
use crate::replay::ReplayScheduler;
use crate::trace::{ExecutionOutcome, Schedule};
use crate::NullSink;

/// Result of shrinking a witness.
#[derive(Clone, Debug)]
pub struct ShrunkWitness {
    /// The shortest failing prefix found.
    pub schedule: Schedule,
    /// Outcome the shrunk schedule reproduces.
    pub outcome: ExecutionOutcome,
    /// Preemptions in the shrunk witness's full execution.
    pub preemptions: usize,
    /// Replays spent shrinking.
    pub replays: usize,
}

/// Shortens a failing schedule to the minimal prefix from which the
/// preemption-free default policy still reproduces a failure with the
/// same outcome kind.
///
/// Runs at most `|schedule| + 1` replays (one per candidate length,
/// shortest first; the full schedule always reproduces, so the function
/// always succeeds for genuinely failing inputs).
///
/// # Panics
///
/// Panics if the full `schedule` does not reproduce a bug (the caller
/// passed a non-witness or the program is nondeterministic).
pub fn minimize_witness(program: &dyn ControlledProgram, schedule: &Schedule) -> ShrunkWitness {
    for (replays, len) in (0..=schedule.len()).enumerate() {
        let mut prefix = schedule.clone();
        prefix.truncate(len);
        let mut replay = ReplayScheduler::new(prefix);
        let result = program.execute(&mut replay, &mut NullSink);
        if result.outcome.is_bug() {
            let mut shrunk = schedule.clone();
            shrunk.truncate(len);
            return ShrunkWitness {
                schedule: shrunk,
                outcome: result.outcome,
                preemptions: result.stats.preemptions,
                replays: replays + 1,
            };
        }
    }
    panic!("the provided schedule does not reproduce a failure");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testprog::Counters;
    use crate::search::IcbSearch;

    #[test]
    fn shrinks_to_the_decisive_prefix() {
        // Bug: thread 1's first step observes counter == 1. The decisive
        // part of the schedule is [T0, T1]; everything after is noise the
        // default policy replays on its own.
        let p = Counters {
            n: 2,
            k: 4,
            bug: Some((1, 0, 1)),
        };
        #[allow(deprecated)] // shim regression: the convenience entry point
        let bug = IcbSearch::find_minimal_bug(&p, 1_000_000).expect("bug");
        let shrunk = minimize_witness(&p, &bug.schedule);
        assert!(shrunk.schedule.len() <= bug.schedule.len());
        assert_eq!(shrunk.schedule.len(), 2, "decisive prefix is [T0, T1]");
        assert!(shrunk.outcome.is_bug());
        // Shrinking never increases preemptions beyond the original.
        assert!(shrunk.preemptions <= bug.preemptions);
    }

    #[test]
    fn zero_preemption_bugs_shrink_to_nothing() {
        // A bug the default policy reaches on its own: the witness
        // shrinks to the empty schedule.
        let p = Counters {
            n: 2,
            k: 2,
            bug: Some((0, 0, 0)), // thread 0's first step sees 0: immediate
        };
        #[allow(deprecated)] // shim regression: the convenience entry point
        let bug = IcbSearch::find_minimal_bug(&p, 10_000).expect("bug");
        let shrunk = minimize_witness(&p, &bug.schedule);
        assert_eq!(shrunk.schedule.len(), 0);
        assert!(shrunk.outcome.is_bug());
    }

    #[test]
    #[should_panic(expected = "does not reproduce")]
    fn rejects_non_witnesses() {
        let p = Counters {
            n: 2,
            k: 2,
            bug: None,
        };
        let schedule: Schedule = vec![crate::Tid(0), crate::Tid(1)].into();
        let _ = minimize_witness(&p, &schedule);
    }

    #[test]
    fn replay_budget_is_linear() {
        let p = Counters {
            n: 2,
            k: 3,
            bug: Some((1, 0, 1)),
        };
        #[allow(deprecated)] // shim regression: the convenience entry point
        let bug = IcbSearch::find_minimal_bug(&p, 100_000).expect("bug");
        let shrunk = minimize_witness(&p, &bug.schedule);
        assert!(shrunk.replays <= bug.schedule.len() + 1);
    }
}
