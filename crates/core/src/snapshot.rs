//! Crash-resilient search state: serializable checkpoints and resume.
//!
//! The paper's Algorithm 1 is a resumable work queue by construction — a
//! work item is just a schedule prefix, and replay determinism means
//! re-running a lost partial work item reproduces it exactly. This
//! module makes that property durable: [`SearchSnapshot`] captures the
//! complete state of an interrupted search (remaining work queues,
//! branch stacks, RNG state, coverage summary and cumulative report
//! counters) in a versioned, checksummed on-disk format. Snapshots are
//! written atomically (temp file + rename), so a `SIGKILL` mid-write
//! leaves the previous checkpoint intact, and a resumed run produces a
//! final report identical to an uninterrupted one.
//!
//! The format is a hand-rolled little-endian binary codec (the workspace
//! builds hermetically, with no serialization crates): an 8-byte magic,
//! a format version, the payload length, an FNV-1a checksum of the
//! payload, then the payload. Corrupted or truncated files are rejected
//! with a structured [`SnapshotError`], never a panic.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::coverage::fingerprint_bytes;
use crate::search::{BoundStats, BugReport, QuarantinedTrace, SearchConfig};
use crate::tid::Tid;
use crate::trace::{ExecStats, ExecutionOutcome, Schedule};

/// Magic bytes opening every snapshot file.
const MAGIC: &[u8; 8] = b"ICBSNAPv";
/// Current format version. Bump on any layout change.
/// v2: `SearchConfig` gained `coverage_stride`.
/// v3: fault bounding — `SearchConfig` gained `fault_bound`, schedules
/// carry fault sets, `ExecStats`/`BugReport`/`BoundStats` gained fault
/// counters, and `IcbState` replaced the single `next` queue with the
/// per-`(preemption, fault)`-level deferred map.
const VERSION: u32 = 3;
/// Fixed header size: magic + version + payload length + checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a snapshot could not be written or read back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// The file does not start with the snapshot magic bytes.
    BadMagic,
    /// The file uses a format version this build does not understand.
    UnsupportedVersion(u32),
    /// The file ends before the declared payload does.
    Truncated,
    /// The payload checksum does not match its contents.
    ChecksumMismatch,
    /// The payload decodes to structurally invalid data.
    Corrupt(String),
    /// The snapshot belongs to a different strategy than the caller.
    WrongStrategy {
        /// The strategy the caller tried to resume.
        expected: String,
        /// The strategy recorded in the snapshot.
        found: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            SnapshotError::BadMagic => {
                write!(f, "not a checkpoint file (bad magic)")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            SnapshotError::Truncated => {
                write!(f, "checkpoint file is truncated")
            }
            SnapshotError::ChecksumMismatch => {
                write!(f, "checkpoint file is corrupted (checksum mismatch)")
            }
            SnapshotError::Corrupt(what) => {
                write!(f, "checkpoint file is corrupted ({what})")
            }
            SnapshotError::WrongStrategy { expected, found } => {
                write!(
                    f,
                    "checkpoint was written by strategy '{found}', not '{expected}'"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The strategy-independent half of a checkpoint: cumulative counters,
/// findings and the coverage summary of everything explored so far.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResumeBase {
    /// Executions completed.
    pub executions: usize,
    /// Executions that ended in a bug.
    pub buggy_executions: usize,
    /// Bug reports recorded so far (capped by `max_bug_reports`).
    pub bugs: Vec<BugReport>,
    /// Pointwise maxima of the per-execution statistics.
    pub max_stats: ExecStats,
    /// Quarantined (replay-diverged) prefixes recorded so far.
    pub quarantined: Vec<QuarantinedTrace>,
    /// Total quarantined subtrees (including beyond the stored cap).
    pub quarantined_total: usize,
    /// Executions abandoned by the per-execution watchdog.
    pub watchdog_trips: usize,
    /// Whether work was already dropped (queue cap) before the
    /// checkpoint.
    pub truncated: bool,
    /// The distinct state fingerprints seen, sorted.
    pub coverage_states: Vec<u64>,
    /// Completed executions as counted by the coverage tracker.
    pub coverage_executions: usize,
    /// The coverage growth curve samples.
    pub coverage_curve: Vec<(usize, usize)>,
}

/// One suspended branch point of a nested DFS, serialized.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchSnapshot {
    /// Step index of the scheduling point (0 for strategies that do not
    /// record it).
    pub step: usize,
    /// The enabled threads at that point.
    pub options: Vec<Tid>,
    /// Index of the option to take on the next run.
    pub next_ix: usize,
}

/// ICB-specific checkpoint state: the current level's work queue, the
/// deferred levels, per-level baselines and the optionally suspended
/// (mid-item) nested DFS.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IcbState {
    /// The preemption bound being explored.
    pub bound: usize,
    /// The fault level being explored (0 at fault bound 0).
    pub fault: usize,
    /// `executions` counter value when this level started (for the
    /// per-level statistics row).
    pub bound_executions_base: usize,
    /// `buggy_executions` counter value when this level started.
    pub bound_bugs_base: usize,
    /// Highest bound fully explored before the checkpoint.
    pub completed_bound: Option<usize>,
    /// Remaining work items (schedule prefixes) of the current level.
    pub work: Vec<Schedule>,
    /// Work items already deferred to future `(preemption, fault)`
    /// levels, as `(bound, fault, items)` rows sorted by level. At
    /// fault bound 0 this holds at most the `(bound + 1, 0)` row — the
    /// legacy `next` queue.
    pub deferred: Vec<(usize, usize, Vec<Schedule>)>,
    /// Per-level statistics of the levels completed so far.
    pub bound_history: Vec<BoundStats>,
    /// A work item interrupted mid-exploration: its prefix and the
    /// branch stack positioned for the next run of its nested DFS.
    pub in_progress: Option<(Schedule, Vec<BranchSnapshot>)>,
}

/// DFS-specific checkpoint state: the branch stack positioned for the
/// next run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DfsState {
    /// The depth bound (`db:N`), if any.
    pub depth_bound: Option<usize>,
    /// The suspended branch stack.
    pub stack: Vec<BranchSnapshot>,
}

/// Random-walk checkpoint state: the generator mid-stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RandomState {
    /// The raw SplitMix64 state (not the seed: the stream continues).
    pub rng_state: u64,
}

/// Parallel DFS checkpoint state: the union of all shard frontiers at a
/// quiesce point. Each frontier entry is a schedule prefix whose subtree
/// is entirely unexplored, so the snapshot is resumable at any worker
/// count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParallelDfsState {
    /// The depth bound (`db:N`), if any.
    pub depth_bound: Option<usize>,
    /// Unexplored schedule prefixes (sorted lexicographically so the
    /// snapshot bytes are independent of worker scheduling).
    pub frontier: Vec<Schedule>,
    /// At most one partially explored item inherited from a *sequential*
    /// checkpoint that no worker had picked up yet: its prefix and
    /// suspended branch stack.
    pub pending: Option<(Schedule, Vec<BranchSnapshot>)>,
}

/// Parallel random-walk checkpoint state. Parallel walks derive one
/// independent stream per execution index from `seed`, so the only
/// cursor is the next unclaimed index — resumable at any worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelRandomState {
    /// The base seed the per-index streams are derived from.
    pub seed: u64,
    /// The next unclaimed execution index (0-based).
    pub next_index: u64,
}

/// The strategy-specific half of a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub enum StrategyState {
    /// An ICB checkpoint (sequential and parallel runs share this
    /// layout: a parallel quiesce dissolves in-flight items back into
    /// plain work-queue prefixes, so either driver can resume it).
    Icb(IcbState),
    /// A sequential DFS checkpoint.
    Dfs(DfsState),
    /// A sequential random-walk checkpoint.
    Random(RandomState),
    /// A parallel DFS checkpoint.
    ParallelDfs(ParallelDfsState),
    /// A parallel random-walk checkpoint.
    ParallelRandom(ParallelRandomState),
}

/// A complete, serializable snapshot of an in-flight search.
///
/// Snapshots are taken at execution boundaries, where replay determinism
/// guarantees that resuming reproduces the uninterrupted run exactly:
/// same executions, same distinct states, same bugs, same final report.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchSnapshot {
    /// The strategy label (`icb`, `dfs`, `db:N`, `random`).
    pub strategy: String,
    /// Caller-owned key/value metadata (the CLI stores the benchmark,
    /// bug and flags here so `resume` can rebuild the program).
    pub meta: Vec<(String, String)>,
    /// The search configuration the run was started with.
    pub config: SearchConfig,
    /// Cumulative counters, findings and coverage.
    pub base: ResumeBase,
    /// Strategy-specific queue/stack state.
    pub state: StrategyState,
}

impl SearchSnapshot {
    /// Looks up a metadata value by key.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the snapshot and writes it to `path` atomically: the
    /// bytes go to a sibling temp file which is fsynced and renamed over
    /// `path`, so a crash mid-write never destroys the previous
    /// checkpoint.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let payload = self.encode();
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fingerprint_bytes(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let mut tmp_os = path.as_os_str().to_owned();
        tmp_os.push(".tmp");
        let tmp = PathBuf::from(tmp_os);
        let io = |e: std::io::Error| SnapshotError::Io(e.to_string());
        let mut file = fs::File::create(&tmp).map_err(io)?;
        file.write_all(&bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
        drop(file);
        fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and validates a snapshot from `path`.
    pub fn read_from(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    /// Decodes a snapshot from its on-disk byte representation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != payload_len {
            return Err(SnapshotError::Truncated);
        }
        if fingerprint_bytes(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let snap = Self::decode(&mut r)?;
        if r.pos != payload.len() {
            return Err(SnapshotError::Corrupt("trailing bytes".into()));
        }
        Ok(snap)
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.str(&self.strategy);
        w.len(self.meta.len());
        for (k, v) in &self.meta {
            w.str(k);
            w.str(v);
        }
        encode_config(&mut w, &self.config);
        encode_base(&mut w, &self.base);
        match &self.state {
            StrategyState::Icb(s) => {
                w.u8(0);
                w.usize(s.bound);
                w.usize(s.fault);
                w.usize(s.bound_executions_base);
                w.usize(s.bound_bugs_base);
                w.opt_usize(s.completed_bound);
                w.schedules(&s.work);
                w.len(s.deferred.len());
                for (c, f, items) in &s.deferred {
                    w.usize(*c);
                    w.usize(*f);
                    w.schedules(items);
                }
                w.len(s.bound_history.len());
                for b in &s.bound_history {
                    w.usize(b.bound);
                    w.usize(b.faults);
                    w.usize(b.executions);
                    w.usize(b.cumulative_states);
                    w.usize(b.bugs_found);
                }
                match &s.in_progress {
                    None => w.bool(false),
                    Some((prefix, stack)) => {
                        w.bool(true);
                        w.schedule(prefix);
                        w.branches(stack);
                    }
                }
            }
            StrategyState::Dfs(s) => {
                w.u8(1);
                w.opt_usize(s.depth_bound);
                w.branches(&s.stack);
            }
            StrategyState::Random(s) => {
                w.u8(2);
                w.u64(s.rng_state);
            }
            StrategyState::ParallelDfs(s) => {
                w.u8(3);
                w.opt_usize(s.depth_bound);
                w.schedules(&s.frontier);
                match &s.pending {
                    None => w.bool(false),
                    Some((prefix, stack)) => {
                        w.bool(true);
                        w.schedule(prefix);
                        w.branches(stack);
                    }
                }
            }
            StrategyState::ParallelRandom(s) => {
                w.u8(4);
                w.u64(s.seed);
                w.u64(s.next_index);
            }
        }
        w.buf
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let strategy = r.str()?;
        let n_meta = r.len()?;
        let mut meta = Vec::with_capacity(n_meta.min(1024));
        for _ in 0..n_meta {
            meta.push((r.str()?, r.str()?));
        }
        let config = decode_config(r)?;
        let base = decode_base(r)?;
        let state = match r.u8()? {
            0 => {
                let bound = r.usize()?;
                let fault = r.usize()?;
                let bound_executions_base = r.usize()?;
                let bound_bugs_base = r.usize()?;
                let completed_bound = r.opt_usize()?;
                let work = r.schedules()?;
                let n_levels = r.len()?;
                let mut deferred = Vec::with_capacity(n_levels.min(1024));
                for _ in 0..n_levels {
                    deferred.push((r.usize()?, r.usize()?, r.schedules()?));
                }
                let n = r.len()?;
                let mut bound_history = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    bound_history.push(BoundStats {
                        bound: r.usize()?,
                        faults: r.usize()?,
                        executions: r.usize()?,
                        cumulative_states: r.usize()?,
                        bugs_found: r.usize()?,
                    });
                }
                let in_progress = if r.bool()? {
                    Some((r.schedule()?, r.branches()?))
                } else {
                    None
                };
                StrategyState::Icb(IcbState {
                    bound,
                    fault,
                    bound_executions_base,
                    bound_bugs_base,
                    completed_bound,
                    work,
                    deferred,
                    bound_history,
                    in_progress,
                })
            }
            1 => StrategyState::Dfs(DfsState {
                depth_bound: r.opt_usize()?,
                stack: r.branches()?,
            }),
            2 => StrategyState::Random(RandomState {
                rng_state: r.u64()?,
            }),
            3 => {
                let depth_bound = r.opt_usize()?;
                let frontier = r.schedules()?;
                let pending = if r.bool()? {
                    Some((r.schedule()?, r.branches()?))
                } else {
                    None
                };
                StrategyState::ParallelDfs(ParallelDfsState {
                    depth_bound,
                    frontier,
                    pending,
                })
            }
            4 => StrategyState::ParallelRandom(ParallelRandomState {
                seed: r.u64()?,
                next_index: r.u64()?,
            }),
            tag => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown strategy state tag {tag}"
                )))
            }
        };
        Ok(SearchSnapshot {
            strategy,
            meta,
            config,
            base,
            state,
        })
    }
}

fn encode_config(w: &mut Writer, c: &SearchConfig) {
    w.opt_usize(c.max_executions);
    w.opt_usize(c.preemption_bound);
    w.usize(c.fault_bound);
    w.bool(c.stop_on_first_bug);
    w.usize(c.max_bug_reports);
    w.opt_usize(c.max_work_queue);
    match c.max_duration {
        None => w.bool(false),
        Some(d) => {
            w.bool(true);
            w.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }
    w.usize(c.coverage_stride);
}

fn decode_config(r: &mut Reader<'_>) -> Result<SearchConfig, SnapshotError> {
    Ok(SearchConfig {
        max_executions: r.opt_usize()?,
        preemption_bound: r.opt_usize()?,
        fault_bound: r.usize()?,
        stop_on_first_bug: r.bool()?,
        max_bug_reports: r.usize()?,
        max_work_queue: r.opt_usize()?,
        max_duration: if r.bool()? {
            Some(std::time::Duration::from_nanos(r.u64()?))
        } else {
            None
        },
        coverage_stride: r.usize()?,
    })
}

fn encode_base(w: &mut Writer, b: &ResumeBase) {
    w.usize(b.executions);
    w.usize(b.buggy_executions);
    w.len(b.bugs.len());
    for bug in &b.bugs {
        encode_outcome(w, &bug.outcome);
        w.schedule(&bug.schedule);
        w.usize(bug.preemptions);
        w.usize(bug.faults);
        w.usize(bug.execution_index);
        w.usize(bug.steps);
    }
    encode_stats(w, &b.max_stats);
    w.len(b.quarantined.len());
    for q in &b.quarantined {
        w.schedule(&q.schedule);
        w.usize(q.step);
        w.tid(q.expected);
        w.tids(&q.actual);
    }
    w.usize(b.quarantined_total);
    w.usize(b.watchdog_trips);
    w.bool(b.truncated);
    w.len(b.coverage_states.len());
    for &s in &b.coverage_states {
        w.u64(s);
    }
    w.usize(b.coverage_executions);
    w.len(b.coverage_curve.len());
    for &(x, y) in &b.coverage_curve {
        w.usize(x);
        w.usize(y);
    }
}

fn decode_base(r: &mut Reader<'_>) -> Result<ResumeBase, SnapshotError> {
    let executions = r.usize()?;
    let buggy_executions = r.usize()?;
    let n_bugs = r.len()?;
    let mut bugs = Vec::with_capacity(n_bugs.min(1024));
    for _ in 0..n_bugs {
        bugs.push(BugReport {
            outcome: decode_outcome(r)?,
            schedule: r.schedule()?,
            preemptions: r.usize()?,
            faults: r.usize()?,
            execution_index: r.usize()?,
            steps: r.usize()?,
        });
    }
    let max_stats = decode_stats(r)?;
    let n_q = r.len()?;
    let mut quarantined = Vec::with_capacity(n_q.min(1024));
    for _ in 0..n_q {
        quarantined.push(QuarantinedTrace {
            schedule: r.schedule()?,
            step: r.usize()?,
            expected: r.tid()?,
            actual: r.tids()?,
        });
    }
    let quarantined_total = r.usize()?;
    let watchdog_trips = r.usize()?;
    let truncated = r.bool()?;
    let n_states = r.len()?;
    let mut coverage_states = Vec::with_capacity(n_states.min(1 << 20));
    for _ in 0..n_states {
        coverage_states.push(r.u64()?);
    }
    let coverage_executions = r.usize()?;
    let n_curve = r.len()?;
    let mut coverage_curve = Vec::with_capacity(n_curve.min(1 << 20));
    for _ in 0..n_curve {
        coverage_curve.push((r.usize()?, r.usize()?));
    }
    Ok(ResumeBase {
        executions,
        buggy_executions,
        bugs,
        max_stats,
        quarantined,
        quarantined_total,
        watchdog_trips,
        truncated,
        coverage_states,
        coverage_executions,
        coverage_curve,
    })
}

fn encode_stats(w: &mut Writer, s: &ExecStats) {
    w.usize(s.steps);
    w.usize(s.blocking_steps);
    w.usize(s.preemptions);
    w.usize(s.context_switches);
    w.usize(s.faults);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<ExecStats, SnapshotError> {
    Ok(ExecStats {
        steps: r.usize()?,
        blocking_steps: r.usize()?,
        preemptions: r.usize()?,
        context_switches: r.usize()?,
        faults: r.usize()?,
    })
}

fn encode_outcome(w: &mut Writer, o: &ExecutionOutcome) {
    match o {
        ExecutionOutcome::Terminated => w.u8(0),
        ExecutionOutcome::AssertionFailure { thread, message } => {
            w.u8(1);
            w.tid(*thread);
            w.str(message);
        }
        ExecutionOutcome::Deadlock { blocked } => {
            w.u8(2);
            w.tids(blocked);
        }
        ExecutionOutcome::DataRace { description } => {
            w.u8(3);
            w.str(description);
        }
        ExecutionOutcome::StepLimitExceeded => w.u8(4),
        ExecutionOutcome::ReplayDivergence {
            step,
            expected,
            actual,
        } => {
            w.u8(5);
            w.usize(*step);
            w.tid(*expected);
            w.tids(actual);
        }
        ExecutionOutcome::WatchdogTimeout => w.u8(6),
    }
}

fn decode_outcome(r: &mut Reader<'_>) -> Result<ExecutionOutcome, SnapshotError> {
    Ok(match r.u8()? {
        0 => ExecutionOutcome::Terminated,
        1 => ExecutionOutcome::AssertionFailure {
            thread: r.tid()?,
            message: r.str()?,
        },
        2 => ExecutionOutcome::Deadlock { blocked: r.tids()? },
        3 => ExecutionOutcome::DataRace {
            description: r.str()?,
        },
        4 => ExecutionOutcome::StepLimitExceeded,
        5 => ExecutionOutcome::ReplayDivergence {
            step: r.usize()?,
            expected: r.tid()?,
            actual: r.tids()?,
        },
        6 => ExecutionOutcome::WatchdogTimeout,
        tag => return Err(SnapshotError::Corrupt(format!("unknown outcome tag {tag}"))),
    })
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn len(&mut self, v: usize) {
        self.usize(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.bool(false),
            Some(x) => {
                self.bool(true);
                self.usize(x);
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn tid(&mut self, t: Tid) {
        self.usize(t.0);
    }
    fn tids(&mut self, ts: &[Tid]) {
        self.len(ts.len());
        for &t in ts {
            self.tid(t);
        }
    }
    fn schedule(&mut self, s: &Schedule) {
        self.tids(s.as_slice());
        let faults = s.faults();
        self.len(faults.len());
        for &step in faults {
            self.usize(step);
        }
    }
    fn schedules(&mut self, ss: &[Schedule]) {
        self.len(ss.len());
        for s in ss {
            self.schedule(s);
        }
    }
    fn branches(&mut self, bs: &[BranchSnapshot]) {
        self.len(bs.len());
        for b in bs {
            self.usize(b.step);
            self.tids(&b.options);
            self.usize(b.next_ix);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt("value exceeds usize".into()))
    }
    fn len(&mut self) -> Result<usize, SnapshotError> {
        self.usize()
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }
    fn opt_usize(&mut self) -> Result<Option<usize>, SnapshotError> {
        if self.bool()? {
            Ok(Some(self.usize()?))
        } else {
            Ok(None)
        }
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid UTF-8 string".into()))
    }
    fn tid(&mut self) -> Result<Tid, SnapshotError> {
        Ok(Tid(self.usize()?))
    }
    fn tids(&mut self) -> Result<Vec<Tid>, SnapshotError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(self.tid()?);
        }
        Ok(out)
    }
    fn schedule(&mut self) -> Result<Schedule, SnapshotError> {
        let mut s = Schedule::from(self.tids()?);
        let n = self.len()?;
        let mut faults = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            faults.push(self.usize()?);
        }
        s.set_faults(faults);
        Ok(s)
    }
    fn schedules(&mut self) -> Result<Vec<Schedule>, SnapshotError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(self.schedule()?);
        }
        Ok(out)
    }
    fn branches(&mut self) -> Result<Vec<BranchSnapshot>, SnapshotError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(BranchSnapshot {
                step: self.usize()?,
                options: self.tids()?,
                next_ix: self.usize()?,
            });
        }
        Ok(out)
    }
}

/// Writes periodic checkpoints of a search to one path.
///
/// A checkpointer is handed to `run_checkpointed` / `resume` on the
/// strategies; they consult [`due`](Checkpointer::due) at execution
/// boundaries and [`write`](Checkpointer::write) atomically. On clean
/// completion the strategy calls [`finish`](Checkpointer::finish) to
/// remove the file — a completed search has nothing to resume.
#[derive(Debug)]
pub struct Checkpointer {
    path: PathBuf,
    every: usize,
    last_at: usize,
    meta: Vec<(String, String)>,
}

impl Checkpointer {
    /// Creates a checkpointer writing to `path` every `every` executions.
    ///
    /// The raw interval is kept so [`Search`](crate::search::Search) can
    /// reject `every == 0` at build time with a typed error; the
    /// deprecated per-strategy entry points clamp it to 1 at use, as
    /// previous releases did.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        Checkpointer {
            path: path.into(),
            every,
            last_at: 0,
            meta: Vec::new(),
        }
    }

    /// The configured checkpoint interval, as passed to
    /// [`new`](Checkpointer::new) (0 is representable but rejected by
    /// the `Search` builder).
    pub fn every(&self) -> usize {
        self.every
    }

    /// Attaches caller-owned metadata recorded in every snapshot (the
    /// CLI stores the benchmark name, bug and flags so `resume` can
    /// rebuild the program).
    pub fn with_meta(mut self, meta: Vec<(String, String)>) -> Self {
        self.meta = meta;
        self
    }

    /// The path checkpoints are written to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The metadata attached to every snapshot.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Marks `executions` as already durable (call when resuming so the
    /// next write is `every` executions after the snapshot, not after
    /// zero).
    pub fn mark_written(&mut self, executions: usize) {
        self.last_at = executions;
    }

    /// Whether a checkpoint is due at cumulative execution count
    /// `executions`.
    pub fn due(&self, executions: usize) -> bool {
        executions.saturating_sub(self.last_at) >= self.every.max(1)
    }

    /// Writes `snapshot` atomically to the checkpoint path, retrying
    /// transient I/O failures with bounded jittered backoff (see
    /// [`crate::retry`]). After the attempts are exhausted the error is
    /// returned; callers degrade to a logged warning and keep searching.
    pub fn write(&mut self, snapshot: &SearchSnapshot) -> Result<(), SnapshotError> {
        crate::retry::with_backoff("checkpoint write", || snapshot.write_to(&self.path))?;
        self.last_at = snapshot.base.executions;
        Ok(())
    }

    /// Removes the checkpoint file after a clean completion (a finished
    /// search has nothing to resume). Missing files are fine.
    pub fn finish(&self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Cooperative interrupt (Ctrl-C / SIGTERM) support for checkpointing
/// searches.
///
/// The handler only sets an atomic flag; checkpointing strategies poll
/// [`interrupted`] at execution boundaries, write a final snapshot and
/// halt with [`AbortReason::Interrupted`](crate::AbortReason). The
/// workspace links no signal-handling crate, so the handler is installed
/// through the C `signal` function that libc already provides to every
/// Rust binary.
pub mod interrupt {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    #[cfg(unix)]
    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work is allowed here.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGINT/SIGTERM handler (idempotent). On platforms
    /// without POSIX signals this is a no-op and [`interrupted`] only
    /// reflects [`request`] calls.
    pub fn install() {
        #[cfg(unix)]
        {
            static ONCE: std::sync::Once = std::sync::Once::new();
            ONCE.call_once(|| unsafe {
                signal(2, on_signal); // SIGINT
                signal(15, on_signal); // SIGTERM
            });
        }
    }

    /// Whether an interrupt was requested since the last [`reset`].
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }

    /// Requests an interrupt programmatically (what the signal handler
    /// does; useful in tests).
    pub fn request() {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    /// Clears the interrupt flag.
    pub fn reset() {
        INTERRUPTED.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SearchSnapshot {
        SearchSnapshot {
            strategy: "icb".into(),
            meta: vec![("benchmark".into(), "Bluetooth".into())],
            config: SearchConfig {
                max_executions: Some(5000),
                preemption_bound: Some(2),
                fault_bound: 1,
                stop_on_first_bug: true,
                max_bug_reports: 7,
                max_work_queue: None,
                max_duration: Some(std::time::Duration::from_millis(1500)),
                coverage_stride: 3,
            },
            base: ResumeBase {
                executions: 42,
                buggy_executions: 1,
                bugs: vec![BugReport {
                    outcome: ExecutionOutcome::AssertionFailure {
                        thread: Tid(1),
                        message: "lost \"update\"".into(),
                    },
                    schedule: {
                        let mut s = Schedule::from(vec![Tid(0), Tid(1), Tid(0)]);
                        s.add_fault(1);
                        s
                    },
                    preemptions: 1,
                    faults: 1,
                    execution_index: 17,
                    steps: 3,
                }],
                max_stats: ExecStats {
                    steps: 12,
                    blocking_steps: 2,
                    preemptions: 2,
                    context_switches: 4,
                    faults: 1,
                },
                quarantined: vec![QuarantinedTrace {
                    schedule: vec![Tid(1)].into(),
                    step: 0,
                    expected: Tid(1),
                    actual: vec![Tid(0)],
                }],
                quarantined_total: 3,
                watchdog_trips: 2,
                truncated: false,
                coverage_states: vec![1, 5, 9],
                coverage_executions: 42,
                coverage_curve: vec![(1, 1), (42, 3)],
            },
            state: StrategyState::Icb(IcbState {
                bound: 1,
                fault: 1,
                bound_executions_base: 30,
                bound_bugs_base: 0,
                completed_bound: Some(0),
                work: vec![vec![Tid(0), Tid(1)].into()],
                deferred: vec![
                    (1, 2, vec![vec![Tid(1)].into()]),
                    (2, 1, vec![vec![Tid(0)].into()]),
                ],
                bound_history: vec![BoundStats {
                    bound: 0,
                    faults: 0,
                    executions: 30,
                    cumulative_states: 2,
                    bugs_found: 0,
                }],
                in_progress: Some((
                    vec![Tid(0)].into(),
                    vec![BranchSnapshot {
                        step: 2,
                        options: vec![Tid(0), Tid(1)],
                        next_ix: 1,
                    }],
                )),
            }),
        }
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("icb-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ck");
        let snap = sample();
        snap.write_to(&path).unwrap();
        let back = SearchSnapshot::read_from(&path).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.meta_value("benchmark"), Some("Bluetooth"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dfs_and_random_states_round_trip() {
        let mut snap = sample();
        snap.strategy = "dfs".into();
        snap.state = StrategyState::Dfs(DfsState {
            depth_bound: Some(40),
            stack: vec![BranchSnapshot {
                step: 0,
                options: vec![Tid(0), Tid(1), Tid(2)],
                next_ix: 2,
            }],
        });
        let back = SearchSnapshot::from_bytes(&to_bytes(&snap)).unwrap();
        assert_eq!(back, snap);

        snap.strategy = "random".into();
        snap.state = StrategyState::Random(RandomState {
            rng_state: 0xdead_beef,
        });
        let back = SearchSnapshot::from_bytes(&to_bytes(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    fn to_bytes(snap: &SearchSnapshot) -> Vec<u8> {
        let payload = snap.encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fingerprint_bytes(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let mut bytes = to_bytes(&sample());
        // Flip one payload byte: checksum must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert_eq!(
            SearchSnapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch)
        );
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let bytes = to_bytes(&sample());
        for cut in [0, 4, 8, HEADER_LEN, bytes.len() - 1] {
            let err = SearchSnapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(err, SnapshotError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert_eq!(
            SearchSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        );
        let mut bytes = to_bytes(&sample());
        bytes[8] = 99;
        assert_eq!(
            SearchSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn checkpointer_paces_writes_by_executions() {
        let ck = Checkpointer::new("/tmp/nonexistent.ck", 10);
        assert!(!ck.due(9));
        assert!(ck.due(10));
        let mut ck = Checkpointer::new("/tmp/nonexistent.ck", 10);
        ck.mark_written(25);
        assert!(!ck.due(30));
        assert!(ck.due(35));
    }

    #[test]
    fn errors_render_clear_messages() {
        assert!(SnapshotError::ChecksumMismatch
            .to_string()
            .contains("corrupted"));
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        let e = SnapshotError::WrongStrategy {
            expected: "icb".into(),
            found: "dfs".into(),
        };
        assert!(e.to_string().contains("dfs"));
        assert!(e.to_string().contains("icb"));
    }

    #[test]
    fn interrupt_flag_sets_and_resets() {
        interrupt::reset();
        assert!(!interrupt::interrupted());
        interrupt::request();
        assert!(interrupt::interrupted());
        interrupt::reset();
        assert!(!interrupt::interrupted());
        interrupt::install(); // must not crash or reorder the flag
        assert!(!interrupt::interrupted());
    }
}
