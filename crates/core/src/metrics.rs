//! Live search metrics: a lock-free registry updated on hot paths.
//!
//! The observer interface ([`SearchObserver`]) is a *stream*: events are
//! pushed to a single consumer as they happen. A [`MetricsRegistry`] is
//! the complementary *state* view — a set of atomic counters, gauges and
//! fixed-bucket histograms that any thread can update and any thread can
//! read at any time. It exists for live introspection: a Prometheus-style
//! scrape endpoint, a terminal status board, or a periodic
//! `metrics-snapshot` telemetry event all read the same registry, so the
//! numbers they show cannot drift apart.
//!
//! Three kinds of producer feed one registry:
//!
//! * [`MetricsBridge`] wraps the search's observer and mirrors the event
//!   stream into the registry (executions, bounds, bugs, checkpoints,
//!   cache events). Cumulative quantities use `fetch_max` of the
//!   driver-reported cumulative index, so the registry's
//!   `executions` equals the final report's count exactly — never an
//!   independent tally that could drift.
//! * The parallel driver's workers, pump and
//!   [`Frontier`](crate::search::Frontier) update the
//!   observer-invisible quantities directly: per-worker busy/idle time,
//!   steal donations, pop waits, frontier depth, pump stalls and channel
//!   depth.
//! * The fingerprint cache table reports per-shard probe/hit counts.
//!
//! Every update is a handful of relaxed atomic operations — no locks on
//! any hot path (the only mutexes guard the strategy label and the
//! start instant, both written once per search).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::bounds;
use crate::search::SearchReport;
use crate::telemetry::ResumeInfo;
use crate::trace::{ExecStats, ExecutionOutcome};

/// Per-worker slots kept by the registry. Workers beyond this many fold
/// into the last slots modulo [`MAX_WORKERS`]; the parallel driver's
/// practical worker counts are far below it.
pub const MAX_WORKERS: usize = 64;

/// Cache-table shard slots (matches the table's shard count).
pub const CACHE_SHARDS: usize = 64;

/// Step-histogram buckets: bucket `i` counts executions whose step count
/// has bit length `i` (bucket 0 holds zero-step executions); the last
/// bucket is a catch-all.
pub const STEP_BUCKETS: usize = 33;

/// Sentinel for "no bound active" in the `current_bound` gauge.
const NO_BOUND: u64 = u64::MAX;

#[derive(Debug, Default)]
struct WorkerSlot {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    executions: AtomicU64,
    donations: AtomicU64,
}

/// Point-in-time statistics of one worker, as captured by
/// [`MetricsRegistry::snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Nanoseconds spent executing work items.
    pub busy_ns: u64,
    /// Nanoseconds spent blocked waiting for work.
    pub idle_ns: u64,
    /// Executions this worker performed.
    pub executions: u64,
    /// Times this worker donated part of its subtree to the frontier.
    pub donations: u64,
}

impl WorkerStats {
    /// Busy share of the worker's accounted time (`None` before any time
    /// was accounted).
    pub fn utilization(&self) -> Option<f64> {
        let total = self.busy_ns + self.idle_ns;
        (total > 0).then(|| self.busy_ns as f64 / total as f64)
    }
}

/// A plain-data copy of the registry at one instant — the payload of the
/// [`SearchObserver::metrics_snapshot`] hook and of the periodic
/// `metrics-snapshot` JSONL event.
///
/// [`SearchObserver::metrics_snapshot`]: crate::SearchObserver::metrics_snapshot
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall time since the search started.
    pub elapsed: Duration,
    /// Cumulative executions (equals the final report's count at the
    /// last snapshot).
    pub executions: u64,
    /// Cumulative distinct states.
    pub distinct_states: u64,
    /// Executions that ended in a bug.
    pub buggy_executions: u64,
    /// Bug reports recorded.
    pub bugs_reported: u64,
    /// The active preemption bound (`None` outside ICB bounds).
    pub bound: Option<u64>,
    /// Executions performed inside the active bound.
    pub bound_executions: u64,
    /// Deferred work-queue depth (last sampled).
    pub work_queue_depth: u64,
    /// Work items deferred to later bounds so far.
    pub work_items_deferred: u64,
    /// Parallel frontier queue depth (last sampled; 0 when sequential).
    pub frontier_len: u64,
    /// Times a worker blocked waiting for frontier work.
    pub frontier_pop_waits: u64,
    /// Frontier mutex acquisitions.
    pub frontier_lock_ops: u64,
    /// Times a worker donated (dissolved) part of its subtree.
    pub steal_donations: u64,
    /// Work items transferred by those donations.
    pub steal_donated_items: u64,
    /// Observer-pump `recv_timeout` expiries (pump idle ticks).
    pub pump_recv_timeouts: u64,
    /// Observer-pump channel depth (last sampled).
    pub pump_channel_depth: u64,
    /// Configured worker count (1 when sequential).
    pub workers_configured: u64,
    /// Checkpoints durably written.
    pub checkpoints: u64,
    /// Schedule prefixes quarantined after replay divergence.
    pub quarantined: u64,
    /// Executions abandoned by the per-execution watchdog.
    pub watchdog_trips: u64,
    /// Data races flagged by the happens-before detector.
    pub races_detected: u64,
    /// Faults injected at fallible operations by the fault-bound search.
    pub faults_injected: u64,
    /// Replays spent shrinking witnesses (see
    /// [`shrink::minimize_witness`](crate::shrink::minimize_witness)).
    pub shrink_replays: u64,
    /// Work items pruned by the fingerprint cache.
    pub cache_hits: u64,
    /// New subtree entries the fingerprint cache recorded.
    pub cache_stores: u64,
    /// Fingerprint-table probes.
    pub cache_table_probes: u64,
    /// Fingerprint-table probes answered "covered".
    pub cache_table_hits: u64,
    /// Per-worker counters (one entry per configured worker).
    pub workers: Vec<WorkerStats>,
    /// Theorem-1 ETA for the current bound, when computable.
    pub eta_seconds: Option<f64>,
}

/// Lock-free live counters, gauges and histograms for one search.
///
/// Shared as `Arc<MetricsRegistry>` between the search session (via
/// [`MetricsBridge`]), the parallel driver's workers, the frontier, the
/// cache table, and any number of readers (scrape endpoint, status
/// board). See the [module docs](self).
#[derive(Debug)]
pub struct MetricsRegistry {
    created: Instant,
    started: Mutex<Option<Instant>>,
    strategy: Mutex<String>,
    executions: AtomicU64,
    buggy_executions: AtomicU64,
    bugs_reported: AtomicU64,
    races_detected: AtomicU64,
    faults_injected: AtomicU64,
    shrink_replays: AtomicU64,
    distinct_states: AtomicU64,
    work_items_deferred: AtomicU64,
    work_queue_depth: AtomicU64,
    current_bound: AtomicU64,
    bound_base: AtomicU64,
    checkpoints: AtomicU64,
    quarantined: AtomicU64,
    watchdog_trips: AtomicU64,
    cache_hits: AtomicU64,
    cache_stores: AtomicU64,
    cache_shard_probes: Vec<AtomicU64>,
    cache_shard_hits: Vec<AtomicU64>,
    frontier_len: AtomicU64,
    frontier_pop_waits: AtomicU64,
    frontier_lock_ops: AtomicU64,
    steal_donations: AtomicU64,
    steal_donated_items: AtomicU64,
    pump_recv_timeouts: AtomicU64,
    pump_channel_depth: AtomicU64,
    workers_configured: AtomicU64,
    workers: Vec<WorkerSlot>,
    step_buckets: Vec<AtomicU64>,
    step_sum: AtomicU64,
    step_count: AtomicU64,
    max_steps: AtomicU64,
    resumed_base: AtomicU64,
    theorem1_threads: AtomicU64,
    theorem1_blocking: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry; the creation instant anchors `elapsed` until
    /// [`mark_started`](MetricsRegistry::mark_started) is called.
    pub fn new() -> Self {
        MetricsRegistry {
            created: Instant::now(),
            started: Mutex::new(None),
            strategy: Mutex::new(String::new()),
            executions: AtomicU64::new(0),
            buggy_executions: AtomicU64::new(0),
            bugs_reported: AtomicU64::new(0),
            races_detected: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            shrink_replays: AtomicU64::new(0),
            distinct_states: AtomicU64::new(0),
            work_items_deferred: AtomicU64::new(0),
            work_queue_depth: AtomicU64::new(0),
            current_bound: AtomicU64::new(NO_BOUND),
            bound_base: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            watchdog_trips: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_stores: AtomicU64::new(0),
            cache_shard_probes: (0..CACHE_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            cache_shard_hits: (0..CACHE_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            frontier_len: AtomicU64::new(0),
            frontier_pop_waits: AtomicU64::new(0),
            frontier_lock_ops: AtomicU64::new(0),
            steal_donations: AtomicU64::new(0),
            steal_donated_items: AtomicU64::new(0),
            pump_recv_timeouts: AtomicU64::new(0),
            pump_channel_depth: AtomicU64::new(0),
            workers_configured: AtomicU64::new(1),
            workers: (0..MAX_WORKERS).map(|_| WorkerSlot::default()).collect(),
            step_buckets: (0..STEP_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            step_sum: AtomicU64::new(0),
            step_count: AtomicU64::new(0),
            max_steps: AtomicU64::new(0),
            resumed_base: AtomicU64::new(0),
            theorem1_threads: AtomicU64::new(0),
            theorem1_blocking: AtomicU64::new(0),
        }
    }

    // -- search lifecycle --------------------------------------------------

    /// Anchors `elapsed` (and thus rates and ETAs) to now. Called once
    /// by the bridge on `search_started`.
    pub fn mark_started(&self) {
        let mut g = self.started.lock().unwrap();
        if g.is_none() {
            *g = Some(Instant::now());
        }
    }

    /// Sets the strategy label shown by exporters.
    pub fn set_strategy(&self, label: &str) {
        label.clone_into(&mut self.strategy.lock().unwrap());
    }

    /// The strategy label (empty before the search starts).
    pub fn strategy(&self) -> String {
        self.strategy.lock().unwrap().clone()
    }

    /// Enables the Theorem-1 ETA for a program with `threads` threads,
    /// each executing at most `blocking` potentially blocking operations
    /// (`threads` is clamped to at least 1, matching the progress
    /// reporter's historical behavior).
    pub fn set_theorem1(&self, threads: u64, blocking: u64) {
        self.theorem1_threads
            .store(threads.max(1), Ordering::Relaxed);
        self.theorem1_blocking.store(blocking, Ordering::Relaxed);
    }

    /// Declares the worker count of the driving search.
    pub fn set_workers(&self, workers: usize) {
        self.workers_configured
            .store(workers as u64, Ordering::Relaxed);
    }

    // -- event-stream mirror (driven by MetricsBridge) ---------------------

    /// Mirrors one `execution_finished` event: `index` is the cumulative
    /// execution count, `distinct_states` the cumulative coverage.
    ///
    /// Cumulative counters advance by `fetch_max`, so replaying events
    /// (or feeding the registry from two observers) cannot overcount.
    pub fn record_execution(
        &self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        self.executions.fetch_max(index as u64, Ordering::Relaxed);
        self.distinct_states
            .fetch_max(distinct_states as u64, Ordering::Relaxed);
        self.max_steps
            .fetch_max(stats.steps as u64, Ordering::Relaxed);
        let bucket = (usize::BITS - stats.steps.leading_zeros()) as usize;
        self.step_buckets[bucket.min(STEP_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.step_sum
            .fetch_add(stats.steps as u64, Ordering::Relaxed);
        self.step_count.fetch_add(1, Ordering::Relaxed);
        match outcome {
            ExecutionOutcome::Terminated
            | ExecutionOutcome::StepLimitExceeded
            | ExecutionOutcome::ReplayDivergence { .. } => {}
            ExecutionOutcome::WatchdogTimeout => {
                self.watchdog_trips.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.buggy_executions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Mirrors `bound_started`: resets the per-bound execution base.
    pub fn record_bound_started(&self, bound: usize) {
        self.current_bound.store(bound as u64, Ordering::Relaxed);
        self.bound_base
            .store(self.executions.load(Ordering::Relaxed), Ordering::Relaxed);
        self.work_queue_depth.store(0, Ordering::Relaxed);
    }

    /// Mirrors `search_resumed`: seeds cumulative counters from the
    /// checkpoint and excludes inherited executions from rates.
    pub fn record_resume(&self, info: &ResumeInfo) {
        self.resumed_base
            .store(info.executions as u64, Ordering::Relaxed);
        self.executions
            .fetch_max(info.executions as u64, Ordering::Relaxed);
        self.distinct_states
            .fetch_max(info.distinct_states as u64, Ordering::Relaxed);
        self.current_bound
            .store(info.bound as u64, Ordering::Relaxed);
        self.bound_base.store(
            (info.executions - info.bound_executions) as u64,
            Ordering::Relaxed,
        );
    }

    /// Mirrors `search_finished`: pins the cumulative totals to the
    /// final report's.
    pub fn record_finished(&self, report: &SearchReport) {
        self.executions
            .fetch_max(report.executions as u64, Ordering::Relaxed);
        self.distinct_states
            .fetch_max(report.distinct_states as u64, Ordering::Relaxed);
    }

    /// One bug report was recorded.
    pub fn bug_reported(&self) {
        self.bugs_reported.fetch_add(1, Ordering::Relaxed);
    }

    /// The race detector flagged a data race.
    pub fn race_detected(&self) {
        self.races_detected.fetch_add(1, Ordering::Relaxed);
    }

    /// The scheduler injected a fault at a fallible operation.
    pub fn fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Witness shrinking spent `n` additional replays (cumulative, a
    /// plain counter: shrinking runs re-execute the program outside the
    /// search proper, so `icb_executions_total` would otherwise silently
    /// under-report the work done).
    pub fn shrink_replays_add(&self, n: usize) {
        self.shrink_replays.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// One work item was deferred to a later bound.
    pub fn work_item_deferred(&self) {
        self.work_items_deferred.fetch_add(1, Ordering::Relaxed);
    }

    /// The deferred work queue was sampled at `depth` items.
    pub fn set_work_queue_depth(&self, depth: usize) {
        self.work_queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// A checkpoint was durably written.
    pub fn checkpoint_written(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// A schedule prefix was quarantined.
    pub fn trace_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// The cache pruned `count` work items.
    pub fn cache_pruned(&self, count: usize) {
        self.cache_hits.fetch_add(count as u64, Ordering::Relaxed);
    }

    /// The cache recorded `count` new subtree entries.
    pub fn cache_stored(&self, count: usize) {
        self.cache_stores.fetch_add(count as u64, Ordering::Relaxed);
    }

    // -- hot-path producers (frontier, workers, pump, cache table) ---------

    /// One fingerprint-table probe against `shard` (`hit` = covered).
    pub fn cache_table_probe(&self, shard: usize, hit: bool) {
        self.cache_shard_probes[shard % CACHE_SHARDS].fetch_add(1, Ordering::Relaxed);
        if hit {
            self.cache_shard_hits[shard % CACHE_SHARDS].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The frontier queue was sampled at `len` items.
    pub fn set_frontier_len(&self, len: usize) {
        self.frontier_len.store(len as u64, Ordering::Relaxed);
    }

    /// A worker blocked in `Frontier::pop` waiting for work.
    pub fn frontier_pop_wait(&self) {
        self.frontier_pop_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// The frontier mutex was acquired.
    pub fn frontier_lock_op(&self) {
        self.frontier_lock_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker donated `items` work items back to the frontier.
    pub fn steal_donation(&self, items: usize) {
        self.steal_donations.fetch_add(1, Ordering::Relaxed);
        self.steal_donated_items
            .fetch_add(items as u64, Ordering::Relaxed);
    }

    /// The observer pump's `recv_timeout` expired without an event.
    pub fn pump_recv_timeout(&self) {
        self.pump_recv_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// The observer-pump channel was sampled at `depth` queued events.
    pub fn set_pump_channel_depth(&self, depth: usize) {
        self.pump_channel_depth
            .store(depth as u64, Ordering::Relaxed);
    }

    /// Worker `worker` spent `elapsed` executing work.
    pub fn worker_busy(&self, worker: usize, elapsed: Duration) {
        self.workers[worker % MAX_WORKERS]
            .busy_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Worker `worker` spent `elapsed` waiting for work.
    pub fn worker_idle(&self, worker: usize, elapsed: Duration) {
        self.workers[worker % MAX_WORKERS]
            .idle_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Worker `worker` finished one execution.
    pub fn worker_execution(&self, worker: usize) {
        self.workers[worker % MAX_WORKERS]
            .executions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Worker `worker` donated part of its subtree.
    pub fn worker_donation(&self, worker: usize) {
        self.workers[worker % MAX_WORKERS]
            .donations
            .fetch_add(1, Ordering::Relaxed);
    }

    // -- readers ------------------------------------------------------------

    /// Cumulative executions.
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// Cumulative distinct states.
    pub fn distinct_states(&self) -> u64 {
        self.distinct_states.load(Ordering::Relaxed)
    }

    /// The active preemption bound, when one is.
    pub fn current_bound(&self) -> Option<usize> {
        match self.current_bound.load(Ordering::Relaxed) {
            NO_BOUND => None,
            b => Some(b as usize),
        }
    }

    /// Executions performed inside the active bound.
    pub fn bound_executions(&self) -> u64 {
        self.executions
            .load(Ordering::Relaxed)
            .saturating_sub(self.bound_base.load(Ordering::Relaxed))
    }

    /// Deferred work-queue depth (last sampled).
    pub fn work_queue_depth(&self) -> u64 {
        self.work_queue_depth.load(Ordering::Relaxed)
    }

    /// Executions inherited from a checkpoint.
    pub fn resumed_base(&self) -> u64 {
        self.resumed_base.load(Ordering::Relaxed)
    }

    /// Longest execution (in steps) observed so far.
    pub fn max_steps(&self) -> u64 {
        self.max_steps.load(Ordering::Relaxed)
    }

    /// Wall time since [`mark_started`](MetricsRegistry::mark_started)
    /// (since creation, if the search has not started).
    pub fn elapsed(&self) -> Duration {
        match *self.started.lock().unwrap() {
            Some(s) => s.elapsed(),
            None => self.created.elapsed(),
        }
    }

    /// Observed execution rate of *this segment* (inherited executions
    /// excluded), in executions per second; `0.0` before the search
    /// starts or before time measurably passes.
    pub fn fresh_rate(&self) -> f64 {
        let started = *self.started.lock().unwrap();
        match started {
            Some(s) if s.elapsed().as_secs_f64() > 0.0 => {
                let fresh = self
                    .executions
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.resumed_base.load(Ordering::Relaxed));
                fresh as f64 / s.elapsed().as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Upper bound on the seconds left in the current bound, from the
    /// paper's Theorem 1 ceiling and the observed execution rate.
    ///
    /// This is the single implementation of the ETA the progress
    /// reporter historically computed: `None` when parameters or rate
    /// are missing, `+inf` when the ceiling exceeds `e^60`, clamped to
    /// zero when the bound overran its (loose) ceiling.
    pub fn eta_seconds(&self) -> Option<f64> {
        let n = self.theorem1_threads.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        let b = self.theorem1_blocking.load(Ordering::Relaxed);
        let c = self.current_bound()? as u64;
        let k = (self.max_steps.load(Ordering::Relaxed) / n.max(1)).max(1);
        let started = (*self.started.lock().unwrap())?;
        let secs = started.elapsed().as_secs_f64();
        let fresh = self
            .executions
            .load(Ordering::Relaxed)
            .saturating_sub(self.resumed_base.load(Ordering::Relaxed));
        if secs <= 0.0 || fresh == 0 {
            return None;
        }
        let rate = fresh as f64 / secs;
        if !rate.is_finite() || rate <= 0.0 {
            return None;
        }
        // Log-space first: the ceiling overflows u128 long before the
        // search becomes infeasible to *estimate*.
        let ln_ceiling = bounds::ln_executions_with_preemptions(n, k, b, c);
        if ln_ceiling.is_nan() {
            return None;
        }
        if ln_ceiling > 60.0 {
            return Some(f64::INFINITY);
        }
        let ceiling = ln_ceiling.exp();
        // At bound 0 (or once a bound overruns its loose ceiling) the
        // remaining work clamps to zero rather than going negative.
        let remaining = (ceiling - self.bound_executions() as f64).max(0.0);
        let eta = remaining / rate;
        if eta.is_nan() {
            return None;
        }
        Some(eta)
    }

    /// Aggregate fingerprint-table probe / hit counters.
    pub fn cache_table_counters(&self) -> (u64, u64) {
        let probes = self
            .cache_shard_probes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let hits = self
            .cache_shard_hits
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        (probes, hits)
    }

    /// Per-shard fingerprint-table `(probes, hits)`, indexed by shard.
    pub fn cache_shard_counters(&self) -> Vec<(u64, u64)> {
        self.cache_shard_probes
            .iter()
            .zip(&self.cache_shard_hits)
            .map(|(p, h)| (p.load(Ordering::Relaxed), h.load(Ordering::Relaxed)))
            .collect()
    }

    /// The step-histogram buckets (bit-length buckets), with exact sum
    /// and count alongside.
    pub fn step_histogram(&self) -> (Vec<u64>, u64, u64) {
        (
            self.step_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            self.step_sum.load(Ordering::Relaxed),
            self.step_count.load(Ordering::Relaxed),
        )
    }

    /// Captures a plain-data copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let workers_configured = self.workers_configured.load(Ordering::Relaxed);
        let visible = (workers_configured as usize).clamp(1, MAX_WORKERS);
        let (cache_table_probes, cache_table_hits) = self.cache_table_counters();
        MetricsSnapshot {
            elapsed: self.elapsed(),
            executions: self.executions.load(Ordering::Relaxed),
            distinct_states: self.distinct_states.load(Ordering::Relaxed),
            buggy_executions: self.buggy_executions.load(Ordering::Relaxed),
            bugs_reported: self.bugs_reported.load(Ordering::Relaxed),
            bound: self.current_bound().map(|b| b as u64),
            bound_executions: self.bound_executions(),
            work_queue_depth: self.work_queue_depth.load(Ordering::Relaxed),
            work_items_deferred: self.work_items_deferred.load(Ordering::Relaxed),
            frontier_len: self.frontier_len.load(Ordering::Relaxed),
            frontier_pop_waits: self.frontier_pop_waits.load(Ordering::Relaxed),
            frontier_lock_ops: self.frontier_lock_ops.load(Ordering::Relaxed),
            steal_donations: self.steal_donations.load(Ordering::Relaxed),
            steal_donated_items: self.steal_donated_items.load(Ordering::Relaxed),
            pump_recv_timeouts: self.pump_recv_timeouts.load(Ordering::Relaxed),
            pump_channel_depth: self.pump_channel_depth.load(Ordering::Relaxed),
            workers_configured,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            watchdog_trips: self.watchdog_trips.load(Ordering::Relaxed),
            races_detected: self.races_detected.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            shrink_replays: self.shrink_replays.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_stores: self.cache_stores.load(Ordering::Relaxed),
            cache_table_probes,
            cache_table_hits,
            workers: self.workers[..visible]
                .iter()
                .map(|w| WorkerStats {
                    busy_ns: w.busy_ns.load(Ordering::Relaxed),
                    idle_ns: w.idle_ns.load(Ordering::Relaxed),
                    executions: w.executions.load(Ordering::Relaxed),
                    donations: w.donations.load(Ordering::Relaxed),
                })
                .collect(),
            eta_seconds: self.eta_seconds(),
        }
    }
}

use crate::search::{BoundStats, BugReport, QuarantinedTrace};
use crate::telemetry::{AbortReason, ChoiceKind, Phase, SearchObserver, SiteId};

/// Mirrors a search's event stream into a [`MetricsRegistry`] while
/// forwarding every event — and the profiling gates — to the wrapped
/// observer unchanged.
///
/// The bridge also emits [`SearchObserver::metrics_snapshot`] to the
/// wrapped observer at the natural cadence points of a long run: after
/// every durable checkpoint, after every completed bound, and once right
/// before `search_finished` — so a JSONL log carries a throughput series
/// a report can plot offline, and a resumed run's segments stitch into a
/// continuous series.
///
/// [`SearchObserver::metrics_snapshot`]: crate::SearchObserver::metrics_snapshot
pub struct MetricsBridge<'a> {
    registry: std::sync::Arc<MetricsRegistry>,
    inner: &'a mut dyn SearchObserver,
}

impl std::fmt::Debug for MetricsBridge<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsBridge").finish_non_exhaustive()
    }
}

impl<'a> MetricsBridge<'a> {
    /// Wraps `inner`, mirroring its event stream into `registry`.
    pub fn new(
        registry: std::sync::Arc<MetricsRegistry>,
        inner: &'a mut dyn SearchObserver,
    ) -> Self {
        MetricsBridge { registry, inner }
    }

    fn emit_snapshot(&mut self) {
        let snapshot = self.registry.snapshot();
        self.inner.metrics_snapshot(&snapshot);
    }
}

impl SearchObserver for MetricsBridge<'_> {
    fn search_started(&mut self, strategy: &str) {
        self.registry.mark_started();
        self.registry.set_strategy(strategy);
        self.inner.search_started(strategy);
    }

    fn execution_started(&mut self, index: usize) {
        self.inner.execution_started(index);
    }

    fn execution_finished(
        &mut self,
        index: usize,
        stats: &ExecStats,
        outcome: &ExecutionOutcome,
        distinct_states: usize,
    ) {
        self.registry
            .record_execution(index, stats, outcome, distinct_states);
        self.inner
            .execution_finished(index, stats, outcome, distinct_states);
    }

    fn bound_started(&mut self, bound: usize, work_items: usize) {
        self.registry.record_bound_started(bound);
        self.inner.bound_started(bound, work_items);
    }

    fn bound_completed(&mut self, stats: &BoundStats, wall_time: Duration) {
        self.inner.bound_completed(stats, wall_time);
        self.emit_snapshot();
    }

    fn bug_found(&mut self, bug: &BugReport) {
        self.registry.bug_reported();
        self.inner.bug_found(bug);
    }

    fn work_item_deferred(&mut self, next_bound: usize) {
        self.registry.work_item_deferred();
        self.inner.work_item_deferred(next_bound);
    }

    fn work_queue_depth(&mut self, depth: usize) {
        self.registry.set_work_queue_depth(depth);
        self.inner.work_queue_depth(depth);
    }

    fn race_detected(&mut self, description: &str) {
        self.registry.race_detected();
        self.inner.race_detected(description);
    }

    fn worker_stamp(&mut self, worker: usize, seq: u64, at: Duration) {
        self.inner.worker_stamp(worker, seq, at);
    }

    fn wants_choice_points(&self) -> bool {
        self.inner.wants_choice_points()
    }

    fn wants_phase_timing(&self) -> bool {
        self.inner.wants_phase_timing()
    }

    fn choice_point(&mut self, site: SiteId, bound: usize, kind: ChoiceKind) {
        self.inner.choice_point(site, bound, kind);
    }

    fn preemption_taken(&mut self, site: SiteId) {
        self.inner.preemption_taken(site);
    }

    fn fault_injected(&mut self, site: SiteId, step: usize) {
        self.registry.fault_injected();
        self.inner.fault_injected(site, step);
    }

    fn worker_panic(&mut self, worker: usize, message: &str) {
        self.inner.worker_panic(worker, message);
    }

    fn phase_time(&mut self, phase: Phase, elapsed: Duration) {
        self.inner.phase_time(phase, elapsed);
    }

    fn search_aborted(&mut self, reason: AbortReason) {
        self.inner.search_aborted(reason);
    }

    fn search_resumed(&mut self, info: &ResumeInfo) {
        self.registry.record_resume(info);
        self.inner.search_resumed(info);
    }

    fn checkpoint_written(&mut self, executions: usize) {
        self.registry.checkpoint_written();
        self.inner.checkpoint_written(executions);
        self.emit_snapshot();
    }

    fn trace_quarantined(&mut self, quarantined: &QuarantinedTrace) {
        self.registry.trace_quarantined();
        self.inner.trace_quarantined(quarantined);
    }

    fn cache_hit(&mut self, count: usize) {
        self.registry.cache_pruned(count);
        self.inner.cache_hit(count);
    }

    fn cache_store(&mut self, count: usize) {
        self.registry.cache_stored(count);
        self.inner.cache_store(count);
    }

    fn bound_certified(&mut self, bound: Option<usize>) {
        self.inner.bound_certified(bound);
    }

    fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        // A bridge nested inside another bridge forwards the outer
        // snapshot unchanged rather than re-snapshotting.
        self.inner.metrics_snapshot(snapshot);
    }

    fn search_finished(&mut self, report: &SearchReport) {
        self.registry.record_finished(report);
        self.emit_snapshot();
        self.inner.search_finished(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn executions_advance_by_fetch_max() {
        let r = MetricsRegistry::new();
        let stats = ExecStats {
            steps: 7,
            ..ExecStats::default()
        };
        r.record_execution(3, &stats, &ExecutionOutcome::Terminated, 10);
        r.record_execution(1, &stats, &ExecutionOutcome::Terminated, 4);
        assert_eq!(r.executions(), 3, "stale index must not regress");
        assert_eq!(r.distinct_states(), 10);
        let (buckets, sum, count) = r.step_histogram();
        assert_eq!(sum, 14);
        assert_eq!(count, 2);
        assert_eq!(buckets[3], 2, "7 has bit length 3");
    }

    #[test]
    fn bound_executions_derive_from_the_bound_base() {
        let r = MetricsRegistry::new();
        let stats = ExecStats::default();
        r.record_execution(5, &stats, &ExecutionOutcome::Terminated, 1);
        r.record_bound_started(2);
        assert_eq!(r.current_bound(), Some(2));
        assert_eq!(r.bound_executions(), 0);
        r.record_execution(9, &stats, &ExecutionOutcome::Terminated, 2);
        assert_eq!(r.bound_executions(), 4);
    }

    #[test]
    fn resume_seeds_counters_and_rate_base() {
        let r = MetricsRegistry::new();
        r.record_resume(&ResumeInfo {
            executions: 100,
            distinct_states: 40,
            bound: 2,
            bound_executions: 10,
        });
        assert_eq!(r.executions(), 100);
        assert_eq!(r.resumed_base(), 100);
        assert_eq!(r.current_bound(), Some(2));
        assert_eq!(r.bound_executions(), 10);
    }

    #[test]
    fn concurrent_updates_from_eight_threads_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let r = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for worker in 0..THREADS {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let stats = ExecStats {
                        steps: worker + 1,
                        ..ExecStats::default()
                    };
                    for i in 0..PER_THREAD {
                        r.record_execution(
                            worker * PER_THREAD + i + 1,
                            &stats,
                            &ExecutionOutcome::Terminated,
                            i,
                        );
                        r.worker_execution(worker);
                        r.worker_busy(worker, Duration::from_nanos(10));
                        r.frontier_lock_op();
                        r.steal_donation(2);
                        r.cache_table_probe(worker, i % 2 == 0);
                    }
                });
            }
        });
        let snap = r.snapshot();
        // fetch_max: the largest index wins.
        assert_eq!(snap.executions, (THREADS * PER_THREAD) as u64);
        assert_eq!(snap.frontier_lock_ops, (THREADS * PER_THREAD) as u64);
        assert_eq!(snap.steal_donations, (THREADS * PER_THREAD) as u64);
        assert_eq!(snap.steal_donated_items, 2 * (THREADS * PER_THREAD) as u64);
        let (probes, hits) = r.cache_table_counters();
        assert_eq!(probes, (THREADS * PER_THREAD) as u64);
        assert_eq!(hits, (THREADS * PER_THREAD / 2) as u64);
        let (_, _, count) = r.step_histogram();
        assert_eq!(count, (THREADS * PER_THREAD) as u64);
        r.set_workers(THREADS);
        let snap = r.snapshot();
        assert_eq!(snap.workers.len(), THREADS);
        for w in &snap.workers {
            assert_eq!(w.executions, PER_THREAD as u64);
            assert_eq!(w.busy_ns, 10 * PER_THREAD as u64);
            assert_eq!(w.utilization(), Some(1.0));
        }
    }

    #[test]
    fn eta_requires_parameters_bound_and_rate() {
        let r = MetricsRegistry::new();
        assert_eq!(r.eta_seconds(), None, "no theorem-1 parameters");
        r.set_theorem1(2, 1);
        assert_eq!(r.eta_seconds(), None, "no active bound");
        r.record_bound_started(0);
        assert_eq!(r.eta_seconds(), None, "search not started");
        r.mark_started();
        assert_eq!(r.eta_seconds(), None, "no executions yet");
        std::thread::sleep(Duration::from_millis(2));
        let stats = ExecStats {
            steps: 4,
            ..ExecStats::default()
        };
        r.record_execution(1, &stats, &ExecutionOutcome::Terminated, 1);
        let eta = r.eta_seconds().expect("eta computable");
        assert!(eta >= 0.0 && eta.is_finite(), "eta {eta}");
    }

    #[test]
    fn eta_clamps_at_zero_once_a_bound_overruns_its_ceiling() {
        let r = MetricsRegistry::new();
        r.set_theorem1(2, 1);
        r.mark_started();
        r.record_bound_started(0);
        std::thread::sleep(Duration::from_millis(2));
        let stats = ExecStats {
            steps: 4,
            ..ExecStats::default()
        };
        for i in 1..=50 {
            r.record_execution(i, &stats, &ExecutionOutcome::Terminated, i);
        }
        assert_eq!(r.eta_seconds(), Some(0.0));
    }

    #[test]
    fn bridge_mirrors_and_forwards() {
        struct Probe {
            snapshots: Vec<MetricsSnapshot>,
            finished: bool,
        }
        impl SearchObserver for Probe {
            fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {
                self.snapshots.push(snapshot.clone());
            }
            fn search_finished(&mut self, _report: &SearchReport) {
                self.finished = true;
            }
            fn wants_choice_points(&self) -> bool {
                true
            }
        }
        let registry = Arc::new(MetricsRegistry::new());
        let mut probe = Probe {
            snapshots: Vec::new(),
            finished: false,
        };
        let mut bridge = MetricsBridge::new(Arc::clone(&registry), &mut probe);
        assert!(bridge.wants_choice_points(), "gates forward to the inner");
        bridge.search_started("icb");
        bridge.bound_started(0, 1);
        bridge.execution_finished(1, &ExecStats::default(), &ExecutionOutcome::Terminated, 2);
        bridge.checkpoint_written(1);
        bridge.search_finished(&SearchReport {
            strategy: "icb".into(),
            executions: 1,
            distinct_states: 2,
            ..SearchReport::default()
        });
        assert_eq!(registry.executions(), 1);
        assert_eq!(registry.strategy(), "icb");
        assert_eq!(
            probe.snapshots.len(),
            2,
            "one snapshot per checkpoint plus the final one"
        );
        assert_eq!(probe.snapshots[1].executions, 1);
        assert!(probe.finished);
    }
}
