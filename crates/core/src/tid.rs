//! Thread identifiers.

use std::fmt;

/// Identifier of a thread (task) within one program under test.
///
/// Thread ids are small dense indices assigned in spawn order, with the
/// initial (main) thread always being `Tid(0)`. They are stable across
/// replays of the same program because thread creation is itself a
/// scheduling-visible, deterministic event.
///
/// # Examples
///
/// ```
/// use icb_core::Tid;
/// let t = Tid(2);
/// assert_eq!(t.index(), 2);
/// assert_eq!(t.to_string(), "T2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tid(pub usize);

impl Tid {
    /// The main thread of every program under test.
    pub const MAIN: Tid = Tid(0);

    /// Returns the dense index of this thread id.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for Tid {
    fn from(ix: usize) -> Self {
        Tid(ix)
    }
}

impl From<Tid> for usize {
    fn from(tid: Tid) -> Self {
        tid.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Tid(7)), "T7");
        assert_eq!(format!("{:?}", Tid(7)), "T7");
    }

    #[test]
    fn conversions_round_trip() {
        let t: Tid = 5usize.into();
        assert_eq!(usize::from(t), 5);
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(Tid(1) < Tid(2));
        assert_eq!(Tid::MAIN, Tid(0));
    }
}
