//! The workspace's shared, dependency-free hash primitives.
//!
//! One canonical home for the two hashes every fingerprinting layer
//! builds on — the checkpoint codec ([`crate::snapshot`]), the coverage
//! tracker ([`crate::coverage`]), the happens-before fingerprints
//! (`icb-race`), and the fingerprint cache's on-disk segment format
//! (`icb-cache`). Cache keys persist across runs, so these functions are
//! part of the on-disk format: their outputs are pinned by golden tests
//! and must never change.

/// Hashes arbitrary bytes into a state fingerprint (FNV-1a, 64-bit).
///
/// A tiny, dependency-free hash is sufficient here: fingerprints are used
/// only for coverage statistics and state caching of *small* spaces, and
/// every use site tolerates the (astronomically unlikely) collision by
/// undercounting a state.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mixes a 64-bit value into a well-distributed fingerprint
/// (SplitMix64 finalizer).
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_spread() {
        let a = fingerprint_bytes(b"hello");
        let b = fingerprint_bytes(b"hellp");
        assert_ne!(a, b);
        assert_eq!(a, fingerprint_bytes(b"hello"));
    }

    #[test]
    fn mix64_changes_low_entropy_inputs() {
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn golden_values_are_pinned() {
        // Persisted cache segments key on these outputs: changing either
        // function silently invalidates every cache on disk. If one of
        // these assertions fails, you have changed the on-disk format —
        // bump the segment VERSION instead of updating the constants.
        assert_eq!(fingerprint_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint_bytes(b"icb"), 0x2b95_e319_2bcc_4425);
        assert_eq!(mix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(mix64(0x1cb), 0xc472_9bd0_0254_1e7a);
    }
}
