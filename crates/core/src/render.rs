//! Human-readable rendering of traces: per-thread lanes with context
//! switches and preemptions marked — for bug reports and examples.

use std::fmt::Write as _;

use crate::trace::Trace;

/// Renders a trace as per-thread lanes.
///
/// Each column is one step; the running thread's lane shows `●` (or `!`
/// when it was scheduled *by preempting* the previous thread), other
/// lanes show `·` if enabled at that point and space if not. The summary
/// line states the step, switch and preemption counts.
///
/// # Examples
///
/// ```
/// use icb_core::{Tid, Trace, TraceEntry};
/// let trace: Trace = vec![
///     TraceEntry::new(Tid(0), vec![Tid(0), Tid(1)], None, false, false),
///     TraceEntry::new(Tid(1), vec![Tid(0), Tid(1)], Some(Tid(0)), true, false),
/// ].into();
/// let lanes = icb_core::render::lanes(&trace);
/// assert!(lanes.contains("T0 │●"));
/// assert!(lanes.contains("!")); // the preemption marker
/// ```
pub fn lanes(trace: &Trace) -> String {
    let entries = trace.entries();
    let threads = entries
        .iter()
        .flat_map(|e| e.enabled.iter().map(|t| t.index()))
        .chain(entries.iter().map(|e| e.chosen.index()))
        .max()
        .map_or(0, |m| m + 1);
    let mut out = String::new();
    for t in 0..threads {
        let _ = write!(out, "T{t:<2}│");
        for e in entries {
            let c = if e.chosen.index() == t {
                if e.is_preemption() {
                    '!'
                } else {
                    '●'
                }
            } else if e.enabled.iter().any(|x| x.index() == t) {
                '·'
            } else {
                ' '
            };
            out.push(c);
        }
        out.push('\n');
    }
    let _ = write!(
        out,
        "{} steps, {} context switches ({} preempting, marked `!`)",
        trace.len(),
        trace.context_switches(),
        trace.preemptions(),
    );
    out
}

/// One-line summary of a trace: the schedule in run-length form
/// (`T0×3 T1×2 …`) with preemptions marked.
pub fn compact(trace: &Trace) -> String {
    let mut out = String::new();
    let mut run: Option<(usize, usize, bool)> = None; // (tid, count, preempted-into)
    let flush = |out: &mut String, run: Option<(usize, usize, bool)>| {
        if let Some((tid, count, preempted)) = run {
            if !out.is_empty() {
                out.push(' ');
            }
            if preempted {
                out.push('!');
            }
            let _ = write!(out, "T{tid}×{count}");
        }
    };
    for e in trace.entries() {
        match run {
            Some((tid, count, preempted)) if tid == e.chosen.index() => {
                run = Some((tid, count + 1, preempted));
            }
            prev => {
                flush(&mut out, prev);
                run = Some((e.chosen.index(), 1, e.is_preemption()));
            }
        }
    }
    flush(&mut out, run);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid::Tid;
    use crate::trace::TraceEntry;

    fn sample() -> Trace {
        vec![
            TraceEntry::new(Tid(0), vec![Tid(0), Tid(1)], None, false, false),
            TraceEntry::new(Tid(0), vec![Tid(0), Tid(1)], Some(Tid(0)), true, false),
            TraceEntry::new(Tid(1), vec![Tid(0), Tid(1)], Some(Tid(0)), true, false),
            TraceEntry::new(Tid(0), vec![Tid(0)], Some(Tid(1)), false, false),
        ]
        .into()
    }

    #[test]
    fn lanes_mark_preemptions() {
        let s = lanes(&sample());
        assert!(s.contains("T0 │●●·●"), "got:\n{s}");
        assert!(s.contains("T1 │··! "), "got:\n{s}");
        assert!(s.contains("4 steps, 2 context switches (1 preempting"));
    }

    #[test]
    fn compact_run_length_encodes() {
        let s = compact(&sample());
        assert_eq!(s, "T0×2 !T1×1 T0×1");
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::new();
        assert!(lanes(&t).contains("0 steps"));
        assert_eq!(compact(&t), "");
    }
}
