//! Human-readable rendering of traces: per-thread lanes with context
//! switches and preemptions marked — for bug reports and examples.

use std::fmt::Write as _;

use crate::trace::Trace;

/// Renders a trace as per-thread lanes.
///
/// Each column is one step; the running thread's lane shows `●` (or `!`
/// when it was scheduled *by preempting* the previous thread, or `×`
/// when the scheduler injected a fault at that step's fallible
/// operation), other lanes show `·` if enabled at that point and space
/// if not. The summary line states the step, switch and preemption
/// counts, plus the fault count when any were injected.
///
/// # Examples
///
/// ```
/// use icb_core::{Tid, Trace, TraceEntry};
/// let trace: Trace = vec![
///     TraceEntry::new(Tid(0), vec![Tid(0), Tid(1)], None, false, false),
///     TraceEntry::new(Tid(1), vec![Tid(0), Tid(1)], Some(Tid(0)), true, false),
/// ].into();
/// let lanes = icb_core::render::lanes(&trace);
/// assert!(lanes.contains("T0 │●"));
/// assert!(lanes.contains("!")); // the preemption marker
/// ```
pub fn lanes(trace: &Trace) -> String {
    lanes_wrapped(trace, usize::MAX)
}

/// Like [`lanes`], but wraps the step columns at `width` per block so
/// long traces stay readable in a terminal. Blocks after the first are
/// introduced by a `── steps a..b ──` header line. The gutter widens
/// with the largest thread id (`T9 │` / `T10│` / `T100│` all align), so
/// traces with more than ten threads no longer misalign.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn lanes_wrapped(trace: &Trace, width: usize) -> String {
    assert!(width > 0, "wrap width must be at least one column");
    let entries = trace.entries();
    let threads = entries
        .iter()
        .flat_map(|e| e.enabled.iter().map(|t| t.index()))
        .chain(entries.iter().map(|e| e.chosen.index()))
        .max()
        .map_or(0, |m| m + 1);
    let gutter = threads
        .checked_sub(1)
        .map_or(2, |m| decimal_digits(m).max(2));
    let mut out = String::new();
    let mut start = 0usize;
    loop {
        let end = entries.len().min(start.saturating_add(width));
        if start > 0 {
            let _ = writeln!(out, "── steps {start}..{end} ──");
        }
        for t in 0..threads {
            let _ = write!(out, "T{t:<gutter$}│");
            for e in &entries[start..end] {
                let c = if e.chosen.index() == t {
                    if e.fault {
                        '×'
                    } else if e.is_preemption() {
                        '!'
                    } else {
                        '●'
                    }
                } else if e.enabled.iter().any(|x| x.index() == t) {
                    '·'
                } else {
                    ' '
                };
                out.push(c);
            }
            out.push('\n');
        }
        start = end;
        if start >= entries.len() {
            break;
        }
    }
    let _ = write!(
        out,
        "{} steps, {} context switches ({} preempting, marked `!`)",
        trace.len(),
        trace.context_switches(),
        trace.preemptions(),
    );
    // Emitted only for faulted traces so fault-free renderings stay
    // byte-identical to previous releases.
    let faults = trace.faults();
    if faults > 0 {
        let noun = if faults == 1 { "fault" } else { "faults" };
        let _ = write!(out, ", {faults} {noun} injected (marked `×`)");
    }
    out
}

fn decimal_digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// One-line summary of a trace: the schedule in run-length form
/// (`T0×3 T1×2 …`) with preemptions marked.
pub fn compact(trace: &Trace) -> String {
    let mut out = String::new();
    let mut run: Option<(usize, usize, bool)> = None; // (tid, count, preempted-into)
    let flush = |out: &mut String, run: Option<(usize, usize, bool)>| {
        if let Some((tid, count, preempted)) = run {
            if !out.is_empty() {
                out.push(' ');
            }
            if preempted {
                out.push('!');
            }
            let _ = write!(out, "T{tid}×{count}");
        }
    };
    for e in trace.entries() {
        match run {
            Some((tid, count, preempted)) if tid == e.chosen.index() => {
                run = Some((tid, count + 1, preempted));
            }
            prev => {
                flush(&mut out, prev);
                run = Some((e.chosen.index(), 1, e.is_preemption()));
            }
        }
    }
    flush(&mut out, run);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid::Tid;
    use crate::trace::TraceEntry;

    fn sample() -> Trace {
        vec![
            TraceEntry::new(Tid(0), vec![Tid(0), Tid(1)], None, false, false),
            TraceEntry::new(Tid(0), vec![Tid(0), Tid(1)], Some(Tid(0)), true, false),
            TraceEntry::new(Tid(1), vec![Tid(0), Tid(1)], Some(Tid(0)), true, false),
            TraceEntry::new(Tid(0), vec![Tid(0)], Some(Tid(1)), false, false),
        ]
        .into()
    }

    #[test]
    fn lanes_mark_preemptions() {
        let s = lanes(&sample());
        assert!(s.contains("T0 │●●·●"), "got:\n{s}");
        assert!(s.contains("T1 │··! "), "got:\n{s}");
        assert!(s.contains("4 steps, 2 context switches (1 preempting"));
    }

    #[test]
    fn lanes_mark_injected_faults() {
        let trace: Trace = vec![
            TraceEntry::new(Tid(0), vec![Tid(0), Tid(1)], None, false, false),
            TraceEntry::new(Tid(1), vec![Tid(0), Tid(1)], Some(Tid(0)), true, false)
                .with_fault(true),
        ]
        .into();
        let s = lanes(&trace);
        assert!(s.contains("T1 │·×"), "got:\n{s}");
        assert!(s.contains("1 fault injected (marked `×`)"), "got:\n{s}");
        // Fault-free traces keep the legacy summary line verbatim.
        assert!(!lanes(&sample()).contains("fault"));
    }

    #[test]
    fn compact_run_length_encodes() {
        let s = compact(&sample());
        assert_eq!(s, "T0×2 !T1×1 T0×1");
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::new();
        assert!(lanes(&t).contains("0 steps"));
        assert_eq!(compact(&t), "");
    }

    #[test]
    fn wide_traces_keep_the_gutter_aligned() {
        // 12 threads: two-digit ids used to overflow the fixed 2-char pad
        // only by luck of `{t:<2}` (fine for T10) — but a 100-thread trace
        // needs 3 columns. Check all gutters share one width.
        let enabled: Vec<Tid> = (0..101).map(Tid).collect();
        let trace: Trace = vec![TraceEntry::new(Tid(100), enabled, None, false, false)].into();
        let s = lanes(&trace);
        let widths: std::collections::BTreeSet<usize> = s
            .lines()
            .filter(|l| l.contains('│'))
            .map(|l| l.split('│').next().unwrap().chars().count())
            .collect();
        assert_eq!(widths.len(), 1, "misaligned gutters:\n{s}");
        assert!(s.contains("T100│"));
        assert!(s.contains("T0  │"));
    }

    #[test]
    fn wrapped_lanes_split_into_blocks() {
        let mut entries = vec![TraceEntry::new(
            Tid(0),
            vec![Tid(0), Tid(1)],
            None,
            false,
            false,
        )];
        for i in 1..10 {
            let chosen = Tid(i % 2);
            entries.push(TraceEntry::new(
                chosen,
                vec![Tid(0), Tid(1)],
                Some(Tid((i - 1) % 2)),
                true,
                false,
            ));
        }
        let trace: Trace = entries.into();
        let s = lanes_wrapped(&trace, 4);
        assert!(s.contains("── steps 4..8 ──"), "got:\n{s}");
        assert!(s.contains("── steps 8..10 ──"), "got:\n{s}");
        // Each block renders at most 4 step columns.
        for line in s.lines().filter(|l| l.contains('│')) {
            let cols = line.split('│').nth(1).unwrap().chars().count();
            assert!(cols <= 4, "block too wide: {line:?}");
        }
        // Unwrapped rendering of the same trace stays on one block.
        assert!(!lanes(&trace).contains("── steps"));
    }

    #[test]
    #[should_panic(expected = "wrap width")]
    fn zero_wrap_width_is_rejected() {
        let _ = lanes_wrapped(&Trace::new(), 0);
    }
}
