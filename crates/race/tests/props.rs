//! Property-based tests of the vector-clock lattice and the detector's
//! happens-before semantics.
//!
//! Cases are generated from seeded [`SplitMix64`] streams (the workspace
//! builds offline, so there is no proptest); every case is deterministic.

use icb_core::rng::SplitMix64;
use icb_race::{AccessKind, ClockOrdering, RaceDetector, Tid, VectorClock};

/// A random clock: up to 6 threads, components in `0..8`.
fn clock(rng: &mut SplitMix64) -> VectorClock {
    let len = rng.gen_index(6);
    (0..len)
        .map(|i| (Tid(i), rng.next_u64() as u32 % 8))
        .collect()
}

fn join(a: &VectorClock, b: &VectorClock) -> VectorClock {
    let mut out = a.clone();
    out.join(b);
    out
}

const CASES: usize = 256;

#[test]
fn join_is_commutative() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..CASES {
        let (a, b) = (clock(&mut rng), clock(&mut rng));
        assert_eq!(join(&a, &b), join(&b, &a));
    }
}

#[test]
fn join_is_associative() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..CASES {
        let (a, b, c) = (clock(&mut rng), clock(&mut rng), clock(&mut rng));
        assert_eq!(join(&join(&a, &b), &c), join(&a, &join(&b, &c)));
    }
}

#[test]
fn join_is_idempotent() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..CASES {
        let a = clock(&mut rng);
        assert_eq!(join(&a, &a), a);
    }
}

#[test]
fn join_is_an_upper_bound() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..CASES {
        let (a, b) = (clock(&mut rng), clock(&mut rng));
        let j = join(&a, &b);
        assert!(a.le(&j));
        assert!(b.le(&j));
    }
}

#[test]
fn join_is_the_least_upper_bound() {
    let mut rng = SplitMix64::new(5);
    for _ in 0..CASES {
        let (a, b, c) = (clock(&mut rng), clock(&mut rng), clock(&mut rng));
        if a.le(&c) && b.le(&c) {
            assert!(join(&a, &b).le(&c));
        }
    }
}

#[test]
fn le_is_a_partial_order() {
    let mut rng = SplitMix64::new(6);
    for _ in 0..CASES {
        let (a, b, c) = (clock(&mut rng), clock(&mut rng), clock(&mut rng));
        assert!(a.le(&a)); // reflexive
        if a.le(&b) && b.le(&a) {
            assert_eq!(a.compare(&b), ClockOrdering::Equal); // antisymmetric
        }
        if a.le(&b) && b.le(&c) {
            assert!(a.le(&c)); // transitive
        }
    }
}

#[test]
fn compare_is_consistent_with_le() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..CASES {
        let (a, b) = (clock(&mut rng), clock(&mut rng));
        match a.compare(&b) {
            ClockOrdering::Equal => assert!(a.le(&b) && b.le(&a)),
            ClockOrdering::Before => assert!(a.le(&b) && !b.le(&a)),
            ClockOrdering::After => assert!(!a.le(&b) && b.le(&a)),
            ClockOrdering::Concurrent => assert!(!a.le(&b) && !b.le(&a)),
        }
    }
}

#[test]
fn tick_strictly_advances() {
    let mut rng = SplitMix64::new(8);
    for _ in 0..CASES {
        let a = clock(&mut rng);
        let t = rng.gen_index(6);
        let mut b = a.clone();
        b.tick(Tid(t));
        assert!(a.le(&b));
        assert!(!b.le(&a));
    }
}

#[test]
fn equal_clocks_hash_equal() {
    let mut rng = SplitMix64::new(9);
    for _ in 0..CASES {
        let a = clock(&mut rng);
        let b = a.clone();
        assert_eq!(a.hash64(), b.hash64());
    }
}

/// Accesses fully serialized through one lock never race, regardless of
/// the access mix.
#[test]
fn lock_serialized_accesses_never_race() {
    let mut rng = SplitMix64::new(10);
    for _ in 0..64 {
        let mut d = RaceDetector::new();
        let m = d.new_sync_object();
        let x = d.new_data_var(None);
        let ops = 1 + rng.gen_index(19);
        for _ in 0..ops {
            let tid = Tid(rng.gen_index(3));
            d.sync_acquire(tid, m);
            let kind = if rng.gen_bool() {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            assert!(d.data_access(tid, x, kind).is_ok());
            d.sync_release(tid, m);
        }
    }
}

/// Two writers with no synchronization at all always race.
#[test]
fn unsynchronized_writers_always_race() {
    for prefix in 0..5 {
        let mut d = RaceDetector::new();
        let noise = d.new_sync_object();
        let x = d.new_data_var(None);
        // Unrelated sync noise on one thread must not order the other.
        for _ in 0..prefix {
            d.sync_access(Tid(0), noise);
        }
        d.data_access(Tid(0), x, AccessKind::Write).unwrap();
        assert!(d.data_access(Tid(1), x, AccessKind::Write).is_err());
    }
}

/// Any chain of sync accesses on a single variable totally orders the
/// participating threads' subsequent data accesses.
#[test]
fn sync_chains_transfer_order() {
    let mut rng = SplitMix64::new(11);
    for _ in 0..64 {
        let mut d = RaceDetector::new();
        let s = d.new_sync_object();
        let x = d.new_data_var(None);
        let len = 1 + rng.gen_index(11);
        for _ in 0..len {
            let t = Tid(rng.gen_index(4));
            d.sync_access(t, s);
            // Write between this thread's accesses to the chain: ordered
            // with every other participant's writes via the chain.
            assert!(d.data_access(t, x, AccessKind::Write).is_ok());
            d.sync_access(t, s);
        }
    }
}

/// The detector counts every race it diagnoses.
#[test]
fn detector_counts_races() {
    let mut d = RaceDetector::new();
    let x = d.new_data_var(None);
    let y = d.new_data_var(None);
    assert_eq!(d.races_detected(), 0);
    d.data_access(Tid(0), x, AccessKind::Write).unwrap();
    d.data_access(Tid(0), y, AccessKind::Write).unwrap();
    assert!(d.data_access(Tid(1), x, AccessKind::Write).is_err());
    assert!(d.data_access(Tid(2), y, AccessKind::Read).is_err());
    assert_eq!(d.races_detected(), 2);
}
