//! Property-based tests of the vector-clock lattice and the detector's
//! happens-before semantics.

use proptest::prelude::*;

use icb_race::{AccessKind, ClockOrdering, RaceDetector, Tid, VectorClock};

fn clock() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..8, 0..6).prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, v)| (Tid(i), v))
            .collect()
    })
}

fn join(a: &VectorClock, b: &VectorClock) -> VectorClock {
    let mut out = a.clone();
    out.join(b);
    out
}

proptest! {
    #[test]
    fn join_is_commutative(a in clock(), b in clock()) {
        prop_assert_eq!(join(&a, &b), join(&b, &a));
    }

    #[test]
    fn join_is_associative(a in clock(), b in clock(), c in clock()) {
        prop_assert_eq!(join(&join(&a, &b), &c), join(&a, &join(&b, &c)));
    }

    #[test]
    fn join_is_idempotent(a in clock()) {
        prop_assert_eq!(join(&a, &a), a);
    }

    #[test]
    fn join_is_an_upper_bound(a in clock(), b in clock()) {
        let j = join(&a, &b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn join_is_the_least_upper_bound(a in clock(), b in clock(), c in clock()) {
        if a.le(&c) && b.le(&c) {
            prop_assert!(join(&a, &b).le(&c));
        }
    }

    #[test]
    fn le_is_a_partial_order(a in clock(), b in clock(), c in clock()) {
        prop_assert!(a.le(&a)); // reflexive
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(a.compare(&b), ClockOrdering::Equal); // antisymmetric
        }
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c)); // transitive
        }
    }

    #[test]
    fn compare_is_consistent_with_le(a in clock(), b in clock()) {
        let cmp = a.compare(&b);
        match cmp {
            ClockOrdering::Equal => prop_assert!(a.le(&b) && b.le(&a)),
            ClockOrdering::Before => prop_assert!(a.le(&b) && !b.le(&a)),
            ClockOrdering::After => prop_assert!(!a.le(&b) && b.le(&a)),
            ClockOrdering::Concurrent => prop_assert!(!a.le(&b) && !b.le(&a)),
        }
    }

    #[test]
    fn tick_strictly_advances(a in clock(), t in 0usize..6) {
        let mut b = a.clone();
        b.tick(Tid(t));
        prop_assert!(a.le(&b));
        prop_assert!(!b.le(&a));
    }

    #[test]
    fn equal_clocks_hash_equal(a in clock()) {
        let b = a.clone();
        prop_assert_eq!(a.hash64(), b.hash64());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accesses fully serialized through one lock never race, regardless
    /// of the access mix.
    #[test]
    fn lock_serialized_accesses_never_race(
        ops in proptest::collection::vec((0usize..3, prop::bool::ANY), 1..20)
    ) {
        let mut d = RaceDetector::new();
        let m = d.new_sync_object();
        let x = d.new_data_var(None);
        for (t, is_write) in ops {
            let tid = Tid(t);
            d.sync_acquire(tid, m);
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            prop_assert!(d.data_access(tid, x, kind).is_ok());
            d.sync_release(tid, m);
        }
    }

    /// Two writers with no synchronization at all always race.
    #[test]
    fn unsynchronized_writers_always_race(prefix in 0usize..5) {
        let mut d = RaceDetector::new();
        let noise = d.new_sync_object();
        let x = d.new_data_var(None);
        // Unrelated sync noise on one thread must not order the other.
        for _ in 0..prefix {
            d.sync_access(Tid(0), noise);
        }
        d.data_access(Tid(0), x, AccessKind::Write).unwrap();
        prop_assert!(d.data_access(Tid(1), x, AccessKind::Write).is_err());
    }

    /// Any chain of sync accesses on a single variable totally orders
    /// the participating threads' subsequent data accesses.
    #[test]
    fn sync_chains_transfer_order(threads in proptest::collection::vec(0usize..4, 1..12)) {
        let mut d = RaceDetector::new();
        let s = d.new_sync_object();
        let x = d.new_data_var(None);
        for &t in &threads {
            d.sync_access(Tid(t), s);
            // Write between this thread's accesses to the chain: ordered
            // with every other participant's writes via the chain.
            prop_assert!(d.data_access(Tid(t), x, AccessKind::Write).is_ok());
            d.sync_access(Tid(t), s);
        }
    }
}
