//! Golden fingerprints for the happens-before state representation.
//!
//! The cache subsystem persists `(fingerprint, credit)` pairs across
//! process runs (`icb-cache` segments), which turns the exact u64 values
//! produced by [`HbFingerprint`] into an on-disk compatibility contract:
//! any change to the mixing function silently orphans every existing
//! cache entry. This test pins the fingerprints of three small
//! interleavings — two HB-equivalent, one not — so that a hash change
//! shows up as a test failure instead of a mysteriously cold cache.
//!
//! If you change the fingerprint function *intentionally*, update these
//! constants AND bump `icb_cache::VERSION` so old segments are rejected
//! instead of misinterpreted.

use icb_race::{HbFingerprint, Tid, VectorClock};

fn vc(pairs: &[(usize, u32)]) -> VectorClock {
    pairs.iter().map(|&(t, v)| (Tid(t), v)).collect()
}

/// The scenario: two threads, each performing one lock-free write to its
/// own variable (independent, so concurrent — singleton vector clocks),
/// then T1 performing a read of T0's variable *after* acquiring a lock
/// T0 released (so its clock includes T0's component).
const OP_WRITE_X: u64 = 0x77_58;
const OP_WRITE_Y: u64 = 0x77_59;
const OP_READ_X: u64 = 0x72_58;

/// Interleaving 1: T0's write folded first.
fn interleaving_writes_t0_first() -> u64 {
    let mut fp = HbFingerprint::new();
    fp.record(Tid(0), OP_WRITE_X, &vc(&[(0, 1)]));
    fp.record(Tid(1), OP_WRITE_Y, &vc(&[(1, 1)]));
    fp.current()
}

/// Interleaving 2: same two events, T1's write folded first. The writes
/// are independent, so this linearization is HB-equivalent to the first.
fn interleaving_writes_t1_first() -> u64 {
    let mut fp = HbFingerprint::new();
    fp.record(Tid(1), OP_WRITE_Y, &vc(&[(1, 1)]));
    fp.record(Tid(0), OP_WRITE_X, &vc(&[(0, 1)]));
    fp.current()
}

/// Interleaving 3: T1's second event reads x under an HB edge from T0
/// (its vector clock carries T0's component) — a different
/// happens-before relation, so a different state.
fn interleaving_with_hb_edge() -> u64 {
    let mut fp = HbFingerprint::new();
    fp.record(Tid(0), OP_WRITE_X, &vc(&[(0, 1)]));
    fp.record(Tid(1), OP_WRITE_Y, &vc(&[(1, 1)]));
    fp.record(Tid(1), OP_READ_X, &vc(&[(0, 1), (1, 2)]));
    fp.current()
}

const GOLDEN_EQUIVALENT: u64 = 0x8df5_388e_3627_9f38;
const GOLDEN_INEQUIVALENT: u64 = 0x6c78_1fe2_0b43_e3c8;

#[test]
fn equivalent_interleavings_share_the_pinned_fingerprint() {
    assert_eq!(
        interleaving_writes_t0_first(),
        GOLDEN_EQUIVALENT,
        "actual {:#018x}",
        interleaving_writes_t0_first()
    );
    assert_eq!(interleaving_writes_t1_first(), GOLDEN_EQUIVALENT);
}

#[test]
fn inequivalent_interleaving_has_a_distinct_pinned_fingerprint() {
    assert_eq!(
        interleaving_with_hb_edge(),
        GOLDEN_INEQUIVALENT,
        "actual {:#018x}",
        interleaving_with_hb_edge()
    );
    assert_ne!(GOLDEN_INEQUIVALENT, GOLDEN_EQUIVALENT);
}
