//! The happens-before relation as an explicit causal graph.
//!
//! The race detector computes happens-before *implicitly*, as vector
//! clocks threaded through an execution. For bug explanation that
//! relation needs to exist as a first-class artifact: a graph whose
//! nodes are the attributed steps of one trace and whose edges are the
//! generating relation of HB from Section 3.1 of the paper —
//!
//! ```text
//! HB(α) ⊇ { (i, j) | i < j and
//!            (α(i), α(j) same thread  or  same synchronization variable) }
//! ```
//!
//! — restricted to its *covering* edges: each step links to its thread's
//! previous step (program order) and to the previous step on the same
//! synchronization resource (sync order). The transitive closure of
//! these edges is the full HB relation, and each node carries the vector
//! clock that closure induces, so `a` happens before `b` iff
//! `clock(a) ≤ clock(b)`.
//!
//! When the execution ended in a data race, the two racing accesses are
//! highlighted: their clocks are incomparable, which is exactly what the
//! DOT rendering lets a reader verify by eye.
//!
//! Everything here is a pure function of the trace (and outcome), so the
//! renderings are byte-deterministic — a requirement for explanation
//! bundles that must not depend on `--jobs`.

use std::collections::HashMap;
use std::fmt::Write as _;

use icb_core::{ExecutionOutcome, SiteId, Tid, Trace};

use crate::clock::VectorClock;

/// One node of a [`CausalGraph`]: an attributed step of the trace.
#[derive(Clone, Debug)]
pub struct CausalNode {
    /// The step index within the trace.
    pub step: usize,
    /// The thread that executed the step.
    pub thread: Tid,
    /// The site the step executed ([`SiteId::UNKNOWN`] when the host
    /// did not resolve one).
    pub site: SiteId,
    /// Whether the step was reached by preempting the previous thread.
    pub preemption: bool,
    /// The node's vector clock under the graph's happens-before
    /// closure: `a` happens before `b` iff `a.clock ≤ b.clock`.
    pub clock: VectorClock,
}

/// Which generating relation an edge belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CausalEdgeKind {
    /// Same thread, consecutive steps.
    Program,
    /// Consecutive operations on the same synchronization resource.
    Sync,
}

/// One covering edge of the happens-before relation.
#[derive(Clone, Debug)]
pub struct CausalEdge {
    /// Source node index (the earlier step).
    pub from: usize,
    /// Target node index (the later step).
    pub to: usize,
    /// Program order or sync order.
    pub kind: CausalEdgeKind,
    /// The sync resource inducing a [`CausalEdgeKind::Sync`] edge
    /// (e.g. `lock#1`), `None` for program order.
    pub resource: Option<String>,
}

/// The happens-before relation of one execution as an explicit graph,
/// with DOT ([`to_dot`](CausalGraph::to_dot)) and JSON
/// ([`to_json`](CausalGraph::to_json)) renderers.
#[derive(Clone, Debug)]
pub struct CausalGraph {
    nodes: Vec<CausalNode>,
    edges: Vec<CausalEdge>,
    race: Option<(usize, usize)>,
}

impl CausalGraph {
    /// Builds the graph from a trace alone (no race highlighting).
    pub fn from_trace(trace: &Trace) -> Self {
        Self::build(trace, None)
    }

    /// Builds the graph from an execution's trace and outcome; a
    /// [`DataRace`](ExecutionOutcome::DataRace) outcome highlights the
    /// racing pair of accesses.
    pub fn from_execution(trace: &Trace, outcome: &ExecutionOutcome) -> Self {
        Self::build(trace, racing_threads(outcome))
    }

    fn build(trace: &Trace, racers: Option<(Tid, Tid)>) -> Self {
        let mut nodes: Vec<CausalNode> = Vec::with_capacity(trace.len());
        let mut edges = Vec::new();
        let mut last_of_thread: HashMap<Tid, usize> = HashMap::new();
        let mut last_of_resource: HashMap<String, usize> = HashMap::new();
        for (i, e) in trace.entries().iter().enumerate() {
            let mut clock = VectorClock::new();
            if let Some(&prev) = last_of_thread.get(&e.chosen) {
                edges.push(CausalEdge {
                    from: prev,
                    to: i,
                    kind: CausalEdgeKind::Program,
                    resource: None,
                });
                clock.join(&nodes[prev].clock);
            }
            if let Some(resource) = sync_resource(&e.site) {
                if let Some(&prev) = last_of_resource.get(&resource) {
                    // Skip a sync edge that duplicates the program-order
                    // edge we just added.
                    if last_of_thread.get(&e.chosen) != Some(&prev) {
                        edges.push(CausalEdge {
                            from: prev,
                            to: i,
                            kind: CausalEdgeKind::Sync,
                            resource: Some(resource.clone()),
                        });
                    }
                    clock.join(&nodes[prev].clock);
                }
                last_of_resource.insert(resource, i);
            }
            clock.tick(e.chosen);
            last_of_thread.insert(e.chosen, i);
            nodes.push(CausalNode {
                step: i,
                thread: e.chosen,
                site: e.site,
                preemption: e.is_preemption(),
                clock,
            });
        }
        let race = racers.and_then(|(second, first)| {
            let b = last_data_access(&nodes, second, nodes.len())?;
            let a = last_data_access(&nodes, first, b)?;
            Some((a, b))
        });
        CausalGraph { nodes, edges, race }
    }

    /// The graph's nodes, in step order.
    pub fn nodes(&self) -> &[CausalNode] {
        &self.nodes
    }

    /// The covering edges, ordered by target step.
    pub fn edges(&self) -> &[CausalEdge] {
        &self.edges
    }

    /// The node indices of the racing accesses, when the execution ended
    /// in a data race `(earlier, later)`.
    pub fn race(&self) -> Option<(usize, usize)> {
        self.race
    }

    /// Renders the graph in Graphviz DOT: one horizontal rank per
    /// thread, solid edges for program order, dashed edges labelled with
    /// the resource for sync order, and the racing pair filled red and
    /// joined by a bold red `race` edge.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph happens_before {\n");
        out.push_str("  rankdir=LR;\n");
        out.push_str("  node [shape=box, fontsize=10];\n");
        let mut threads: Vec<Tid> = self.nodes.iter().map(|n| n.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        for t in &threads {
            let _ = writeln!(out, "  subgraph cluster_t{} {{", t.index());
            let _ = writeln!(out, "    label=\"{t}\";");
            out.push_str("    style=dashed;\n");
            for n in self.nodes.iter().filter(|n| n.thread == *t) {
                let racing = self.race.is_some_and(|(a, b)| a == n.step || b == n.step);
                let mut attrs = format!(
                    "label=\"s{}\\n{}\", tooltip=\"{}\"",
                    n.step,
                    dot_escape(&n.site.to_string()),
                    dot_escape(&n.clock.to_string()),
                );
                if racing {
                    attrs.push_str(", style=filled, fillcolor=\"#ffc0c0\", color=red");
                } else if n.preemption {
                    attrs.push_str(", style=filled, fillcolor=\"#fff0c0\"");
                }
                let _ = writeln!(out, "    s{} [{}];", n.step, attrs);
            }
            out.push_str("  }\n");
        }
        for e in &self.edges {
            match e.kind {
                CausalEdgeKind::Program => {
                    let _ = writeln!(out, "  s{} -> s{};", e.from, e.to);
                }
                CausalEdgeKind::Sync => {
                    let _ = writeln!(
                        out,
                        "  s{} -> s{} [style=dashed, color=blue, label=\"{}\"];",
                        e.from,
                        e.to,
                        dot_escape(e.resource.as_deref().unwrap_or("")),
                    );
                }
            }
        }
        if let Some((a, b)) = self.race {
            let _ = writeln!(
                out,
                "  s{a} -> s{b} [dir=none, style=bold, color=red, label=\"race\", \
                 constraint=false];",
            );
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph as deterministic JSON: `nodes` (step, thread,
    /// site, preemption flag, vector clock as `[thread, time]` pairs),
    /// `edges` (from, to, kind, resource) and the racing pair.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let clock = n
                .clock
                .iter()
                .map(|(t, v)| format!("[{}, {}]", t.index(), v))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "    {{\"step\": {}, \"thread\": {}, \"site\": \"{}\", \
                 \"preemption\": {}, \"clock\": [{}]}}{}",
                n.step,
                n.thread.index(),
                json_escape(&n.site.to_string()),
                n.preemption,
                clock,
                if i + 1 < self.nodes.len() { "," } else { "" },
            );
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            let kind = match e.kind {
                CausalEdgeKind::Program => "program-order",
                CausalEdgeKind::Sync => "sync-order",
            };
            let resource = match &e.resource {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "    {{\"from\": {}, \"to\": {}, \"kind\": \"{}\", \"resource\": {}}}{}",
                e.from,
                e.to,
                kind,
                resource,
                if i + 1 < self.edges.len() { "," } else { "" },
            );
        }
        out.push_str("  ],\n");
        match self.race {
            Some((a, b)) => {
                let _ = writeln!(out, "  \"race\": [{a}, {b}]");
            }
            None => out.push_str("  \"race\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

/// Maps a site to the synchronization resource it touches, or `None`
/// for purely thread-local / data steps (program order only).
///
/// Runtime hosts attribute sites as `class#object`
/// ([`SiteId::op`]), which names the resource exactly. VM hosts
/// attribute per-thread instruction locations ([`SiteId::at`]) whose
/// object is a program counter, not a lock identity — their sync
/// operations are conservatively folded into a single `vm-sync`
/// resource, over-approximating sync order (extra HB edges, never
/// missing ones).
fn sync_resource(site: &SiteId) -> Option<String> {
    if site.thread != SiteId::ANY_THREAD {
        // VM-style location site.
        return match site.class {
            "acquire" | "release" | "rmw" | "cas" => Some("vm-sync".to_string()),
            _ => None,
        };
    }
    let namespace = match site.class {
        "acquire" | "release" | "try-acquire" => "lock",
        "cond-wait" | "cond-reacquire" | "notify" => "cv",
        "sem-acquire" | "sem-release" => "sem",
        "event-wait" | "event-set" | "event-reset" => "event",
        "atomic" => "atomic",
        "rw-acquire-w" | "rw-acquire-r" | "rw-release-w" | "rw-release-r" => "rw",
        "barrier-arrive" | "barrier-wait" => "barrier",
        // spawn/join order the threads themselves; the child's first /
        // joiner's next step is already program-ordered behind them in
        // any single trace, but cross-thread creation order matters:
        "spawn" | "join" => "thread-lifecycle",
        _ => return None,
    };
    Some(format!("{}#{}", namespace, site.object))
}

/// The threads named by a data-race outcome, `(second access, first
/// access)` — the order they appear in the detector's description
/// (`"write by T1 races with read by T0 on x"`).
fn racing_threads(outcome: &ExecutionOutcome) -> Option<(Tid, Tid)> {
    let ExecutionOutcome::DataRace { description } = outcome else {
        return None;
    };
    let mut tids = description.split_whitespace().filter_map(|tok| {
        let digits = tok.strip_prefix('T')?;
        digits.parse::<usize>().ok().map(Tid)
    });
    let second = tids.next()?;
    let first = tids.next()?;
    Some((second, first))
}

/// The last step of `thread` before node index `before` that looks like
/// a data access, falling back to its last step of any kind (hosts that
/// do not attribute sites still get a highlighted pair).
fn last_data_access(nodes: &[CausalNode], thread: Tid, before: usize) -> Option<usize> {
    let is_data = |n: &CausalNode| {
        matches!(
            n.site.class,
            "data" | "load" | "store" | "load-arr" | "store-arr"
        )
    };
    let mine = nodes[..before].iter().rev().filter(|n| n.thread == thread);
    mine.clone()
        .find(|n| is_data(n))
        .or_else(|| mine.clone().next())
        .map(|n| n.step)
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icb_core::TraceEntry;

    fn entry(chosen: usize, current: Option<usize>, cur_en: bool, site: SiteId) -> TraceEntry {
        TraceEntry::new(
            Tid(chosen),
            vec![Tid(0), Tid(1)],
            current.map(Tid),
            cur_en,
            false,
        )
        .with_site(site)
    }

    /// T0: data(x), acquire(l), release(l); T1 preempts: acquire(l), data(x).
    fn locked_trace() -> Trace {
        vec![
            entry(0, None, false, SiteId::op("data", 7)),
            entry(0, Some(0), true, SiteId::op("acquire", 1)),
            entry(0, Some(0), true, SiteId::op("release", 1)),
            entry(1, Some(0), true, SiteId::op("acquire", 1)),
            entry(1, Some(1), true, SiteId::op("data", 7)),
        ]
        .into()
    }

    #[test]
    fn covering_edges_generate_happens_before() {
        let g = CausalGraph::from_trace(&locked_trace());
        assert_eq!(g.nodes().len(), 5);
        let program: Vec<(usize, usize)> = g
            .edges()
            .iter()
            .filter(|e| e.kind == CausalEdgeKind::Program)
            .map(|e| (e.from, e.to))
            .collect();
        assert_eq!(program, vec![(0, 1), (1, 2), (3, 4)]);
        let sync: Vec<(usize, usize, &str)> = g
            .edges()
            .iter()
            .filter(|e| e.kind == CausalEdgeKind::Sync)
            .map(|e| (e.from, e.to, e.resource.as_deref().unwrap()))
            .collect();
        assert_eq!(sync, vec![(2, 3, "lock#1")], "release → acquire on lock#1");
    }

    #[test]
    fn node_clocks_encode_the_hb_closure() {
        let g = CausalGraph::from_trace(&locked_trace());
        // T0's data access (step 0) happens before T1's (step 4) via the
        // lock hand-off.
        assert!(g.nodes()[0].clock.le(&g.nodes()[4].clock));
        // But without the lock edge the reverse never holds.
        assert!(!g.nodes()[4].clock.le(&g.nodes()[0].clock));
    }

    #[test]
    fn racing_accesses_are_concurrent_and_highlighted() {
        // No lock: T0 writes x, T1 preempts and writes x.
        let trace: Trace = vec![
            entry(0, None, false, SiteId::op("data", 7)),
            entry(1, Some(0), true, SiteId::op("data", 7)),
        ]
        .into();
        let outcome = ExecutionOutcome::DataRace {
            description: "write by T1 races with write by T0 on x".into(),
        };
        let g = CausalGraph::from_execution(&trace, &outcome);
        let (a, b) = g.race().expect("racing pair resolved");
        assert_eq!((a, b), (0, 1));
        assert_eq!(
            g.nodes()[a].clock.compare(&g.nodes()[b].clock),
            crate::ClockOrdering::Concurrent,
            "racing accesses are unordered by HB"
        );
        let dot = g.to_dot();
        assert!(dot.contains("color=red"), "race highlighted:\n{dot}");
        assert!(dot.contains("label=\"race\""));
    }

    #[test]
    fn dot_and_json_are_deterministic_and_structured() {
        let t = locked_trace();
        let g1 = CausalGraph::from_trace(&t);
        let g2 = CausalGraph::from_trace(&t);
        assert_eq!(g1.to_dot(), g2.to_dot());
        assert_eq!(g1.to_json(), g2.to_json());
        let dot = g1.to_dot();
        assert!(dot.starts_with("digraph happens_before {"));
        assert!(dot.contains("subgraph cluster_t0"));
        assert!(dot.contains("subgraph cluster_t1"));
        assert!(dot.trim_end().ends_with('}'));
        let json = g1.to_json();
        assert!(json.contains("\"kind\": \"sync-order\""));
        assert!(json.contains("\"resource\": \"lock#1\""));
        assert!(json.contains("\"race\": null"));
    }

    #[test]
    fn vm_sites_fold_into_one_sync_resource() {
        let t: Trace = vec![
            entry(0, None, false, SiteId::at(0, "acquire", 3)),
            entry(1, Some(0), true, SiteId::at(1, "acquire", 9)),
            entry(1, Some(1), true, SiteId::at(1, "load", 4)),
        ]
        .into();
        let g = CausalGraph::from_trace(&t);
        let sync: Vec<&str> = g
            .edges()
            .iter()
            .filter(|e| e.kind == CausalEdgeKind::Sync)
            .map(|e| e.resource.as_deref().unwrap())
            .collect();
        assert_eq!(sync, vec!["vm-sync"]);
    }

    #[test]
    fn unattributed_traces_still_get_a_race_pair() {
        let t: Trace = vec![
            entry(0, None, false, SiteId::UNKNOWN),
            entry(1, Some(0), true, SiteId::UNKNOWN),
        ]
        .into();
        let outcome = ExecutionOutcome::DataRace {
            description: "read by T1 races with write by T0 on data[3]".into(),
        };
        let g = CausalGraph::from_execution(&t, &outcome);
        assert_eq!(g.race(), Some((0, 1)));
    }
}
