//! Order-independent fingerprints of the happens-before relation.
//!
//! The paper's stateless checker (Section 4.3) cannot capture concrete
//! program states, so it uses the happens-before relation of the executed
//! prefix as the state representation. Two prefixes that reorder
//! *independent* steps have equal happens-before relations, reach the same
//! program state (Theorem 2's equivalence), and must count as one state
//! for coverage.
//!
//! [`HbFingerprint`] realizes this incrementally: every event contributes
//! `mix(tid, seq, op, vc)` where `vc` is the event's vector clock, and
//! contributions are combined with a *commutative* operation
//! (wrapping addition). Since the vector clock of each event is fully
//! determined by the happens-before relation — not by the linearization —
//! two HB-equivalent prefixes produce identical fingerprints regardless of
//! the order in which the events were folded in.

use crate::clock::VectorClock;
use icb_core::coverage::mix64;
use icb_core::Tid;

/// Incremental happens-before fingerprint of an execution prefix.
///
/// # Examples
///
/// Reordering independent events does not change the fingerprint:
///
/// ```
/// use icb_race::{HbFingerprint, VectorClock, Tid};
/// let vc0: VectorClock = [(Tid(0), 1)].into_iter().collect();
/// let vc1: VectorClock = [(Tid(1), 1)].into_iter().collect();
///
/// let mut a = HbFingerprint::new();
/// a.record(Tid(0), 7, &vc0);
/// a.record(Tid(1), 9, &vc1);
///
/// let mut b = HbFingerprint::new();
/// b.record(Tid(1), 9, &vc1);
/// b.record(Tid(0), 7, &vc0);
///
/// assert_eq!(a.current(), b.current());
/// ```
#[derive(Clone, Debug, Default)]
pub struct HbFingerprint {
    acc: u64,
    seq: Vec<u64>,
    events: usize,
}

impl HbFingerprint {
    /// An empty fingerprint (no events).
    pub fn new() -> Self {
        HbFingerprint::default()
    }

    /// Folds in one event executed by `tid` with operation identity
    /// `op_hash` (e.g. a hash of the accessed variable and access kind)
    /// under vector clock `vc`, returning the fingerprint of the prefix
    /// including this event.
    pub fn record(&mut self, tid: Tid, op_hash: u64, vc: &VectorClock) -> u64 {
        if self.seq.len() <= tid.index() {
            self.seq.resize(tid.index() + 1, 0);
        }
        let seq = self.seq[tid.index()];
        self.seq[tid.index()] += 1;
        self.events += 1;
        let mut h = mix64((tid.index() as u64) ^ seq.rotate_left(17));
        h ^= mix64(op_hash);
        h ^= mix64(vc.hash64());
        self.acc = self.acc.wrapping_add(mix64(h));
        self.acc
    }

    /// The fingerprint of the prefix folded in so far.
    pub fn current(&self) -> u64 {
        self.acc
    }

    /// Number of events folded in.
    pub fn events(&self) -> usize {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(pairs: &[(usize, u32)]) -> VectorClock {
        pairs.iter().map(|&(t, v)| (Tid(t), v)).collect()
    }

    #[test]
    fn empty_fingerprints_are_equal() {
        assert_eq!(
            HbFingerprint::new().current(),
            HbFingerprint::new().current()
        );
    }

    #[test]
    fn commutes_over_independent_events() {
        let e0 = (Tid(0), 100u64, vc(&[(0, 1)]));
        let e1 = (Tid(1), 200u64, vc(&[(1, 1)]));
        let mut a = HbFingerprint::new();
        a.record(e0.0, e0.1, &e0.2);
        a.record(e1.0, e1.1, &e1.2);
        let mut b = HbFingerprint::new();
        b.record(e1.0, e1.1, &e1.2);
        b.record(e0.0, e0.1, &e0.2);
        assert_eq!(a.current(), b.current());
    }

    #[test]
    fn distinguishes_ordered_from_concurrent() {
        // Same events, but in one history T1 saw T0 (vc includes T0's
        // component) — different HB, different fingerprint.
        let mut a = HbFingerprint::new();
        a.record(Tid(0), 1, &vc(&[(0, 1)]));
        a.record(Tid(1), 2, &vc(&[(1, 1)]));
        let mut b = HbFingerprint::new();
        b.record(Tid(0), 1, &vc(&[(0, 1)]));
        b.record(Tid(1), 2, &vc(&[(0, 1), (1, 1)]));
        assert_ne!(a.current(), b.current());
    }

    #[test]
    fn repeated_identical_ops_advance_the_sequence() {
        // Two identical ops by the same thread must both contribute.
        let mut a = HbFingerprint::new();
        let f1 = a.record(Tid(0), 5, &vc(&[(0, 1)]));
        let f2 = a.record(Tid(0), 5, &vc(&[(0, 1)]));
        assert_ne!(f1, f2);
        assert_eq!(a.events(), 2);
    }

    #[test]
    fn op_identity_matters() {
        let mut a = HbFingerprint::new();
        a.record(Tid(0), 1, &vc(&[(0, 1)]));
        let mut b = HbFingerprint::new();
        b.record(Tid(0), 2, &vc(&[(0, 1)]));
        assert_ne!(a.current(), b.current());
    }
}
