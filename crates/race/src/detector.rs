//! Data-race detection via vector clocks.
//!
//! Sync objects (locks, events, semaphores, atomics — everything in the
//! paper's `SyncVar`) carry a clock that transfers happens-before edges
//! between threads. Data variables (`DataVar`) are merely *checked*: every
//! access must be ordered with every previous conflicting access, or the
//! execution contains a data race and the sound reduction of Section 3.1
//! does not apply.
//!
//! The per-variable state is the FastTrack representation: a single write
//! *epoch* `(thread, clock)` plus a read clock; this is an optimization of
//! (and equivalent to) keeping full vector clocks per access.

use crate::clock::VectorClock;
use icb_core::Tid;
use std::fmt;

/// Read or write, for race reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load of a data variable.
    Read,
    /// A store to a data variable.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Description of a detected data race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataRaceInfo {
    /// Index of the data variable (detector-assigned).
    pub var: usize,
    /// Optional human-readable variable name.
    pub var_name: Option<String>,
    /// The earlier access.
    pub first: (Tid, AccessKind),
    /// The later access, unordered with the first.
    pub second: (Tid, AccessKind),
}

impl fmt::Display for DataRaceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match &self.var_name {
            Some(n) => n.clone(),
            None => format!("data[{}]", self.var),
        };
        write!(
            f,
            "{} by {} races with {} by {} on {}",
            self.second.1, self.second.0, self.first.1, self.first.0, name
        )
    }
}

#[derive(Clone, Debug, Default)]
struct DataVarState {
    /// Epoch of the last write: `(thread, clock-at-write)`.
    last_write: Option<(Tid, u32)>,
    /// Clock of the last read *per thread*.
    reads: VectorClock,
    name: Option<String>,
}

/// Vector-clock happens-before tracker and data-race checker for one
/// execution.
///
/// The detector is reset (or rebuilt) for every execution; ids for
/// threads, sync objects and data variables are dense indices assigned by
/// the host runtime.
///
/// # Examples
///
/// ```
/// use icb_race::{RaceDetector, AccessKind, Tid};
/// let mut d = RaceDetector::new();
/// let m = d.new_sync_object();
/// let x = d.new_data_var(Some("x".into()));
///
/// // T0 writes x under the lock; T1 reads x without synchronizing.
/// d.sync_acquire(Tid(0), m);
/// d.data_access(Tid(0), x, AccessKind::Write).unwrap();
/// d.sync_release(Tid(0), m);
/// let race = d.data_access(Tid(1), x, AccessKind::Read).unwrap_err();
/// assert_eq!(race.first.0, Tid(0));
/// assert_eq!(race.second.0, Tid(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RaceDetector {
    threads: Vec<VectorClock>,
    sync: Vec<VectorClock>,
    data: Vec<DataVarState>,
    races_detected: usize,
}

impl RaceDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        RaceDetector::default()
    }

    /// Ensures `tid`'s clock exists. A fresh thread's own component
    /// starts at 1 (the FastTrack convention): a thread's epoch is only
    /// ever *published* followed by a tick, so every published own-value
    /// is strictly below the epochs of later accesses.
    fn ensure_thread(&mut self, tid: Tid) {
        if self.threads.len() <= tid.index() {
            let old = self.threads.len();
            self.threads.resize_with(tid.index() + 1, VectorClock::new);
            for (i, clock) in self.threads.iter_mut().enumerate().skip(old) {
                clock.set(Tid(i), 1);
            }
        }
    }

    /// The current clock of `tid`.
    pub fn thread_clock(&self, tid: Tid) -> VectorClock {
        self.threads.get(tid.index()).cloned().unwrap_or_default()
    }

    /// Registers a new synchronization object, returning its id.
    pub fn new_sync_object(&mut self) -> usize {
        self.sync.push(VectorClock::new());
        self.sync.len() - 1
    }

    /// Registers a new data variable, returning its id.
    pub fn new_data_var(&mut self, name: Option<String>) -> usize {
        self.data.push(DataVarState {
            name,
            ..DataVarState::default()
        });
        self.data.len() - 1
    }

    /// Acquire edge: `tid` inherits everything that happened before the
    /// last release of `sync` (lock acquire, event wait, semaphore P,
    /// atomic load).
    pub fn sync_acquire(&mut self, tid: Tid, sync: usize) {
        self.ensure_thread(tid);
        let clock = self.sync[sync].clone();
        self.threads[tid.index()].join(&clock);
    }

    /// Release edge: subsequent acquirers of `sync` inherit `tid`'s
    /// history (lock release, event set, semaphore V, atomic store).
    ///
    /// Publishes the clock first, *then* ticks, so later accesses by
    /// `tid` have epochs strictly above everything observers can inherit.
    pub fn sync_release(&mut self, tid: Tid, sync: usize) {
        self.ensure_thread(tid);
        let clock = self.threads[tid.index()].clone();
        self.sync[sync].join(&clock);
        self.threads[tid.index()].tick(tid);
    }

    /// Combined acquire + release edge — a full read-modify-write of a
    /// synchronization variable. Every pair of accesses to the same sync
    /// variable becomes ordered, matching the paper's dependence relation
    /// ("same synchronization variable" ⇒ dependent).
    pub fn sync_access(&mut self, tid: Tid, sync: usize) {
        self.sync_acquire(tid, sync);
        self.sync_release(tid, sync);
    }

    /// Fork edge: `child` starts with everything `parent` has done.
    pub fn fork(&mut self, parent: Tid, child: Tid) {
        self.ensure_thread(parent);
        self.ensure_thread(child);
        let pc = self.threads[parent.index()].clone();
        self.threads[child.index()].join(&pc);
        self.threads[parent.index()].tick(parent);
    }

    /// Join edge: `parent` inherits everything `child` did.
    pub fn join(&mut self, parent: Tid, child: Tid) {
        self.ensure_thread(parent);
        self.ensure_thread(child);
        let cc = self.threads[child.index()].clone();
        self.threads[child.index()].tick(child);
        self.threads[parent.index()].join(&cc);
    }

    /// Checks (and records) an access to data variable `var` by `tid`.
    ///
    /// # Errors
    ///
    /// Returns the race description if the access is not ordered by
    /// happens-before with some previous conflicting access.
    pub fn data_access(
        &mut self,
        tid: Tid,
        var: usize,
        kind: AccessKind,
    ) -> Result<(), DataRaceInfo> {
        let result = self.check_data_access(tid, var, kind);
        if result.is_err() {
            self.races_detected += 1;
        }
        result
    }

    fn check_data_access(
        &mut self,
        tid: Tid,
        var: usize,
        kind: AccessKind,
    ) -> Result<(), DataRaceInfo> {
        self.ensure_thread(tid);
        let clock = &self.threads[tid.index()];
        let epoch = clock.get(tid);
        let state = &mut self.data[var];

        // Write-X races: any access conflicts with an unordered write.
        if let Some((wt, wc)) = state.last_write {
            if wt != tid && clock.get(wt) < wc {
                return Err(DataRaceInfo {
                    var,
                    var_name: state.name.clone(),
                    first: (wt, AccessKind::Write),
                    second: (tid, kind),
                });
            }
        }
        match kind {
            AccessKind::Read => {
                state.reads.set(tid, epoch);
            }
            AccessKind::Write => {
                // Read-write races: the write must see every prior read.
                for (rt, rc) in state.reads.iter() {
                    if rt != tid && clock.get(rt) < rc {
                        return Err(DataRaceInfo {
                            var,
                            var_name: state.name.clone(),
                            first: (rt, AccessKind::Read),
                            second: (tid, kind),
                        });
                    }
                }
                state.last_write = Some((tid, epoch));
                state.reads.clear();
                state.reads.set(tid, epoch);
            }
        }
        Ok(())
    }

    /// Number of registered sync objects.
    pub fn sync_objects(&self) -> usize {
        self.sync.len()
    }

    /// Number of registered data variables.
    pub fn data_vars(&self) -> usize {
        self.data.len()
    }

    /// Number of racy accesses flagged so far in this execution — the
    /// count of [`data_access`](RaceDetector::data_access) calls that
    /// returned an error, whether or not the host chose to abort on them.
    pub fn races_detected(&self) -> usize {
        self.races_detected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_locked_accesses_do_not_race() {
        let mut d = RaceDetector::new();
        let m = d.new_sync_object();
        let x = d.new_data_var(None);
        for t in [Tid(0), Tid(1), Tid(0), Tid(1)] {
            d.sync_acquire(t, m);
            d.data_access(t, x, AccessKind::Write).expect("no race");
            d.data_access(t, x, AccessKind::Read).expect("no race");
            d.sync_release(t, m);
        }
    }

    #[test]
    fn unlocked_write_write_races() {
        let mut d = RaceDetector::new();
        let x = d.new_data_var(Some("x".into()));
        d.data_access(Tid(0), x, AccessKind::Write).unwrap();
        let race = d.data_access(Tid(1), x, AccessKind::Write).unwrap_err();
        assert_eq!(race.first, (Tid(0), AccessKind::Write));
        assert_eq!(race.second, (Tid(1), AccessKind::Write));
        assert!(race.to_string().contains("x"));
    }

    #[test]
    fn concurrent_reads_are_fine_but_write_races_with_them() {
        let mut d = RaceDetector::new();
        let x = d.new_data_var(None);
        d.data_access(Tid(0), x, AccessKind::Read).unwrap();
        d.data_access(Tid(1), x, AccessKind::Read).unwrap();
        let race = d.data_access(Tid(2), x, AccessKind::Write).unwrap_err();
        assert_eq!(race.second, (Tid(2), AccessKind::Write));
        assert_eq!(race.first.1, AccessKind::Read);
    }

    #[test]
    fn fork_orders_parent_before_child() {
        let mut d = RaceDetector::new();
        let x = d.new_data_var(None);
        d.data_access(Tid(0), x, AccessKind::Write).unwrap();
        d.fork(Tid(0), Tid(1));
        d.data_access(Tid(1), x, AccessKind::Write)
            .expect("ordered by fork");
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut d = RaceDetector::new();
        let x = d.new_data_var(None);
        d.fork(Tid(0), Tid(1));
        d.data_access(Tid(1), x, AccessKind::Write).unwrap();
        d.join(Tid(0), Tid(1));
        d.data_access(Tid(0), x, AccessKind::Read)
            .expect("ordered by join");
    }

    #[test]
    fn lock_release_acquire_transfers_order() {
        let mut d = RaceDetector::new();
        let m = d.new_sync_object();
        let x = d.new_data_var(None);
        d.sync_acquire(Tid(0), m);
        d.data_access(Tid(0), x, AccessKind::Write).unwrap();
        d.sync_release(Tid(0), m);
        d.sync_acquire(Tid(1), m);
        d.data_access(Tid(1), x, AccessKind::Write)
            .expect("ordered by lock");
    }

    #[test]
    fn different_locks_do_not_order() {
        let mut d = RaceDetector::new();
        let m1 = d.new_sync_object();
        let m2 = d.new_sync_object();
        let x = d.new_data_var(None);
        d.sync_acquire(Tid(0), m1);
        d.data_access(Tid(0), x, AccessKind::Write).unwrap();
        d.sync_release(Tid(0), m1);
        d.sync_acquire(Tid(1), m2);
        assert!(d.data_access(Tid(1), x, AccessKind::Write).is_err());
    }

    #[test]
    fn atomic_accesses_totally_order_each_other() {
        let mut d = RaceDetector::new();
        let a = d.new_sync_object();
        let x = d.new_data_var(None);
        // T0 writes x then "publishes" via atomic; T1 reads the atomic
        // then reads x — the classic message-passing idiom.
        d.data_access(Tid(0), x, AccessKind::Write).unwrap();
        d.sync_access(Tid(0), a);
        d.sync_access(Tid(1), a);
        d.data_access(Tid(1), x, AccessKind::Read)
            .expect("published");
    }

    #[test]
    fn read_then_unordered_write_is_reported_with_read_first() {
        let mut d = RaceDetector::new();
        let x = d.new_data_var(None);
        d.data_access(Tid(0), x, AccessKind::Read).unwrap();
        let race = d.data_access(Tid(1), x, AccessKind::Write).unwrap_err();
        assert_eq!(race.first, (Tid(0), AccessKind::Read));
    }

    #[test]
    fn write_after_release_races_with_acquirer() {
        // Regression: T0 releases the lock and *then* writes x outside
        // the critical section; T1's subsequent acquire does not order
        // the write, so a race must be reported.
        let mut d = RaceDetector::new();
        let m = d.new_sync_object();
        let x = d.new_data_var(None);
        d.sync_acquire(Tid(0), m);
        d.sync_release(Tid(0), m);
        d.data_access(Tid(0), x, AccessKind::Write).unwrap();
        d.sync_acquire(Tid(1), m);
        assert!(d.data_access(Tid(1), x, AccessKind::Read).is_err());
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let mut d = RaceDetector::new();
        let x = d.new_data_var(None);
        for _ in 0..4 {
            d.data_access(Tid(0), x, AccessKind::Write).unwrap();
            d.data_access(Tid(0), x, AccessKind::Read).unwrap();
        }
    }
}
