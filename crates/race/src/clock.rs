//! Vector clocks over dense thread ids.

use icb_core::Tid;
use std::fmt;

/// How two vector clocks relate in the happens-before partial order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockOrdering {
    /// Componentwise equal.
    Equal,
    /// Strictly happens-before (`self < other`).
    Before,
    /// Strictly happens-after (`self > other`).
    After,
    /// Incomparable: the events are concurrent.
    Concurrent,
}

/// A vector clock: one logical clock per thread, indexed by [`Tid`].
///
/// Missing entries are implicitly zero, so clocks over different thread
/// counts compare and join naturally.
///
/// # Examples
///
/// ```
/// use icb_race::{VectorClock, ClockOrdering, Tid};
/// let mut a = VectorClock::new();
/// a.tick(Tid(0));
/// let mut b = a.clone();
/// b.tick(Tid(1));
/// assert!(a.le(&b));
/// assert_eq!(a.compare(&b), ClockOrdering::Before);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// The all-zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The clock component for `tid` (zero if never set).
    #[inline]
    pub fn get(&self, tid: Tid) -> u32 {
        self.entries.get(tid.index()).copied().unwrap_or(0)
    }

    /// Sets the clock component for `tid`.
    pub fn set(&mut self, tid: Tid, value: u32) {
        if self.entries.len() <= tid.index() {
            self.entries.resize(tid.index() + 1, 0);
        }
        self.entries[tid.index()] = value;
    }

    /// Increments `tid`'s component, returning the new value.
    pub fn tick(&mut self, tid: Tid) -> u32 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Componentwise maximum: afterwards `self ⊒ other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.entries.len() < other.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (i, &v) in other.entries.iter().enumerate() {
            if self.entries[i] < v {
                self.entries[i] = v;
            }
        }
    }

    /// Componentwise `self ≤ other` (happens-before or equal).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.entries.get(i).copied().unwrap_or(0))
    }

    /// Full comparison in the happens-before order.
    pub fn compare(&self, other: &VectorClock) -> ClockOrdering {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => ClockOrdering::Equal,
            (true, false) => ClockOrdering::Before,
            (false, true) => ClockOrdering::After,
            (false, false) => ClockOrdering::Concurrent,
        }
    }

    /// Resets all components to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over `(tid, clock)` pairs with nonzero clocks.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, u32)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (Tid(i), v))
    }

    /// Folds the clock into a stable 64-bit hash.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (tid, v) in self.iter() {
            h ^= (tid.index() as u64) << 32 | u64::from(v);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        let mut first = true;
        for (tid, v) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{tid}:{v}")?;
            first = false;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<(Tid, u32)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (Tid, u32)>>(iter: I) -> Self {
        let mut vc = VectorClock::new();
        for (tid, v) in iter {
            vc.set(tid, v);
        }
        vc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(pairs: &[(usize, u32)]) -> VectorClock {
        pairs.iter().map(|&(t, v)| (Tid(t), v)).collect()
    }

    #[test]
    fn get_defaults_to_zero() {
        let c = VectorClock::new();
        assert_eq!(c.get(Tid(3)), 0);
    }

    #[test]
    fn tick_increments() {
        let mut c = VectorClock::new();
        assert_eq!(c.tick(Tid(1)), 1);
        assert_eq!(c.tick(Tid(1)), 2);
        assert_eq!(c.get(Tid(1)), 2);
        assert_eq!(c.get(Tid(0)), 0);
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = vc(&[(0, 3), (1, 1)]);
        let b = vc(&[(1, 5), (2, 2)]);
        a.join(&b);
        assert_eq!(a, vc(&[(0, 3), (1, 5), (2, 2)]));
    }

    #[test]
    fn ordering_cases() {
        let a = vc(&[(0, 1)]);
        let b = vc(&[(0, 1), (1, 1)]);
        let c = vc(&[(1, 2)]);
        assert_eq!(a.compare(&a), ClockOrdering::Equal);
        assert_eq!(a.compare(&b), ClockOrdering::Before);
        assert_eq!(b.compare(&a), ClockOrdering::After);
        assert_eq!(a.compare(&c), ClockOrdering::Concurrent);
    }

    #[test]
    fn le_ignores_trailing_zeros() {
        let a = vc(&[(0, 1), (5, 0)]);
        let b = vc(&[(0, 1)]);
        assert!(a.le(&b));
        assert!(b.le(&a));
        assert_eq!(a.compare(&b), ClockOrdering::Equal);
    }

    #[test]
    fn hash_ignores_zero_padding() {
        let a = vc(&[(0, 1), (4, 0)]);
        let b = vc(&[(0, 1)]);
        assert_eq!(a.hash64(), b.hash64());
        assert_ne!(a.hash64(), vc(&[(0, 2)]).hash64());
    }

    #[test]
    fn display_formats_nonzero_entries() {
        let a = vc(&[(0, 1), (2, 7)]);
        assert_eq!(a.to_string(), "⟨T0:1, T2:7⟩");
    }
}
