//! Happens-before machinery for the stateless checker: vector clocks, a
//! data-race detector, and order-independent fingerprints of the
//! happens-before relation.
//!
//! Section 3.1 of the paper proves that a checker which preempts only at
//! *synchronization-variable* accesses remains sound provided it verifies
//! that every explored execution is free of data races: two accesses to
//! the same data variable must be ordered by the happens-before relation
//!
//! ```text
//! HB(α) = transitive closure of { (i, j) | i < j and
//!            (α(i), α(j) same thread  or  same synchronization variable) }
//! ```
//!
//! The paper's CHESS uses the Goldilocks lockset algorithm to compute
//! this relation; this crate substitutes the classic vector-clock
//! formulation (FastTrack-style epochs for data variables), which computes
//! the *identical* relation — see DESIGN.md for the substitution note.
//!
//! The same clocks yield the paper's state representation for stateless
//! coverage (Section 4.3): [`HbFingerprint`] folds each event and its
//! clock into a commutative hash, so two execution prefixes with equal
//! happens-before relations — i.e. reorderings of independent steps —
//! receive the same fingerprint.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod detector;
mod fingerprint;
pub mod graph;

pub use clock::{ClockOrdering, VectorClock};
pub use detector::{AccessKind, DataRaceInfo, RaceDetector};
pub use fingerprint::HbFingerprint;
pub use graph::{CausalEdge, CausalEdgeKind, CausalGraph, CausalNode};

/// Thread identifier, re-exported from `icb-core` for convenience.
pub use icb_core::Tid;
