//! Data variables: shared memory that is race-checked but — under the
//! sound reduction of Section 3.1 — not a scheduling point.
//!
//! The paper's CHESS dynamically partitions program variables into
//! synchronization variables and data variables. Programs written against
//! this runtime make the partition explicit in the types: everything in
//! [`crate::sync`] is a synchronization variable, and shared plain memory
//! lives in a [`DataVar`]. Every access is checked against the
//! happens-before relation; an unordered pair of conflicting accesses is
//! a data race and fails the execution (making the reduced search sound,
//! Theorems 2 and 3).

use std::cell::UnsafeCell;

use icb_race::AccessKind;

use crate::engine::with_current;

/// A shared data variable holding a `T`.
///
/// Reads and writes are checked for data races. In the default
/// configuration they are *not* scheduling points — the scheduler only
/// interleaves at synchronization operations; with
/// [`RuntimeConfig::preempt_data_vars`](crate::RuntimeConfig) every
/// access becomes a scheduling point too.
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{RuntimeProgram, DataVar, sync::Mutex, thread};
/// use std::sync::Arc;
///
/// // x is always written under the lock: no race, nothing to report.
/// let program = RuntimeProgram::new(|| {
///     let lock = Arc::new(Mutex::new(()));
///     let x = Arc::new(DataVar::new(0u32));
///     let t = {
///         let (lock, x) = (Arc::clone(&lock), Arc::clone(&x));
///         thread::spawn(move || {
///             let _g = lock.lock();
///             x.write(1);
///         })
///     };
///     {
///         let _g = lock.lock();
///         x.write(2);
///     }
///     t.join();
/// });
/// let report = IcbSearch::new(SearchConfig::default()).run(&program);
/// assert!(report.bugs.is_empty());
/// ```
#[derive(Debug)]
pub struct DataVar<T> {
    cell: UnsafeCell<T>,
    var: usize,
}

// SAFETY: the runtime guarantees at most one task of the program under
// test executes at any time (baton scheduling), so all accesses to the
// cell are serialized; the race detector additionally validates that the
// accesses are ordered by happens-before in the program's own semantics.
unsafe impl<T: Send> Sync for DataVar<T> {}
unsafe impl<T: Send> Send for DataVar<T> {}

impl<T> DataVar<T> {
    /// Creates a data variable.
    ///
    /// # Panics
    ///
    /// Panics if called outside a running execution.
    pub fn new(value: T) -> Self {
        let var = with_current(|exec, _| exec.register_data(None));
        DataVar {
            cell: UnsafeCell::new(value),
            var,
        }
    }

    /// Creates a named data variable; the name appears in race reports.
    pub fn named(name: &str, value: T) -> Self {
        let var = with_current(|exec, _| exec.register_data(Some(name.to_string())));
        DataVar {
            cell: UnsafeCell::new(value),
            var,
        }
    }

    fn check(&self, kind: AccessKind) {
        with_current(|exec, tid| exec.data_access(tid, self.var, kind));
    }

    /// Reads the value.
    pub fn read(&self) -> T
    where
        T: Copy,
    {
        self.check(AccessKind::Read);
        // SAFETY: see the Sync impl — accesses are serialized.
        unsafe { *self.cell.get() }
    }

    /// Writes the value.
    pub fn write(&self, value: T) {
        self.check(AccessKind::Write);
        // SAFETY: see the Sync impl.
        unsafe { *self.cell.get() = value }
    }

    /// Applies `f` to a shared reference of the value (counts as a read).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.check(AccessKind::Read);
        // SAFETY: see the Sync impl.
        f(unsafe { &*self.cell.get() })
    }

    /// Applies `f` to an exclusive reference of the value (counts as a
    /// write).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.check(AccessKind::Write);
        // SAFETY: see the Sync impl.
        f(unsafe { &mut *self.cell.get() })
    }
}
