//! A model-checked mutual-exclusion lock.

use std::cell::UnsafeCell;
use std::fmt;

use crate::engine::{try_with_current, with_current, EffectOut};
use crate::op::PendingOp;

/// A mutex whose acquisition order is controlled by the model checker.
///
/// Unlike `std::sync::Mutex` there is no poisoning: an assertion failure
/// anywhere aborts the whole execution, so a guard can never observe a
/// poisoned lock.
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{RuntimeProgram, sync::Mutex, thread};
/// use std::sync::Arc;
///
/// let program = RuntimeProgram::new(|| {
///     let total = Arc::new(Mutex::new(0));
///     let t = {
///         let total = Arc::clone(&total);
///         thread::spawn(move || *total.lock() += 1)
///     };
///     *total.lock() += 1;
///     t.join();
///     assert_eq!(*total.lock(), 2);
/// });
/// let report = IcbSearch::new(SearchConfig::default()).run(&program);
/// assert!(report.completed && report.bugs.is_empty());
/// ```
pub struct Mutex<T> {
    pub(crate) lock_id: usize,
    pub(crate) sync_id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: the model enforces mutual exclusion (the `Acquire` effect only
// fires when the lock is free), and at most one task runs at any time.
unsafe impl<T: Send> Sync for Mutex<T> {}
unsafe impl<T: Send> Send for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex holding `data`.
    ///
    /// # Panics
    ///
    /// Panics if called outside a running execution.
    pub fn new(data: T) -> Self {
        let (lock_id, sync_id) = with_current(|exec, _| exec.register_lock());
        Mutex {
            lock_id,
            sync_id,
            data: UnsafeCell::new(data),
        }
    }

    /// Acquires the lock, blocking (in model time) until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::Acquire {
                    lock: self.lock_id,
                    sync: self.sync_id,
                },
            );
        });
        MutexGuard { mutex: self }
    }

    /// Attempts to acquire the lock without blocking.
    ///
    /// Even a failed attempt is a synchronization operation and hence a
    /// scheduling point.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let acquired = with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::TryAcquire {
                    lock: self.lock_id,
                    sync: self.sync_id,
                },
            )
        });
        match acquired {
            EffectOut::Acquired(true) => Some(MutexGuard { mutex: self }),
            EffectOut::Acquired(false) => None,
            _ => unreachable!("TryAcquire yields Acquired"),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The inner value may be held by another task; show identity only.
        f.debug_struct("Mutex").field("id", &self.lock_id).finish()
    }
}

/// RAII guard: the lock is released (a scheduling point) on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// The mutex this guard locks (associated fn: guards are smart
    /// pointers and must not add inherent methods).
    pub(crate) fn mutex(guard: &MutexGuard<'a, T>) -> &'a Mutex<T> {
        guard.mutex
    }

    /// Reconstructs a guard after a condvar wait reacquired the lock at
    /// the model level.
    pub(crate) fn renew(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
        MutexGuard { mutex }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the model granted this task the lock; no other task
        // runs concurrently.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for Deref, plus the guard is unique.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Never panic in drop: outside an execution (or during an abort
        // unwind) the release is meaningless and skipped.
        let _ = try_with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::Release {
                    lock: self.mutex.lock_id,
                    sync: self.mutex.sync_id,
                },
            );
        });
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("MutexGuard").field(&**self).finish()
    }
}
