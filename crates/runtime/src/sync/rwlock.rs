//! A model-checked reader–writer lock.
//!
//! Built on the same model-level resources as [`Mutex`](crate::sync::Mutex):
//! the read side is a shared-count gate, the write side exclusive.
//! Writer-preference is deliberate (matching Win32 SRW behavior closely
//! enough for testing purposes): a waiting writer blocks new readers
//! from acquiring — this is what makes reader/writer starvation bugs
//! reproducible under the model checker.

use std::cell::UnsafeCell;
use std::fmt;

use crate::engine::{try_with_current, with_current};
use crate::op::PendingOp;

/// A readers–writer lock under model-checker control.
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{RuntimeProgram, sync::RwLock, thread};
/// use std::sync::Arc;
///
/// let program = RuntimeProgram::new(|| {
///     let table = Arc::new(RwLock::new(vec![1, 2, 3]));
///     let readers: Vec<_> = (0..2).map(|_| {
///         let table = Arc::clone(&table);
///         thread::spawn(move || {
///             let snapshot = table.read();
///             assert!(snapshot.len() >= 3);
///         })
///     }).collect();
///     {
///         let mut t = table.write();
///         t.push(4);
///     }
///     for r in readers { r.join(); }
/// });
/// let report = IcbSearch::new(SearchConfig::default()).run(&program);
/// assert!(report.completed && report.bugs.is_empty());
/// ```
pub struct RwLock<T> {
    rw_id: usize,
    sync_id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: the model enforces the reader/writer protocol (shared readers
// XOR one writer), and at most one task executes at any instant.
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}
unsafe impl<T: Send> Send for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a reader–writer lock holding `data`.
    ///
    /// # Panics
    ///
    /// Panics if called outside a running execution.
    pub fn new(data: T) -> Self {
        let (rw_id, sync_id) = with_current(|exec, _| exec.register_rwlock());
        RwLock {
            rw_id,
            sync_id,
            data: UnsafeCell::new(data),
        }
    }

    /// Acquires shared read access; blocks (in model time) while a
    /// writer holds or awaits the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::RwAcquire {
                    rw: self.rw_id,
                    sync: self.sync_id,
                    write: false,
                },
            );
        });
        RwLockReadGuard { lock: self }
    }

    /// Acquires exclusive write access; blocks while any reader or
    /// writer holds the lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::RwAcquire {
                    rw: self.rw_id,
                    sync: self.sync_id,
                    write: true,
                },
            );
        });
        RwLockWriteGuard { lock: self }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    fn release(&self, write: bool) {
        let _ = try_with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::RwRelease {
                    rw: self.rw_id,
                    sync: self.sync_id,
                    write,
                },
            );
        });
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").field("id", &self.rw_id).finish()
    }
}

/// Shared read guard; releases on drop.
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: readers hold shared model-level access; no writer can
        // run concurrently.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release(false);
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLockReadGuard").field(&**self).finish()
    }
}

/// Exclusive write guard; releases on drop.
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the writer holds exclusive model-level access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for Deref, plus the guard is unique.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release(true);
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLockWriteGuard").field(&**self).finish()
    }
}
