//! A model-checked cyclic barrier.

use std::fmt;

use crate::engine::{with_current, EffectOut};
use crate::op::PendingOp;

/// A cyclic barrier for a fixed number of parties.
///
/// [`wait`](Barrier::wait) blocks (in model time) until all parties have
/// arrived, then releases the whole generation; the barrier resets and
/// can be reused. A party count mismatch (fewer tasks than `parties`
/// ever calling `wait`) shows up as a deadlock — which is precisely what
/// the model checker will report.
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{RuntimeProgram, sync::{AtomicUsize, Barrier}, thread};
/// use std::sync::Arc;
///
/// let program = RuntimeProgram::new(|| {
///     let barrier = Arc::new(Barrier::new(2));
///     let phase1 = Arc::new(AtomicUsize::new(0));
///     let ts: Vec<_> = (0..2).map(|_| {
///         let (barrier, phase1) = (Arc::clone(&barrier), Arc::clone(&phase1));
///         thread::spawn(move || {
///             phase1.fetch_add(1);
///             barrier.wait();
///             // After the barrier, both phase-1 increments are visible.
///             assert_eq!(phase1.load(), 2);
///         })
///     }).collect();
///     for t in ts { t.join(); }
/// });
/// let report = IcbSearch::new(SearchConfig::default()).run(&program);
/// assert!(report.completed && report.bugs.is_empty());
/// ```
pub struct Barrier {
    bar_id: usize,
    sync_id: usize,
}

impl Barrier {
    /// Creates a barrier for `parties` tasks.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero or if called outside a running
    /// execution.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        let (bar_id, sync_id) = with_current(|exec, _| exec.register_barrier(parties));
        Barrier { bar_id, sync_id }
    }

    /// Arrives at the barrier and blocks until the current generation
    /// is complete.
    pub fn wait(&self) {
        with_current(|exec, tid| {
            let out = exec.sched_point(
                tid,
                PendingOp::BarrierArrive {
                    bar: self.bar_id,
                    sync: self.sync_id,
                },
            );
            let gen = match out {
                EffectOut::Generation(gen) => gen,
                _ => unreachable!("BarrierArrive yields a generation"),
            };
            exec.sched_point(
                tid,
                PendingOp::BarrierWait {
                    bar: self.bar_id,
                    sync: self.sync_id,
                    gen,
                },
            );
        });
    }
}

impl fmt::Debug for Barrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Barrier").field("id", &self.bar_id).finish()
    }
}
