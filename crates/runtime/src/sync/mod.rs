//! Mocked synchronization primitives — the `SyncVar` set of the paper.
//!
//! Every operation on these types is a *scheduling point*: the model
//! checker regains control before the operation executes and may switch
//! threads (incurring a preemption if the current thread stays enabled).
//! Blocking operations (lock acquisition, waits, semaphore P, join)
//! disable the thread until the resource is available, producing the
//! nonpreempting context switches that ICB leaves unbounded.
//!
//! The set mirrors what CHESS intercepts of the Win32 API: mutexes
//! ([`Mutex`]), condition variables ([`Condvar`]), semaphores
//! ([`Semaphore`]), manual/auto-reset events ([`Event`]), atomic
//! (interlocked) operations ([`AtomicBool`], [`AtomicUsize`],
//! [`AtomicI64`]), reader-writer locks ([`RwLock`], SRW analog) and
//! cyclic barriers ([`Barrier`]).

mod atomic;
mod barrier;
mod channel;
mod condvar;
mod event;
mod mutex;
mod rwlock;
mod semaphore;

pub use atomic::{AtomicBool, AtomicI64, AtomicUsize};
pub use barrier::Barrier;
pub use channel::{Channel, Closed, Full};
pub use condvar::Condvar;
pub use event::Event;
pub use mutex::{Mutex, MutexGuard};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use semaphore::Semaphore;
