//! A model-checked condition variable.

use std::fmt;

use crate::engine::with_current;
use crate::op::PendingOp;
use crate::sync::{Mutex, MutexGuard};

/// A condition variable with Win32/Rust semantics: notifications are
/// lost if nobody is waiting, and `wait` never wakes spuriously at the
/// default `fault_bound: 0` (the model checker explores real
/// nondeterminism through schedules instead). Under a fault bound the
/// wait is a designated fallible operation: the scheduler may inject a
/// spurious wakeup that consumes no notification, so — exactly as on
/// real hardware — callers must re-check their predicate in a loop.
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{RuntimeProgram, sync::{Mutex, Condvar}, thread};
/// use std::sync::Arc;
///
/// let program = RuntimeProgram::new(|| {
///     let pair = Arc::new((Mutex::new(false), Condvar::new()));
///     let t = {
///         let pair = Arc::clone(&pair);
///         thread::spawn(move || {
///             let (lock, cv) = &*pair;
///             let mut ready = lock.lock();
///             *ready = true;
///             cv.notify_one();
///         })
///     };
///     let (lock, cv) = &*pair;
///     let mut ready = lock.lock();
///     while !*ready {
///         ready = cv.wait(ready);
///     }
///     drop(ready);
///     t.join();
/// });
/// let report = IcbSearch::new(SearchConfig::default()).run(&program);
/// assert!(report.completed && report.bugs.is_empty());
/// ```
pub struct Condvar {
    cv_id: usize,
    sync_id: usize,
}

impl Condvar {
    /// Creates a condition variable.
    ///
    /// # Panics
    ///
    /// Panics if called outside a running execution.
    pub fn new() -> Self {
        let (cv_id, sync_id) = with_current(|exec, _| exec.register_condvar());
        Condvar { cv_id, sync_id }
    }

    /// Atomically releases the guarded lock and waits for a
    /// notification, reacquiring the lock before returning.
    ///
    /// This is two scheduling points (release-and-enqueue, then
    /// wake-and-reacquire) — exactly the window in which classic
    /// missed-signal bugs live.
    ///
    /// # Panics
    ///
    /// Panics if the calling task does not hold `guard`'s mutex (it
    /// always does if the guard came from [`Mutex::lock`]).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex: &'a Mutex<T> = MutexGuard::mutex(&guard);
        with_current(|exec, tid| {
            assert!(
                exec.lock_held_by(mutex.lock_id, tid),
                "Condvar::wait requires the caller to hold the mutex"
            );
            // The guard must not run its Drop (a Release point): the wait
            // operation releases the lock itself, atomically with
            // enqueueing.
            std::mem::forget(guard);
            exec.sched_point(
                tid,
                PendingOp::CondWait {
                    cv: self.cv_id,
                    cv_sync: self.sync_id,
                    lock: mutex.lock_id,
                    lock_sync: mutex.sync_id,
                },
            );
            exec.sched_point(
                tid,
                PendingOp::CondReacquire {
                    cv: self.cv_id,
                    cv_sync: self.sync_id,
                    lock: mutex.lock_id,
                    lock_sync: mutex.sync_id,
                },
            );
        });
        MutexGuard::renew(mutex)
    }

    /// Wakes one waiter (the longest-waiting unsignaled one). Lost if no
    /// task is waiting.
    pub fn notify_one(&self) {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::Notify {
                    cv: self.cv_id,
                    cv_sync: self.sync_id,
                    all: false,
                },
            );
        });
    }

    /// Wakes all current waiters.
    pub fn notify_all(&self) {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::Notify {
                    cv: self.cv_id,
                    cv_sync: self.sync_id,
                    all: true,
                },
            );
        });
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").field("id", &self.cv_id).finish()
    }
}
