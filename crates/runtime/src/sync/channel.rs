//! A bounded multi-producer multi-consumer channel, built entirely on
//! the model-checked [`Mutex`] and [`Condvar`].
//!
//! The channel is a *library* composition rather than a primitive: every
//! operation decomposes into the underlying lock and condition-variable
//! scheduling points, so the model checker explores its internal
//! interleavings too — the same way it would explore a channel the
//! program under test implemented itself.

use std::collections::VecDeque;
use std::fmt;

use crate::sync::{Condvar, Mutex};

/// A bounded FIFO channel.
///
/// [`send`](Channel::send) blocks (in model time) while the channel is
/// full, [`recv`](Channel::recv) while it is empty; [`close`](Channel::close)
/// wakes all blocked receivers, which then drain the remaining items and
/// observe `None`.
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{RuntimeProgram, sync::Channel, thread};
/// use std::sync::Arc;
///
/// let program = RuntimeProgram::new(|| {
///     let ch = Arc::new(Channel::bounded(1));
///     let producer = {
///         let ch = Arc::clone(&ch);
///         thread::spawn(move || {
///             for i in 0..2 {
///                 ch.send(i);
///             }
///             ch.close();
///         })
///     };
///     let mut got = Vec::new();
///     while let Some(v) = ch.recv() {
///         got.push(v);
///     }
///     producer.join();
///     assert_eq!(got, vec![0, 1]); // FIFO, nothing lost
/// });
/// let report = IcbSearch::new(SearchConfig::default()).run(&program);
/// assert!(report.completed && report.bugs.is_empty());
/// ```
pub struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Channel<T> {
    /// Creates a channel holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels are not
    /// modeled) or if called outside a running execution.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Sends `value`, blocking while the channel is full.
    ///
    /// Under a fault bound the internal waits may wake spuriously; the
    /// re-check loop here absorbs that, so `send` itself never fails —
    /// use [`try_send`](Channel::try_send) for the fallible variant.
    ///
    /// # Panics
    ///
    /// Panics if the channel is closed — sending after close is a
    /// protocol bug the checker should surface.
    pub fn send(&self, value: T) {
        let mut state = self.state.lock();
        while state.queue.len() == self.capacity && !state.closed {
            state = self.not_full.wait(state);
        }
        assert!(!state.closed, "send on closed channel");
        state.queue.push_back(value);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Receives the next value; returns `None` once the channel is
    /// closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(v);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state);
        }
    }

    /// Attempts to send without blocking, returning the value if the
    /// channel is full right now.
    ///
    /// This is a *designated fallible operation*: under a search with a
    /// fault bound, the scheduler may also fail the send transiently at
    /// the `channel-send` fail point even though space is available —
    /// modeling a timed-out or spuriously rejected bounded send. Callers
    /// must therefore be prepared to retry or shed the value.
    ///
    /// # Errors
    ///
    /// Returns `Err(Full(value))` when the queue is at capacity or a
    /// fault was injected.
    ///
    /// # Panics
    ///
    /// Panics if the channel is closed, as for [`send`](Channel::send).
    pub fn try_send(&self, value: T) -> Result<(), Full<T>> {
        let mut state = self.state.lock();
        assert!(!state.closed, "send on closed channel");
        if state.queue.len() == self.capacity || crate::fail_point("channel-send") {
            return Err(Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Attempts to receive without blocking. `Ok(None)` means the
    /// channel is currently empty but still open.
    ///
    /// # Errors
    ///
    /// Returns `Err(Closed)` once the channel is closed and drained.
    pub fn try_recv(&self) -> Result<Option<T>, Closed> {
        let mut state = self.state.lock();
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.not_full.notify_one();
            return Ok(Some(v));
        }
        if state.closed {
            return Err(Closed);
        }
        Ok(None)
    }

    /// Closes the channel: subsequent `recv`s drain then yield `None`;
    /// blocked receivers and senders wake.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of queued items right now (racy the moment it returns —
    /// useful in assertions guarded by external synchronization only).
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the queue is currently empty (same caveat as
    /// [`len`](Channel::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Error returned by [`Channel::try_send`]: the channel was full (or a
/// fault was injected), and here is the value back.
pub struct Full<T>(pub T);

impl<T> fmt::Debug for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The payload may not be Debug; identity is enough.
        f.write_str("Full(..)")
    }
}

impl<T> fmt::Display for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel full")
    }
}

impl<T> std::error::Error for Full<T> {}

/// Error returned by [`Channel::try_recv`] on a closed, drained channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Closed;

impl fmt::Display for Closed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel closed")
    }
}

impl std::error::Error for Closed {}
