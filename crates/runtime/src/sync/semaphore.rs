//! A model-checked counting semaphore.

use std::fmt;

use crate::engine::with_current;
use crate::op::PendingOp;

/// A counting semaphore (Win32 `CreateSemaphore` analog).
///
/// [`acquire`](Semaphore::acquire) (P) blocks while the count is zero;
/// [`release`](Semaphore::release) (V) increments it. Both are
/// scheduling points.
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{RuntimeProgram, sync::Semaphore, thread};
/// use std::sync::Arc;
///
/// let program = RuntimeProgram::new(|| {
///     let sem = Arc::new(Semaphore::new(0));
///     let t = {
///         let sem = Arc::clone(&sem);
///         thread::spawn(move || sem.release())
///     };
///     sem.acquire(); // waits for the child's release
///     t.join();
/// });
/// let report = IcbSearch::new(SearchConfig::default()).run(&program);
/// assert!(report.completed && report.bugs.is_empty());
/// ```
pub struct Semaphore {
    sem_id: usize,
    sync_id: usize,
}

impl Semaphore {
    /// Creates a semaphore with the given initial count.
    ///
    /// # Panics
    ///
    /// Panics if called outside a running execution.
    pub fn new(initial: usize) -> Self {
        let (sem_id, sync_id) = with_current(|exec, _| exec.register_sem(initial));
        Semaphore { sem_id, sync_id }
    }

    /// Decrements the count, blocking (in model time) while it is zero.
    pub fn acquire(&self) {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::SemAcquire {
                    sem: self.sem_id,
                    sync: self.sync_id,
                },
            );
        });
    }

    /// Increments the count, potentially enabling a blocked acquirer.
    pub fn release(&self) {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::SemRelease {
                    sem: self.sem_id,
                    sync: self.sync_id,
                },
            );
        });
    }
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semaphore")
            .field("id", &self.sem_id)
            .finish()
    }
}
