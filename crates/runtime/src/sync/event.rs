//! A model-checked Win32-style event.

use std::fmt;

use crate::engine::with_current;
use crate::op::PendingOp;

/// A Win32-style event (`CreateEvent` analog), the primitive the paper's
/// driver benchmarks (Bluetooth, APE, Dryad) synchronize with.
///
/// A *manual-reset* event stays signaled until [`reset`](Event::reset);
/// an *auto-reset* event releases exactly one waiter per
/// [`set`](Event::set).
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{RuntimeProgram, sync::Event, thread};
/// use std::sync::Arc;
///
/// let program = RuntimeProgram::new(|| {
///     let done = Arc::new(Event::manual_reset(false));
///     let t = {
///         let done = Arc::clone(&done);
///         thread::spawn(move || done.set())
///     };
///     done.wait();
///     t.join();
/// });
/// let report = IcbSearch::new(SearchConfig::default()).run(&program);
/// assert!(report.completed && report.bugs.is_empty());
/// ```
pub struct Event {
    event_id: usize,
    sync_id: usize,
}

impl Event {
    /// Creates a manual-reset event.
    ///
    /// # Panics
    ///
    /// Panics if called outside a running execution.
    pub fn manual_reset(initially_set: bool) -> Self {
        let (event_id, sync_id) = with_current(|exec, _| exec.register_event(initially_set, true));
        Event { event_id, sync_id }
    }

    /// Creates an auto-reset event: each `set` releases one waiter.
    ///
    /// # Panics
    ///
    /// Panics if called outside a running execution.
    pub fn auto_reset(initially_set: bool) -> Self {
        let (event_id, sync_id) = with_current(|exec, _| exec.register_event(initially_set, false));
        Event { event_id, sync_id }
    }

    /// Blocks (in model time) until the event is signaled. Consumes the
    /// signal if the event is auto-reset.
    pub fn wait(&self) {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::EventWait {
                    event: self.event_id,
                    sync: self.sync_id,
                },
            );
        });
    }

    /// Signals the event.
    pub fn set(&self) {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::EventSet {
                    event: self.event_id,
                    sync: self.sync_id,
                },
            );
        });
    }

    /// Unsignals the event.
    pub fn reset(&self) {
        with_current(|exec, tid| {
            exec.sched_point(
                tid,
                PendingOp::EventReset {
                    event: self.event_id,
                    sync: self.sync_id,
                },
            );
        });
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event").field("id", &self.event_id).finish()
    }
}
