//! Model-checked atomic (interlocked) variables.
//!
//! Atomics are synchronization variables: every access is a scheduling
//! point, every pair of accesses to the same atomic is ordered (the
//! paper's dependence relation makes same-sync-variable steps dependent),
//! and no access can block. This models sequentially consistent atomics,
//! which is what Win32 interlocked operations provide; the work-stealing
//! queue benchmark is built entirely on them.

use std::cell::UnsafeCell;
use std::fmt;

use crate::engine::with_current;
use crate::op::PendingOp;

macro_rules! atomic_type {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        pub struct $name {
            sync_id: usize,
            cell: UnsafeCell<$ty>,
        }

        // SAFETY: accesses happen only in the owning task's turn, after a
        // scheduling point; at most one task runs at any time.
        unsafe impl Sync for $name {}
        unsafe impl Send for $name {}

        impl $name {
            /// Creates the atomic with an initial value.
            ///
            /// # Panics
            ///
            /// Panics if called outside a running execution.
            pub fn new(value: $ty) -> Self {
                let sync_id = with_current(|exec, _| exec.register_atomic());
                $name { sync_id, cell: UnsafeCell::new(value) }
            }

            fn point(&self) {
                with_current(|exec, tid| {
                    exec.sched_point(tid, PendingOp::AtomicAccess { sync: self.sync_id });
                });
            }

            /// Atomically reads the value.
            pub fn load(&self) -> $ty {
                self.point();
                // SAFETY: see the Sync impl.
                unsafe { *self.cell.get() }
            }

            /// Atomically writes the value.
            pub fn store(&self, value: $ty) {
                self.point();
                // SAFETY: see the Sync impl.
                unsafe { *self.cell.get() = value }
            }

            /// Atomically replaces the value, returning the previous one.
            pub fn swap(&self, value: $ty) -> $ty {
                self.point();
                // SAFETY: see the Sync impl.
                unsafe { std::mem::replace(&mut *self.cell.get(), value) }
            }

            /// Atomically stores `new` if the current value equals
            /// `expected`.
            ///
            /// # Errors
            ///
            /// Returns the actual value if it did not match.
            pub fn compare_exchange(&self, expected: $ty, new: $ty) -> Result<$ty, $ty> {
                self.point();
                // SAFETY: see the Sync impl.
                let slot = unsafe { &mut *self.cell.get() };
                if *slot == expected {
                    *slot = new;
                    Ok(expected)
                } else {
                    Err(*slot)
                }
            }

            /// Atomically applies `f`, returning the previous value.
            pub fn fetch_update(&self, f: impl FnOnce($ty) -> $ty) -> $ty {
                self.point();
                // SAFETY: see the Sync impl.
                let slot = unsafe { &mut *self.cell.get() };
                let old = *slot;
                *slot = f(old);
                old
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct(stringify!($name)).field("id", &self.sync_id).finish()
            }
        }
    };
}

atomic_type!(
    /// A model-checked atomic `usize`.
    AtomicUsize,
    usize
);
atomic_type!(
    /// A model-checked atomic `i64`.
    AtomicI64,
    i64
);
atomic_type!(
    /// A model-checked atomic `bool`.
    AtomicBool,
    bool
);

impl AtomicUsize {
    /// Atomically adds, returning the previous value.
    pub fn fetch_add(&self, delta: usize) -> usize {
        self.fetch_update(|v| v.wrapping_add(delta))
    }

    /// Atomically subtracts, returning the previous value.
    pub fn fetch_sub(&self, delta: usize) -> usize {
        self.fetch_update(|v| v.wrapping_sub(delta))
    }
}

impl AtomicI64 {
    /// Atomically adds, returning the previous value.
    pub fn fetch_add(&self, delta: i64) -> i64 {
        self.fetch_update(|v| v.wrapping_add(delta))
    }

    /// Atomically subtracts, returning the previous value.
    pub fn fetch_sub(&self, delta: i64) -> i64 {
        self.fetch_update(|v| v.wrapping_sub(delta))
    }
}
