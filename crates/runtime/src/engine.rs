//! The execution engine: cooperative single-step scheduling of real OS
//! threads under a model-checker-controlled baton.
//!
//! Exactly one thread of the program under test runs at any moment. Each
//! task announces the synchronization operation it is about to perform
//! and parks; the *controller* (the thread that called
//! [`ControlledProgram::execute`](icb_core::ControlledProgram)) computes
//! the enabled set, asks the search's [`Scheduler`] to pick, and hands the
//! baton to the chosen task. The task applies the operation's effect,
//! runs user code up to its next synchronization operation, and returns
//! the baton.
//!
//! Aborts (assertion failure, data race, deadlock, step limit) unwind all
//! parked tasks cooperatively via a private panic payload, so worker
//! threads are always reclaimed.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::{Duration, Instant};

use icb_core::{
    DivergencePayload, ExecutionOutcome, ExecutionResult, FaultPoint, Phase, SchedulePoint,
    Scheduler, SearchObserver, StateSink, Tid, Trace, TraceEntry,
};
use icb_race::{AccessKind, HbFingerprint, RaceDetector};

use crate::config::RuntimeConfig;
use crate::op::{CondWaiter, PendingOp, Resources, FAULT_OP_SALT};
use crate::pool;

/// Whose turn it is to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Turn {
    Controller,
    Task(usize),
}

/// Private panic payload used to unwind tasks on abort.
struct AbortPayload;

fn panic_abort() -> ! {
    std::panic::panic_any(AbortPayload)
}

fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<AbortPayload>()
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

/// Result of applying a pending operation's effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EffectOut {
    None,
    /// `TryAcquire`: whether the lock was taken.
    Acquired(bool),
    /// `BarrierArrive`: the generation the arriving task must outwait.
    Generation(u32),
    /// `Spawn`: the new task's id.
    Spawned(Tid),
    /// `FailPoint`: whether the scheduler injected the fault.
    Fault(bool),
}

#[derive(Debug)]
struct TaskEntry {
    finished: bool,
    pending: Option<PendingOp>,
    /// Whether the scheduler injected a fault into the pending operation
    /// (set by the controller alongside the baton hand-over, consumed by
    /// [`apply_effect`]).
    fault: bool,
}

#[derive(Debug)]
pub(crate) struct ExecInner {
    turn: Turn,
    abort: bool,
    outcome: Option<ExecutionOutcome>,
    tasks: Vec<TaskEntry>,
    alive: usize,
    current: Option<Tid>,
    trace: Trace,
    pub(crate) resources: Resources,
    pub(crate) detector: RaceDetector,
    fingerprint: HbFingerprint,
    pending_fp: Option<u64>,
    /// Race descriptions queued by task threads for the controller to
    /// forward to the observer (tasks cannot reach the `&mut` observer).
    pending_races: Vec<String>,
    steps: usize,
    /// Whether the observer asked for wall-clock phase attribution.
    time_phases: bool,
    /// Wall-clock spent inside the race detector, accrued under the
    /// execution mutex by whichever thread performs the detector call.
    detector_time: Duration,
}

impl ExecInner {
    /// Runs a race-detector operation, attributing its wall-clock to the
    /// race-detection phase when phase timing is on.
    fn with_detector<R>(&mut self, f: impl FnOnce(&mut RaceDetector) -> R) -> R {
        if self.time_phases {
            let t0 = Instant::now();
            let out = f(&mut self.detector);
            self.detector_time += t0.elapsed();
            out
        } else {
            f(&mut self.detector)
        }
    }
}

/// Shared state of one controlled execution.
#[derive(Debug)]
pub(crate) struct Execution {
    inner: StdMutex<ExecInner>,
    cv: StdCondvar,
    pub(crate) config: RuntimeConfig,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
}

/// Task panics are expected (they are how assertion failures surface and
/// how aborts unwind); suppress their default backtrace spew while
/// leaving panics of non-task threads untouched.
fn install_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_task = CURRENT.with(|c| c.borrow().is_some());
            if !in_task {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with the executing task's context.
///
/// # Panics
///
/// Panics if the calling thread is not a task of a running execution —
/// i.e. a runtime primitive was used outside a
/// [`RuntimeProgram`](crate::RuntimeProgram) body.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Execution>, Tid) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let (exec, tid) = borrow.as_ref().expect(
            "icb-runtime primitives may only be used inside a running RuntimeProgram execution",
        );
        f(exec, *tid)
    })
}

/// Like [`with_current`] but returns `None` outside an execution. Used by
/// `Drop` impls, which must never panic.
pub(crate) fn try_with_current<R>(f: impl FnOnce(&Arc<Execution>, Tid) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        borrow.as_ref().map(|(exec, tid)| f(exec, *tid))
    })
}

impl Execution {
    pub(crate) fn new(config: RuntimeConfig) -> Self {
        Execution {
            inner: StdMutex::new(ExecInner {
                turn: Turn::Controller,
                abort: false,
                outcome: None,
                tasks: Vec::new(),
                alive: 0,
                current: None,
                trace: Trace::new(),
                resources: Resources::default(),
                detector: RaceDetector::new(),
                fingerprint: HbFingerprint::new(),
                pending_fp: None,
                pending_races: Vec::new(),
                steps: 0,
                time_phases: false,
                detector_time: Duration::ZERO,
            }),
            cv: StdCondvar::new(),
            config,
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, ExecInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, guard: StdMutexGuard<'a, ExecInner>) -> StdMutexGuard<'a, ExecInner> {
        self.cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Launches the root task and runs the controller loop to completion.
    pub(crate) fn run(
        self: &Arc<Self>,
        body: Box<dyn FnOnce() + Send + 'static>,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn StateSink,
        observer: &mut dyn SearchObserver,
    ) -> ExecutionResult {
        install_panic_hook();
        {
            let mut inner = self.lock();
            inner.tasks.push(TaskEntry {
                finished: false,
                pending: Some(PendingOp::Start),
                fault: false,
            });
            inner.alive = 1;
            inner.time_phases = observer.wants_phase_timing();
        }
        let exec = Arc::clone(self);
        pool::run_on_worker(Box::new(move || task_main(exec, Tid::MAIN, body)));
        self.control(scheduler, sink, observer)
    }

    /// The controller loop: repeatedly compute the enabled set, consult
    /// the scheduler, and hand the baton over.
    fn control(
        &self,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn StateSink,
        observer: &mut dyn SearchObserver,
    ) -> ExecutionResult {
        let max_steps = self.config.max_steps;
        let deadline = self
            .config
            .max_wall_time
            .map(|budget| Instant::now() + budget);
        let mut inner = self.lock();
        let time_phases = inner.time_phases;
        let mut replay_time = Duration::ZERO;
        let mut selection_time = Duration::ZERO;
        loop {
            let t0 = time_phases.then(Instant::now);
            while inner.turn != Turn::Controller {
                match deadline {
                    None => inner = self.wait(inner),
                    Some(dl) => {
                        let now = Instant::now();
                        if now >= dl {
                            break;
                        }
                        inner = self
                            .cv
                            .wait_timeout(inner, dl - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            }
            if let Some(t0) = t0 {
                replay_time += t0.elapsed();
            }
            if inner.turn != Turn::Controller {
                // Watchdog expiry: the baton holder is stuck *between*
                // scheduling points (uninstrumented loop, blocking call),
                // where max_steps cannot see it. Abandon the task — mark
                // it finished so the abort drain below doesn't wait for
                // it; if it ever wakes it unwinds via the abort flag, and
                // handle_task_panic's finished-guard skips the recount.
                if let Turn::Task(i) = inner.turn {
                    if !inner.tasks[i].finished {
                        inner.tasks[i].finished = true;
                        inner.alive -= 1;
                    }
                }
                inner
                    .outcome
                    .get_or_insert(ExecutionOutcome::WatchdogTimeout);
                inner.abort = true;
                inner.turn = Turn::Controller;
                self.cv.notify_all();
            }
            if let Some(fp) = inner.pending_fp.take() {
                sink.visit(fp);
            }
            for race in inner.pending_races.drain(..) {
                observer.race_detected(&race);
            }
            if inner.abort {
                let t0 = time_phases.then(Instant::now);
                while inner.alive > 0 {
                    inner = self.wait(inner);
                }
                if let Some(t0) = t0 {
                    replay_time += t0.elapsed();
                }
                break;
            }
            if inner.alive == 0 {
                break;
            }
            if inner.steps >= max_steps {
                inner
                    .outcome
                    .get_or_insert(ExecutionOutcome::StepLimitExceeded);
                inner.abort = true;
                self.cv.notify_all();
                continue;
            }

            let enabled: Vec<Tid> = inner
                .tasks
                .iter()
                .enumerate()
                .filter(|(i, t)| {
                    !t.finished
                        && t.pending
                            .as_ref()
                            .is_some_and(|op| op_enabled(&inner, Tid(*i), op))
                })
                .map(|(i, _)| Tid(i))
                .collect();

            if enabled.is_empty() {
                let blocked: Vec<Tid> = inner
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.finished)
                    .map(|(i, _)| Tid(i))
                    .collect();
                inner
                    .outcome
                    .get_or_insert(ExecutionOutcome::Deadlock { blocked });
                inner.abort = true;
                self.cv.notify_all();
                continue;
            }

            let current = inner.current;
            let current_enabled = current.is_some_and(|c| enabled.contains(&c));
            let point = SchedulePoint {
                step_index: inner.steps,
                current,
                current_enabled,
                enabled: &enabled,
            };
            let picked = {
                let t0 = time_phases.then(Instant::now);
                let picked = catch_unwind(AssertUnwindSafe(|| scheduler.pick(point)));
                if let Some(t0) = t0 {
                    selection_time += t0.elapsed();
                }
                picked
            };
            let chosen = match picked {
                Ok(chosen) => chosen,
                Err(payload) => {
                    // Scheduler failure: drain the tasks so workers are
                    // reclaimed.
                    inner.abort = true;
                    self.cv.notify_all();
                    while inner.alive > 0 {
                        inner = self.wait(inner);
                    }
                    match payload.downcast::<DivergencePayload>() {
                        Ok(divergence) => {
                            // Replay divergence is recoverable: surface it
                            // as the outcome (with the partial trace) so
                            // the search can quarantine instead of crash.
                            inner.outcome.get_or_insert(divergence.into_outcome());
                            break;
                        }
                        Err(payload) => {
                            drop(inner);
                            resume_unwind(payload);
                        }
                    }
                }
            };
            assert!(
                enabled.contains(&chosen),
                "scheduler chose {chosen}, which is not enabled",
            );
            let pending = inner.tasks[chosen.index()]
                .pending
                .as_ref()
                .expect("enabled task has a pending op");
            let blocking = pending.is_blocking();
            let site = pending.site();
            let fallible = pending.is_fallible();
            // Fault decisions belong to the same step as the scheduling
            // decision: ask right after the pick, before the step index
            // advances, so replay sees one aligned (choice, fault) pair.
            let fault = fallible && {
                let t0 = time_phases.then(Instant::now);
                let fault = scheduler.decide_fault(FaultPoint {
                    step_index: inner.steps,
                    tid: chosen,
                    site,
                });
                if let Some(t0) = t0 {
                    selection_time += t0.elapsed();
                }
                fault
            };
            inner.tasks[chosen.index()].fault = fault;
            inner.trace.push(
                TraceEntry::new(chosen, enabled, current, current_enabled, blocking)
                    .with_site(site)
                    .with_fault(fault),
            );
            inner.steps += 1;
            inner.current = Some(chosen);
            inner.turn = Turn::Task(chosen.index());
            self.cv.notify_all();
        }
        if let Some(fp) = inner.pending_fp.take() {
            sink.visit(fp);
        }
        for race in inner.pending_races.drain(..) {
            observer.race_detected(&race);
        }
        if time_phases {
            // The replay wait covers everything task threads did while the
            // controller was parked, including detector work; subtract it so
            // the three phases partition the controller's wall-clock.
            let detector_time = inner.detector_time;
            observer.phase_time(Phase::Selection, selection_time);
            observer.phase_time(Phase::RaceDetection, detector_time);
            observer.phase_time(Phase::Replay, replay_time.saturating_sub(detector_time));
        }
        let outcome = inner.outcome.take().unwrap_or(ExecutionOutcome::Terminated);
        let trace = std::mem::take(&mut inner.trace);
        drop(inner);
        ExecutionResult::from_trace(outcome, trace)
    }

    /// Announces the next operation, parks until scheduled, then applies
    /// the operation's effect. Called by the running task.
    pub(crate) fn sched_point(&self, tid: Tid, op: PendingOp) -> EffectOut {
        if std::thread::panicking() {
            // Unwinding (abort or user panic): synchronization effects no
            // longer matter; skip silently so Drop impls stay safe.
            return EffectOut::None;
        }
        let mut inner = self.lock();
        if inner.abort {
            drop(inner);
            panic_abort();
        }
        debug_assert_eq!(
            inner.turn,
            Turn::Task(tid.index()),
            "only the running task may announce"
        );
        let is_exit = matches!(op, PendingOp::Exit);
        inner.tasks[tid.index()].pending = Some(op);
        inner.turn = Turn::Controller;
        self.cv.notify_all();
        loop {
            if inner.abort {
                drop(inner);
                panic_abort();
            }
            if inner.turn == Turn::Task(tid.index()) {
                break;
            }
            inner = self.wait(inner);
        }
        let op = inner.tasks[tid.index()]
            .pending
            .take()
            .expect("scheduled task has a pending op");
        let fault = std::mem::take(&mut inner.tasks[tid.index()].fault);
        let out = apply_effect(&mut inner, tid, &op, fault);
        if is_exit {
            inner.turn = Turn::Controller;
            self.cv.notify_all();
        }
        out
    }

    /// Parks a freshly spawned task until its `Start` operation is
    /// scheduled. The parent already installed the pending op.
    fn park_initial(&self, tid: Tid) {
        let mut inner = self.lock();
        loop {
            if inner.abort {
                drop(inner);
                panic_abort();
            }
            if inner.turn == Turn::Task(tid.index()) {
                break;
            }
            inner = self.wait(inner);
        }
        let op = inner.tasks[tid.index()]
            .pending
            .take()
            .expect("started task has the Start op pending");
        debug_assert_eq!(op, PendingOp::Start);
        apply_effect(&mut inner, tid, &op, false);
    }

    /// Records a task's unwinding (user panic or abort).
    fn handle_task_panic(&self, tid: Tid, payload: Box<dyn std::any::Any + Send>) {
        let mut inner = self.lock();
        if !inner.tasks[tid.index()].finished {
            inner.tasks[tid.index()].finished = true;
            inner.alive -= 1;
        }
        if !is_abort(&*payload) {
            if inner.outcome.is_none() {
                inner.outcome = Some(ExecutionOutcome::AssertionFailure {
                    thread: tid,
                    message: payload_message(&*payload),
                });
            }
            inner.abort = true;
        }
        inner.turn = Turn::Controller;
        self.cv.notify_all();
    }

    /// Registers a mutex, returning `(lock id, detector sync id)`.
    pub(crate) fn register_lock(&self) -> (usize, usize) {
        let mut inner = self.lock();
        (inner.resources.new_lock(), inner.detector.new_sync_object())
    }

    /// Registers a condition variable.
    pub(crate) fn register_condvar(&self) -> (usize, usize) {
        let mut inner = self.lock();
        (
            inner.resources.new_condvar(),
            inner.detector.new_sync_object(),
        )
    }

    /// Registers a semaphore with an initial count.
    pub(crate) fn register_sem(&self, count: usize) -> (usize, usize) {
        let mut inner = self.lock();
        (
            inner.resources.new_sem(count),
            inner.detector.new_sync_object(),
        )
    }

    /// Registers an event.
    pub(crate) fn register_event(&self, set: bool, manual: bool) -> (usize, usize) {
        let mut inner = self.lock();
        (
            inner.resources.new_event(set, manual),
            inner.detector.new_sync_object(),
        )
    }

    /// Registers an atomic variable (a pure sync object).
    pub(crate) fn register_atomic(&self) -> usize {
        self.lock().detector.new_sync_object()
    }

    /// Registers a reader-writer lock.
    pub(crate) fn register_rwlock(&self) -> (usize, usize) {
        let mut inner = self.lock();
        (
            inner.resources.new_rwlock(),
            inner.detector.new_sync_object(),
        )
    }

    /// Registers a barrier for `parties` tasks.
    pub(crate) fn register_barrier(&self, parties: usize) -> (usize, usize) {
        let mut inner = self.lock();
        (
            inner.resources.new_barrier(parties),
            inner.detector.new_sync_object(),
        )
    }

    /// Registers a data variable for race checking.
    pub(crate) fn register_data(&self, name: Option<String>) -> usize {
        self.lock().detector.new_data_var(name)
    }

    /// Checks (and in full-interleaving mode, schedules) a data-variable
    /// access by the running task.
    pub(crate) fn data_access(&self, tid: Tid, var: usize, kind: AccessKind) {
        if self.config.preempt_data_vars {
            self.sched_point(tid, PendingOp::DataAccess { var });
        }
        if std::thread::panicking() {
            return;
        }
        let mut inner = self.lock();
        if let Err(race) = inner.with_detector(|d| d.data_access(tid, var, kind)) {
            let description = race.to_string();
            inner.pending_races.push(description.clone());
            if self.config.fail_on_race {
                inner
                    .outcome
                    .get_or_insert(ExecutionOutcome::DataRace { description });
                inner.abort = true;
                self.cv.notify_all();
                drop(inner);
                panic_abort();
            }
        }
    }

    /// Whether the lock is currently held by `tid` (for assertions in
    /// the condvar API).
    pub(crate) fn lock_held_by(&self, lock: usize, tid: Tid) -> bool {
        self.lock().resources.locks[lock] == Some(tid)
    }
}

/// Is the pending operation executable right now?
fn op_enabled(inner: &ExecInner, tid: Tid, op: &PendingOp) -> bool {
    match *op {
        PendingOp::Acquire { lock, .. } => inner.resources.locks[lock].is_none(),
        PendingOp::CondReacquire { cv, lock, .. } => {
            let signaled = inner.resources.condvars[cv]
                .iter()
                .find(|w| w.tid == tid)
                .is_some_and(|w| w.signaled);
            signaled && inner.resources.locks[lock].is_none()
        }
        PendingOp::SemAcquire { sem, .. } => inner.resources.sems[sem] > 0,
        PendingOp::EventWait { event, .. } => inner.resources.events[event].0,
        PendingOp::Join { target } => inner.tasks[target.index()].finished,
        PendingOp::RwAcquire { rw, write, .. } => {
            let state = &inner.resources.rwlocks[rw];
            if write {
                state.readers == 0 && state.writer.is_none()
            } else {
                // Writer preference: a parked writer blocks new readers.
                let writer_waiting = inner.tasks.iter().any(|t| {
                    !t.finished
                        && matches!(
                            t.pending,
                            Some(PendingOp::RwAcquire {
                                rw: r,
                                write: true,
                                ..
                            }) if r == rw
                        )
                });
                state.writer.is_none() && !writer_waiting
            }
        }
        PendingOp::BarrierWait { bar, gen, .. } => inner.resources.barriers[bar].generation > gen,
        _ => true,
    }
}

/// Applies the state transition of `op`, records its happens-before
/// edges, and stores the post-step fingerprint for the controller.
///
/// `fault` is the scheduler's decision for designated fallible
/// operations (always `false` otherwise): a faulted `TryAcquire` fails
/// even when the lock is free, a faulted `CondWait` enqueues the waiter
/// pre-signaled (a spurious wakeup that consumes no notification), and a
/// faulted `FailPoint` trips.
fn apply_effect(inner: &mut ExecInner, tid: Tid, op: &PendingOp, fault: bool) -> EffectOut {
    let mut out = EffectOut::None;
    match *op {
        PendingOp::Start | PendingOp::Yield => {}
        PendingOp::Exit => {
            inner.tasks[tid.index()].finished = true;
            inner.alive -= 1;
        }
        PendingOp::Acquire { lock, sync } => {
            debug_assert!(inner.resources.locks[lock].is_none());
            inner.resources.locks[lock] = Some(tid);
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::Release { lock, sync } => {
            debug_assert_eq!(inner.resources.locks[lock], Some(tid));
            inner.resources.locks[lock] = None;
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::TryAcquire { lock, sync } => {
            inner.with_detector(|d| d.sync_access(tid, sync));
            if !fault && inner.resources.locks[lock].is_none() {
                inner.resources.locks[lock] = Some(tid);
                out = EffectOut::Acquired(true);
            } else {
                out = EffectOut::Acquired(false);
            }
        }
        PendingOp::CondWait {
            cv,
            cv_sync,
            lock,
            lock_sync,
        } => {
            debug_assert_eq!(inner.resources.locks[lock], Some(tid));
            inner.resources.locks[lock] = None;
            // A faulted wait is a spurious wakeup: the waiter enters the
            // queue already signaled, so its reacquire is enabled without
            // any notify — and a later notify_one skips it, consuming no
            // signal on its behalf.
            inner.resources.condvars[cv].push(CondWaiter {
                tid,
                signaled: fault,
            });
            inner.with_detector(|d| d.sync_access(tid, lock_sync));
            inner.with_detector(|d| d.sync_access(tid, cv_sync));
        }
        PendingOp::CondReacquire {
            cv,
            cv_sync,
            lock,
            lock_sync,
        } => {
            let pos = inner.resources.condvars[cv]
                .iter()
                .position(|w| w.tid == tid)
                .expect("reacquiring task is a waiter");
            let waiter = inner.resources.condvars[cv].remove(pos);
            debug_assert!(waiter.signaled);
            debug_assert!(inner.resources.locks[lock].is_none());
            inner.resources.locks[lock] = Some(tid);
            inner.with_detector(|d| d.sync_access(tid, cv_sync));
            inner.with_detector(|d| d.sync_access(tid, lock_sync));
        }
        PendingOp::Notify { cv, cv_sync, all } => {
            if all {
                for w in inner.resources.condvars[cv].iter_mut() {
                    w.signaled = true;
                }
            } else if let Some(w) = inner.resources.condvars[cv]
                .iter_mut()
                .find(|w| !w.signaled)
            {
                w.signaled = true;
            }
            inner.with_detector(|d| d.sync_access(tid, cv_sync));
        }
        PendingOp::SemAcquire { sem, sync } => {
            debug_assert!(inner.resources.sems[sem] > 0);
            inner.resources.sems[sem] -= 1;
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::SemRelease { sem, sync } => {
            inner.resources.sems[sem] += 1;
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::EventWait { event, sync } => {
            debug_assert!(inner.resources.events[event].0);
            if !inner.resources.events[event].1 {
                // Auto-reset events consume the signal.
                inner.resources.events[event].0 = false;
            }
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::EventSet { event, sync } => {
            inner.resources.events[event].0 = true;
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::EventReset { event, sync } => {
            inner.resources.events[event].0 = false;
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::AtomicAccess { sync } => {
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::DataAccess { .. } => {}
        PendingOp::Spawn => {
            let child = Tid(inner.tasks.len());
            inner.tasks.push(TaskEntry {
                finished: false,
                pending: Some(PendingOp::Start),
                fault: false,
            });
            inner.alive += 1;
            inner.with_detector(|d| d.fork(tid, child));
            out = EffectOut::Spawned(child);
        }
        PendingOp::Join { target } => {
            debug_assert!(inner.tasks[target.index()].finished);
            inner.with_detector(|d| d.join(tid, target));
        }
        PendingOp::RwAcquire { rw, sync, write } => {
            let state = &mut inner.resources.rwlocks[rw];
            if write {
                debug_assert!(state.readers == 0 && state.writer.is_none());
                state.writer = Some(tid);
            } else {
                debug_assert!(state.writer.is_none());
                state.readers += 1;
            }
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::RwRelease { rw, sync, write } => {
            let state = &mut inner.resources.rwlocks[rw];
            if write {
                debug_assert_eq!(state.writer, Some(tid));
                state.writer = None;
            } else {
                debug_assert!(state.readers > 0);
                state.readers -= 1;
            }
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::BarrierArrive { bar, sync } => {
            let state = &mut inner.resources.barriers[bar];
            let gen = state.generation;
            state.arrived += 1;
            if state.arrived == state.parties {
                state.arrived = 0;
                state.generation += 1;
            }
            inner.with_detector(|d| d.sync_access(tid, sync));
            out = EffectOut::Generation(gen);
        }
        PendingOp::BarrierWait { sync, .. } => {
            inner.with_detector(|d| d.sync_access(tid, sync));
        }
        PendingOp::FailPoint { .. } => {
            out = EffectOut::Fault(fault);
        }
    }
    let vc = inner.detector.thread_clock(tid);
    let op_hash = if fault {
        // A faulted step is a different program event than its
        // fault-free twin: salt the hash so fingerprints (and hence
        // cache keys and coverage) distinguish the two histories.
        op.op_hash() ^ FAULT_OP_SALT
    } else {
        op.op_hash()
    };
    let fp = inner.fingerprint.record(tid, op_hash, &vc);
    inner.pending_fp = Some(fp);
    out
}

/// The body every task runs on its worker thread.
pub(crate) fn task_main(exec: Arc<Execution>, tid: Tid, body: Box<dyn FnOnce() + Send + 'static>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        exec.park_initial(tid);
        body();
        exec.sched_point(tid, PendingOp::Exit);
    }));
    if let Err(payload) = result {
        exec.handle_task_panic(tid, payload);
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Spawns a child task from the running task (used by
/// [`crate::thread::spawn`]).
pub(crate) fn spawn_task(body: Box<dyn FnOnce() + Send + 'static>) -> Tid {
    with_current(|exec, tid| {
        let out = exec.sched_point(tid, PendingOp::Spawn);
        let child = match out {
            EffectOut::Spawned(child) => child,
            _ => unreachable!("Spawn effect yields a child tid"),
        };
        let exec = Arc::clone(exec);
        pool::run_on_worker(Box::new(move || task_main(exec, child, body)));
        child
    })
}
