//! The [`RuntimeProgram`] adapter: a Rust closure as a
//! [`ControlledProgram`].

use std::fmt;
use std::sync::Arc;

use icb_core::{
    ControlledProgram, ExecutionResult, NoopObserver, Scheduler, SearchObserver, StateSink,
};

use crate::config::RuntimeConfig;
use crate::engine::Execution;

/// A multithreaded Rust program under model-checker control.
///
/// The body closure is executed once per explored schedule, as the main
/// task (`Tid(0)`). It must:
///
/// * create all shared state inside the closure (primitives register
///   themselves with the current execution);
/// * synchronize exclusively through [`crate::sync`], [`crate::thread`]
///   and [`crate::DataVar`] — touching `std::sync` would escape the
///   model checker;
/// * be deterministic apart from scheduling, and terminate under every
///   schedule.
///
/// Assertion failures (any panic in any task) end the execution with
/// [`ExecutionOutcome::AssertionFailure`](icb_core::ExecutionOutcome);
/// the search reports them as bugs together with the replayable schedule.
///
/// # Examples
///
/// See the crate-level documentation.
pub struct RuntimeProgram {
    body: Arc<dyn Fn() + Send + Sync + 'static>,
    config: RuntimeConfig,
}

impl RuntimeProgram {
    /// Wraps a program body with the default configuration.
    pub fn new(body: impl Fn() + Send + Sync + 'static) -> Self {
        RuntimeProgram {
            body: Arc::new(body),
            config: RuntimeConfig::default(),
        }
    }

    /// Wraps a program body with an explicit configuration.
    pub fn with_config(config: RuntimeConfig, body: impl Fn() + Send + Sync + 'static) -> Self {
        RuntimeProgram {
            body: Arc::new(body),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Mutable access to the configuration — e.g. to arm the
    /// [`max_wall_time`](RuntimeConfig::max_wall_time) watchdog on a
    /// program built by a helper.
    pub fn config_mut(&mut self) -> &mut RuntimeConfig {
        &mut self.config
    }
}

impl ControlledProgram for RuntimeProgram {
    fn execute(&self, scheduler: &mut dyn Scheduler, sink: &mut dyn StateSink) -> ExecutionResult {
        self.execute_observed(scheduler, sink, &mut NoopObserver)
    }

    /// Runtime fingerprints are happens-before *hashes* of the
    /// synchronization history, not concrete state: two genuinely
    /// different states can collide, so pruning on them is a heuristic.
    /// This matches the trait default; it is spelled out here because
    /// [`Search::cache_heuristic`](icb_core::search::Search::cache_heuristic)
    /// keys off it.
    fn fingerprints_are_exact(&self) -> bool {
        false
    }

    fn execute_observed(
        &self,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn StateSink,
        observer: &mut dyn SearchObserver,
    ) -> ExecutionResult {
        let exec = Arc::new(Execution::new(self.config));
        let body = Arc::clone(&self.body);
        exec.run(Box::new(move || body()), scheduler, sink, observer)
    }
}

impl fmt::Debug for RuntimeProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeProgram")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}
