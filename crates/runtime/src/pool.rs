//! A tiny reusable worker-thread pool.
//!
//! Every task of every execution runs on an OS thread, and systematic
//! searches perform tens of thousands of executions; spawning fresh
//! threads each time would dominate the cost. Workers are parked in a
//! process-global pool and handed one job (one task lifetime) at a time.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Mutex, OnceLock};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

fn pool() -> &'static Mutex<Vec<Sender<Job>>> {
    static POOL: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Runs `job` on a pooled worker thread (spawning a new worker if the
/// pool is empty). The worker returns itself to the pool when the job
/// finishes, even if it panics.
pub(crate) fn run_on_worker(job: Job) {
    let sender = {
        let mut guard = pool().lock().unwrap_or_else(|e| e.into_inner());
        guard.pop()
    };
    let sender = sender.unwrap_or_else(spawn_worker);
    sender
        .send(job)
        .expect("icb worker thread exited unexpectedly");
}

fn spawn_worker() -> Sender<Job> {
    let (tx, rx) = channel::<Job>();
    let recycled = tx.clone();
    thread::Builder::new()
        .name("icb-task-worker".to_string())
        .spawn(move || {
            for job in rx.iter() {
                // Jobs contain their own panic handling; this guard only
                // protects the pool invariant.
                let _ = catch_unwind(AssertUnwindSafe(job));
                let mut guard = pool().lock().unwrap_or_else(|e| e.into_inner());
                guard.push(recycled.clone());
            }
        })
        .expect("failed to spawn icb worker thread");
    tx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_and_workers_recycle() {
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel();
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            let done = done_tx.clone();
            run_on_worker(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                done.send(()).unwrap();
            }));
        }
        for _ in 0..16 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let (done_tx, done_rx) = channel();
        run_on_worker(Box::new(|| panic!("job panic")));
        run_on_worker(Box::new(move || {
            done_tx.send(()).unwrap();
        }));
        done_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("pool survived a panicking job");
    }
}
