//! A stateless controlled-concurrency runtime — the paper's CHESS
//! analog.
//!
//! Programs under test are ordinary Rust closures written against this
//! crate's [`sync`] primitives, [`thread`] API and [`DataVar`] cells.
//! Wrapped in a [`RuntimeProgram`], they become a
//! [`ControlledProgram`](icb_core::ControlledProgram) that any `icb-core`
//! search strategy can drive: the runtime runs each task on a pooled OS
//! thread, hands exactly one task the baton at a time, and calls back
//! into the search's scheduler at every synchronization operation.
//!
//! Key properties, mirroring Sections 3 and 4 of the paper:
//!
//! * **Scheduling points only at synchronization operations.** Plain
//!   shared memory ([`DataVar`]) is race-checked instead of interleaved;
//!   Section 3.1 proves this reduction sound. Set
//!   [`RuntimeConfig::preempt_data_vars`] for the unreduced search.
//! * **Stateless exploration.** No program state is ever captured;
//!   searches revisit states by replaying schedules. Coverage is counted
//!   over happens-before fingerprints (`icb-race`).
//! * **Deterministic replay.** Given the same schedule, an execution is
//!   bit-for-bit identical — the foundation for reproducing every
//!   reported bug.
//!
//! # Example: the paper's motivating pattern
//!
//! A thread checks a flag and then acts on it; a preemption between
//! check and act violates the invariant:
//!
//! ```
//! use icb_core::search::{IcbSearch, SearchConfig};
//! use icb_runtime::{RuntimeProgram, sync::AtomicBool, thread};
//! use std::sync::Arc;
//!
//! let program = RuntimeProgram::new(|| {
//!     let stopped = Arc::new(AtomicBool::new(false));
//!     let worker = {
//!         let stopped = Arc::clone(&stopped);
//!         thread::spawn(move || {
//!             if !stopped.load() {
//!                 // ... preempted here, the main thread stops the device ...
//!                 assert!(!stopped.load(), "device used after stop");
//!             }
//!         })
//!     };
//!     stopped.store(true);
//!     worker.join();
//! });
//!
//! // The minimal failing interleaving preempts the worker between check
//! // and act, and the main thread before its store: two preemptions —
//! // every one of the paper's 9 new bugs needed at most that many.
//! let bug = IcbSearch::find_minimal_bug(&program, 10_000).expect("found");
//! assert_eq!(bug.preemptions, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod data;
mod engine;
mod op;
mod pool;
mod program;
pub mod sync;
pub mod thread;

pub use config::RuntimeConfig;
pub use data::DataVar;
pub use program::RuntimeProgram;
