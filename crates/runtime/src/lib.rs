//! A stateless controlled-concurrency runtime — the paper's CHESS
//! analog.
//!
//! Programs under test are ordinary Rust closures written against this
//! crate's [`sync`] primitives, [`thread`] API and [`DataVar`] cells.
//! Wrapped in a [`RuntimeProgram`], they become a
//! [`ControlledProgram`](icb_core::ControlledProgram) that any `icb-core`
//! search strategy can drive: the runtime runs each task on a pooled OS
//! thread, hands exactly one task the baton at a time, and calls back
//! into the search's scheduler at every synchronization operation.
//!
//! Key properties, mirroring Sections 3 and 4 of the paper:
//!
//! * **Scheduling points only at synchronization operations.** Plain
//!   shared memory ([`DataVar`]) is race-checked instead of interleaved;
//!   Section 3.1 proves this reduction sound. Set
//!   [`RuntimeConfig::preempt_data_vars`] for the unreduced search.
//! * **Stateless exploration.** No program state is ever captured;
//!   searches revisit states by replaying schedules. Coverage is counted
//!   over happens-before fingerprints (`icb-race`).
//! * **Deterministic replay.** Given the same schedule, an execution is
//!   bit-for-bit identical — the foundation for reproducing every
//!   reported bug.
//!
//! # Example: the paper's motivating pattern
//!
//! A thread checks a flag and then acts on it; a preemption between
//! check and act violates the invariant:
//!
//! ```
//! use icb_core::search::{IcbSearch, SearchConfig};
//! use icb_runtime::{RuntimeProgram, sync::AtomicBool, thread};
//! use std::sync::Arc;
//!
//! let program = RuntimeProgram::new(|| {
//!     let stopped = Arc::new(AtomicBool::new(false));
//!     let worker = {
//!         let stopped = Arc::clone(&stopped);
//!         thread::spawn(move || {
//!             if !stopped.load() {
//!                 // ... preempted here, the main thread stops the device ...
//!                 assert!(!stopped.load(), "device used after stop");
//!             }
//!         })
//!     };
//!     stopped.store(true);
//!     worker.join();
//! });
//!
//! // The minimal failing interleaving preempts the worker between check
//! // and act, and the main thread before its store: two preemptions —
//! // every one of the paper's 9 new bugs needed at most that many.
//! let bug = IcbSearch::find_minimal_bug(&program, 10_000).expect("found");
//! assert_eq!(bug.preemptions, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod data;
mod engine;
mod op;
mod pool;
mod program;
pub mod sync;
pub mod thread;

pub use config::RuntimeConfig;
pub use data::DataVar;
pub use program::RuntimeProgram;

/// Declares a named fallible site and asks the scheduler whether the
/// fault fires here, in this execution.
///
/// Use it wherever the program under test would consult an external
/// operation that can transiently fail — an I/O call, an allocation, an
/// RPC. Under a search with
/// [`fault_bound`](icb_core::search::Search::fault_bound)` ≥ 1` the
/// checker explores both answers systematically, exactly as it explores
/// scheduling decisions; at fault bound 0 (and under any pre-fault
/// scheduler) it always returns `false`.
///
/// Every call is a scheduling point. The site's `name` is its identity
/// in profiles, fault attribution, and happens-before fingerprints; two
/// calls with the same name are the same site.
///
/// Outside a running execution this returns `false` (the fault never
/// fires), so instrumented code also runs unchecked.
///
/// # Examples
///
/// ```
/// use icb_core::search::{IcbSearch, SearchConfig};
/// use icb_runtime::{fail_point, RuntimeProgram};
///
/// let program = RuntimeProgram::new(|| {
///     let mut attempts = 0;
///     while fail_point("journal-write") {
///         attempts += 1;
///         assert!(attempts < 3, "journal write kept failing");
///     }
/// });
/// let config = SearchConfig {
///     fault_bound: 3,
///     ..SearchConfig::default()
/// };
/// let report = IcbSearch::new(config).run(&program);
/// assert_eq!(report.bugs.len(), 1); // three injected failures trip it
/// assert_eq!(report.bugs[0].faults, 3);
/// ```
pub fn fail_point(name: &'static str) -> bool {
    engine::try_with_current(|exec, tid| {
        match exec.sched_point(tid, op::PendingOp::FailPoint { name }) {
            engine::EffectOut::Fault(injected) => injected,
            // An abort unwind skips the effect; the answer is moot.
            _ => false,
        }
    })
    .unwrap_or(false)
}
