//! Runtime configuration.

/// Options controlling how the runtime instruments and bounds one
/// program under test.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Abort an execution after this many scheduling points with
    /// [`ExecutionOutcome::StepLimitExceeded`](icb_core::ExecutionOutcome).
    /// Guards against livelocks: the stateless checker requires
    /// terminating programs.
    pub max_steps: usize,
    /// Make every [`DataVar`](crate::DataVar) access a scheduling point,
    /// as in the basic algorithm of Section 3 of the paper.
    ///
    /// The default (`false`) is the sound reduction of Section 3.1:
    /// scheduling points only at synchronization operations, with
    /// data-race checking keeping the reduction honest. Enabling this
    /// reproduces the unreduced search for the ablation experiment.
    pub preempt_data_vars: bool,
    /// Report data races as execution failures (default `true`). With
    /// `false`, races are ignored — only useful for measuring how many
    /// executions a detector-less checker would explore.
    pub fail_on_race: bool,
    /// Per-execution wall-clock watchdog (default `None` = disabled).
    ///
    /// [`max_steps`](RuntimeConfig::max_steps) catches livelocks that
    /// keep hitting scheduling points, but a task stuck *between* points
    /// (an unbounded uninstrumented loop, a blocking syscall) hangs the
    /// execution forever. With a budget set, the engine abandons such an
    /// execution and reports the recoverable
    /// [`ExecutionOutcome::WatchdogTimeout`](icb_core::ExecutionOutcome)
    /// instead of hanging the search.
    pub max_wall_time: Option<std::time::Duration>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_steps: 20_000,
            preempt_data_vars: false,
            fail_on_race: true,
            max_wall_time: None,
        }
    }
}

impl RuntimeConfig {
    /// The unreduced configuration: preempt at data-variable accesses
    /// too.
    pub fn full_interleaving() -> Self {
        RuntimeConfig {
            preempt_data_vars: true,
            ..RuntimeConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sync_only_with_race_checking() {
        let c = RuntimeConfig::default();
        assert!(!c.preempt_data_vars);
        assert!(c.fail_on_race);
        assert!(c.max_steps > 0);
    }

    #[test]
    fn full_interleaving_preempts_data() {
        assert!(RuntimeConfig::full_interleaving().preempt_data_vars);
    }
}
