//! The synchronization operations a task can be about to perform, and
//! the resource state that decides whether they are enabled.
//!
//! A parked task always has exactly one *pending operation* — the
//! synchronization action it will perform when scheduled next. The
//! controller computes the enabled set by evaluating each pending
//! operation against the current [`Resources`], exactly the "thread
//! blocks only on accesses to synchronization variables" model of
//! Section 3.1.

use icb_core::{SiteId, Tid};

/// A synchronization operation a task is about to execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum PendingOp {
    /// The task's first scheduling point (the paper's block on the
    /// per-thread event `e_t`, already signaled by the parent's spawn).
    Start,
    /// The task's final scheduling point (the paper's fictitious final
    /// block on `e_t`): executing it marks the task terminated.
    Exit,
    /// Acquire a mutex. Enabled iff the lock is free.
    Acquire { lock: usize, sync: usize },
    /// Release a mutex. Always enabled.
    Release { lock: usize, sync: usize },
    /// Try to acquire a mutex without blocking. Always enabled.
    TryAcquire { lock: usize, sync: usize },
    /// Condition-variable wait, phase 1: release the lock and enqueue.
    /// Always enabled (the blocking happens in phase 2).
    CondWait {
        cv: usize,
        cv_sync: usize,
        lock: usize,
        lock_sync: usize,
    },
    /// Condition-variable wait, phase 2: wake up and reacquire the lock.
    /// Enabled iff this waiter has been signaled and the lock is free.
    CondReacquire {
        cv: usize,
        cv_sync: usize,
        lock: usize,
        lock_sync: usize,
    },
    /// Signal one or all waiters. Always enabled.
    Notify {
        cv: usize,
        cv_sync: usize,
        all: bool,
    },
    /// Semaphore P. Enabled iff the count is positive.
    SemAcquire { sem: usize, sync: usize },
    /// Semaphore V. Always enabled.
    SemRelease { sem: usize, sync: usize },
    /// Wait for an event. Enabled iff the event is set.
    EventWait { event: usize, sync: usize },
    /// Set an event. Always enabled.
    EventSet { event: usize, sync: usize },
    /// Reset an event. Always enabled.
    EventReset { event: usize, sync: usize },
    /// Any read-modify-write of an atomic variable. Always enabled.
    AtomicAccess { sync: usize },
    /// A data-variable access, only a scheduling point in
    /// full-interleaving mode. Always enabled.
    DataAccess { var: usize },
    /// Acquire a reader-writer lock. Reads are enabled while no writer
    /// holds or awaits the lock; writes while nobody holds it.
    RwAcquire { rw: usize, sync: usize, write: bool },
    /// Release a reader-writer lock. Always enabled.
    RwRelease { rw: usize, sync: usize, write: bool },
    /// Arrive at a barrier (phase 1). Always enabled; the returned
    /// generation gates phase 2.
    BarrierArrive { bar: usize, sync: usize },
    /// Wait for the barrier generation observed at arrival to pass
    /// (phase 2). Enabled once the generation advances.
    BarrierWait { bar: usize, sync: usize, gen: u32 },
    /// Create a new task. Always enabled.
    Spawn,
    /// Wait for another task to terminate. Enabled iff it has.
    Join { target: Tid },
    /// Voluntary yield: a scheduling point with no effect.
    Yield,
    /// An explicit fallible site declared with
    /// [`fail_point`](crate::fail_point). Always enabled; the scheduler's
    /// fault decision becomes the operation's boolean result.
    FailPoint { name: &'static str },
}

/// XOR-salt folded into [`PendingOp::op_hash`] when a fault is injected
/// into the operation: a faulted step is a different program event than
/// its fault-free twin, so their happens-before fingerprints must
/// diverge (cache keys and coverage counts distinguish them).
pub(crate) const FAULT_OP_SALT: u64 = 0x5eed_fa17_0b5e_55ed;

impl PendingOp {
    /// Whether this operation is *potentially blocking* — the `B` count
    /// of Table 1. `Start`/`Exit` are blocking in the paper's formal
    /// model but are bookkeeping artifacts here, so they are not counted
    /// (Table 1 counts blocking instructions of the program itself).
    pub(crate) fn is_blocking(&self) -> bool {
        matches!(
            self,
            PendingOp::Acquire { .. }
                | PendingOp::CondWait { .. }
                | PendingOp::CondReacquire { .. }
                | PendingOp::SemAcquire { .. }
                | PendingOp::EventWait { .. }
                | PendingOp::Join { .. }
                | PendingOp::RwAcquire { .. }
                | PendingOp::BarrierWait { .. }
        )
    }

    /// Whether this operation is *designated fallible* — the controller
    /// consults [`Scheduler::decide_fault`](icb_core::Scheduler) for it
    /// right after the scheduling decision. A `try_lock` may fail even
    /// when the lock is free, a condvar wait may wake spuriously, and a
    /// [`fail_point`](crate::fail_point) may trip; everything else is
    /// deterministic given the schedule.
    pub(crate) fn is_fallible(&self) -> bool {
        matches!(
            self,
            PendingOp::TryAcquire { .. } | PendingOp::CondWait { .. } | PendingOp::FailPoint { .. }
        )
    }

    /// The profiler site of this operation: its kind plus the resource
    /// it targets, shared across threads (`acquire#3` is the same site
    /// whichever task acquires lock 3). Mirrors [`op_hash`]'s identity
    /// structure in human-readable form.
    ///
    /// [`op_hash`]: PendingOp::op_hash
    pub(crate) fn site(&self) -> SiteId {
        match *self {
            PendingOp::Start => SiteId::op("start", 0),
            PendingOp::Exit => SiteId::op("exit", 0),
            PendingOp::Acquire { lock, .. } => SiteId::op("acquire", lock as u32),
            PendingOp::Release { lock, .. } => SiteId::op("release", lock as u32),
            PendingOp::TryAcquire { lock, .. } => SiteId::op("try-acquire", lock as u32),
            PendingOp::CondWait { cv, .. } => SiteId::op("cond-wait", cv as u32),
            PendingOp::CondReacquire { cv, .. } => SiteId::op("cond-reacquire", cv as u32),
            PendingOp::Notify { cv, .. } => SiteId::op("notify", cv as u32),
            PendingOp::SemAcquire { sem, .. } => SiteId::op("sem-acquire", sem as u32),
            PendingOp::SemRelease { sem, .. } => SiteId::op("sem-release", sem as u32),
            PendingOp::EventWait { event, .. } => SiteId::op("event-wait", event as u32),
            PendingOp::EventSet { event, .. } => SiteId::op("event-set", event as u32),
            PendingOp::EventReset { event, .. } => SiteId::op("event-reset", event as u32),
            PendingOp::AtomicAccess { sync } => SiteId::op("atomic", sync as u32),
            PendingOp::DataAccess { var } => SiteId::op("data", var as u32),
            PendingOp::Spawn => SiteId::op("spawn", 0),
            PendingOp::Join { target } => SiteId::op("join", target.index() as u32),
            PendingOp::Yield => SiteId::op("yield", 0),
            PendingOp::RwAcquire {
                rw, write: true, ..
            } => SiteId::op("rw-acquire-w", rw as u32),
            PendingOp::RwAcquire {
                rw, write: false, ..
            } => SiteId::op("rw-acquire-r", rw as u32),
            PendingOp::RwRelease {
                rw, write: true, ..
            } => SiteId::op("rw-release-w", rw as u32),
            PendingOp::RwRelease {
                rw, write: false, ..
            } => SiteId::op("rw-release-r", rw as u32),
            PendingOp::BarrierArrive { bar, .. } => SiteId::op("barrier-arrive", bar as u32),
            PendingOp::BarrierWait { bar, .. } => SiteId::op("barrier-wait", bar as u32),
            PendingOp::FailPoint { name } => SiteId::op(name, 0),
        }
    }

    /// A stable hash of the operation's identity (kind + resources) for
    /// happens-before fingerprinting.
    pub(crate) fn op_hash(&self) -> u64 {
        fn h(kind: u64, a: usize, b: usize) -> u64 {
            kind ^ ((a as u64) << 16) ^ ((b as u64) << 40)
        }
        match *self {
            PendingOp::Start => h(1, 0, 0),
            PendingOp::Exit => h(2, 0, 0),
            PendingOp::Acquire { lock, .. } => h(3, lock, 0),
            PendingOp::Release { lock, .. } => h(4, lock, 0),
            PendingOp::TryAcquire { lock, .. } => h(5, lock, 0),
            PendingOp::CondWait { cv, lock, .. } => h(6, cv, lock),
            PendingOp::CondReacquire { cv, lock, .. } => h(7, cv, lock),
            PendingOp::Notify { cv, all, .. } => h(8, cv, all as usize),
            PendingOp::SemAcquire { sem, .. } => h(9, sem, 0),
            PendingOp::SemRelease { sem, .. } => h(10, sem, 0),
            PendingOp::EventWait { event, .. } => h(11, event, 0),
            PendingOp::EventSet { event, .. } => h(12, event, 0),
            PendingOp::EventReset { event, .. } => h(13, event, 0),
            PendingOp::AtomicAccess { sync } => h(14, sync, 0),
            PendingOp::DataAccess { var } => h(15, var, 0),
            PendingOp::Spawn => h(16, 0, 0),
            PendingOp::Join { target } => h(17, target.index(), 0),
            PendingOp::Yield => h(18, 0, 0),
            PendingOp::RwAcquire { rw, write, .. } => h(19, rw, write as usize),
            PendingOp::RwRelease { rw, write, .. } => h(20, rw, write as usize),
            PendingOp::BarrierArrive { bar, .. } => h(21, bar, 0),
            PendingOp::BarrierWait { bar, gen, .. } => h(22, bar, gen as usize),
            PendingOp::FailPoint { name } => {
                // The name is the site's whole identity; fold its bytes
                // (FNV-1a) so distinct fail points hash apart.
                let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
                for &byte in name.as_bytes() {
                    acc = (acc ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
                }
                h(23, 0, 0) ^ (acc << 8)
            }
        }
    }
}

/// One waiter in a condition-variable queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct CondWaiter {
    pub(crate) tid: Tid,
    pub(crate) signaled: bool,
}

/// State of one reader-writer lock.
#[derive(Clone, Debug, Default)]
pub(crate) struct RwState {
    pub(crate) readers: usize,
    pub(crate) writer: Option<Tid>,
}

/// State of one barrier.
#[derive(Clone, Debug)]
pub(crate) struct BarrierState {
    pub(crate) parties: usize,
    pub(crate) arrived: usize,
    pub(crate) generation: u32,
}

/// The model-level state of every synchronization object of one
/// execution.
#[derive(Debug, Default)]
pub(crate) struct Resources {
    pub(crate) locks: Vec<Option<Tid>>,
    pub(crate) condvars: Vec<Vec<CondWaiter>>,
    pub(crate) sems: Vec<usize>,
    /// `(is_set, manual_reset)` per event.
    pub(crate) events: Vec<(bool, bool)>,
    pub(crate) rwlocks: Vec<RwState>,
    pub(crate) barriers: Vec<BarrierState>,
}

impl Resources {
    pub(crate) fn new_lock(&mut self) -> usize {
        self.locks.push(None);
        self.locks.len() - 1
    }

    pub(crate) fn new_condvar(&mut self) -> usize {
        self.condvars.push(Vec::new());
        self.condvars.len() - 1
    }

    pub(crate) fn new_sem(&mut self, count: usize) -> usize {
        self.sems.push(count);
        self.sems.len() - 1
    }

    pub(crate) fn new_event(&mut self, set: bool, manual: bool) -> usize {
        self.events.push((set, manual));
        self.events.len() - 1
    }

    pub(crate) fn new_rwlock(&mut self) -> usize {
        self.rwlocks.push(RwState::default());
        self.rwlocks.len() - 1
    }

    pub(crate) fn new_barrier(&mut self, parties: usize) -> usize {
        self.barriers.push(BarrierState {
            parties,
            arrived: 0,
            generation: 0,
        });
        self.barriers.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(PendingOp::Acquire { lock: 0, sync: 0 }.is_blocking());
        assert!(PendingOp::Join { target: Tid(1) }.is_blocking());
        assert!(PendingOp::EventWait { event: 0, sync: 0 }.is_blocking());
        assert!(!PendingOp::Release { lock: 0, sync: 0 }.is_blocking());
        assert!(!PendingOp::Yield.is_blocking());
        assert!(!PendingOp::Start.is_blocking());
        assert!(!PendingOp::Exit.is_blocking());
        assert!(!PendingOp::AtomicAccess { sync: 0 }.is_blocking());
    }

    #[test]
    fn sites_label_kind_and_resource() {
        assert_eq!(
            PendingOp::Acquire { lock: 3, sync: 0 }.site().to_string(),
            "acquire#3"
        );
        assert_eq!(
            PendingOp::RwAcquire {
                rw: 1,
                sync: 0,
                write: true
            }
            .site()
            .to_string(),
            "rw-acquire-w#1"
        );
        assert_eq!(
            PendingOp::Join { target: Tid(2) }.site().to_string(),
            "join#2"
        );
        assert_ne!(
            PendingOp::Acquire { lock: 0, sync: 0 }.site(),
            PendingOp::Release { lock: 0, sync: 0 }.site()
        );
    }

    #[test]
    fn op_hashes_distinguish_kind_and_resource() {
        let a = PendingOp::Acquire { lock: 0, sync: 0 }.op_hash();
        let b = PendingOp::Acquire { lock: 1, sync: 0 }.op_hash();
        let c = PendingOp::Release { lock: 0, sync: 0 }.op_hash();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fallible_classification() {
        assert!(PendingOp::TryAcquire { lock: 0, sync: 0 }.is_fallible());
        assert!(PendingOp::CondWait {
            cv: 0,
            cv_sync: 0,
            lock: 0,
            lock_sync: 0
        }
        .is_fallible());
        assert!(PendingOp::FailPoint { name: "io" }.is_fallible());
        assert!(!PendingOp::Acquire { lock: 0, sync: 0 }.is_fallible());
        assert!(!PendingOp::CondReacquire {
            cv: 0,
            cv_sync: 0,
            lock: 0,
            lock_sync: 0
        }
        .is_fallible());
        assert!(!PendingOp::FailPoint { name: "io" }.is_blocking());
    }

    #[test]
    fn fail_points_hash_and_site_by_name() {
        let a = PendingOp::FailPoint { name: "disk-write" };
        let b = PendingOp::FailPoint { name: "net-send" };
        assert_ne!(a.op_hash(), b.op_hash());
        assert_eq!(a.site().to_string(), "disk-write#0");
        assert_ne!(a.op_hash() ^ FAULT_OP_SALT, a.op_hash());
    }

    #[test]
    fn resource_ids_are_dense() {
        let mut r = Resources::default();
        assert_eq!(r.new_lock(), 0);
        assert_eq!(r.new_lock(), 1);
        assert_eq!(r.new_sem(3), 0);
        assert_eq!(r.sems[0], 3);
        assert_eq!(r.new_event(true, false), 0);
        assert_eq!(r.events[0], (true, false));
    }
}
