//! Controlled task creation — the runtime's analog of `std::thread`.

use icb_core::Tid;

use crate::engine::{self, with_current};
use crate::op::PendingOp;

/// Spawns a new task of the program under test.
///
/// Spawning is a synchronization operation (a scheduling point): the
/// model checker may run other threads before the child executes its
/// first step. The parent's history happens-before everything the child
/// does, exactly like the paper's per-thread start event `e_t`.
///
/// # Panics
///
/// Panics if called outside a running [`RuntimeProgram`](crate::RuntimeProgram)
/// execution.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let tid = engine::spawn_task(Box::new(f));
    JoinHandle { tid }
}

/// Handle to a spawned task; [`join`](JoinHandle::join) blocks until the
/// task terminates.
#[derive(Debug)]
pub struct JoinHandle {
    tid: Tid,
}

impl JoinHandle {
    /// The id of the task this handle refers to.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Blocks the calling task until the target task terminates.
    ///
    /// Joining is a potentially blocking synchronization operation; the
    /// joined task's entire history happens-before the join's return.
    pub fn join(self) {
        let target = self.tid;
        with_current(|exec, tid| {
            exec.sched_point(tid, PendingOp::Join { target });
        });
    }
}

/// The id of the calling task.
///
/// # Panics
///
/// Panics if called outside a running execution.
pub fn current_tid() -> Tid {
    with_current(|_, tid| tid)
}

/// A voluntary scheduling point with no synchronization effect.
///
/// Note that under the ICB scheduler a yield is *not* free for the other
/// threads: scheduling a different enabled thread at the yield point
/// still costs a preemption, because the yielding thread remains enabled.
pub fn yield_now() {
    with_current(|exec, tid| {
        exec.sched_point(tid, PendingOp::Yield);
    });
}
