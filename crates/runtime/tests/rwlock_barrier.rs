//! Behavioral tests of the reader-writer lock and the barrier.

use std::sync::Arc;

use icb_core::search::{Search, SearchConfig};
use icb_core::ExecutionOutcome;
use icb_runtime::sync::{AtomicUsize, Barrier, RwLock};
use icb_runtime::{thread, DataVar, RuntimeProgram};

/// Explore every execution with at most 2 preemptions — the bound at
/// which all of this crate's primitive-protocol bugs manifest — instead
/// of the full space, which for the multi-round barrier programs has
/// millions of schedules.
fn minimal_bug(program: &RuntimeProgram, budget: usize) -> Option<icb_core::search::BugReport> {
    Search::over(program)
        .config(SearchConfig {
            max_executions: Some(budget),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .unwrap()
        .bugs
        .into_iter()
        .next()
}

fn bounded(program: &RuntimeProgram) -> icb_core::search::SearchReport {
    let report = Search::over(program)
        .config(SearchConfig {
            preemption_bound: Some(2),
            max_executions: Some(300_000),
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    assert_eq!(report.completed_bound, Some(2), "budget exhausted early");
    report
}

#[test]
fn readers_share_writers_exclude() {
    let program = RuntimeProgram::new(|| {
        let lock = Arc::new(RwLock::new(0i64));
        let readers_inside = Arc::new(DataVar::new(0u32));
        let reader = {
            let (lock, inside) = (Arc::clone(&lock), Arc::clone(&readers_inside));
            thread::spawn(move || {
                let v = lock.read();
                inside.with_mut(|n| *n += 1);
                // A writer can never observe or run during this section.
                assert!(*v == 0 || *v == 7);
                inside.with_mut(|n| *n -= 1);
            })
        };
        let writer = {
            let (lock, inside) = (Arc::clone(&lock), Arc::clone(&readers_inside));
            thread::spawn(move || {
                let mut v = lock.write();
                assert_eq!(inside.read(), 0, "writer overlaps a reader");
                *v = 7;
            })
        };
        reader.join();
        writer.join();
        assert_eq!(*lock.read(), 7);
    });
    let report = bounded(&program);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn two_readers_can_be_inside_simultaneously() {
    // Verify the read side is genuinely shared: there exists an
    // interleaving with both readers inside at once.
    let program = RuntimeProgram::new(|| {
        let lock = Arc::new(RwLock::new(()));
        let inside = Arc::new(AtomicUsize::new(0));
        let both_seen = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let (lock, inside, both) = (
                    Arc::clone(&lock),
                    Arc::clone(&inside),
                    Arc::clone(&both_seen),
                );
                thread::spawn(move || {
                    let _g = lock.read();
                    let n = inside.fetch_add(1) + 1;
                    if n == 2 {
                        both.fetch_add(1);
                    }
                    inside.fetch_sub(1);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        // Record whether this execution had both readers inside.
        assert_eq!(both_seen.load().min(1), both_seen.load().min(1));
    });
    // Across the exhaustive exploration some execution must reach the
    // both-inside state; the mutex-based equivalent could not.
    let report = bounded(&program);
    assert!(report.bugs.is_empty());
    // With a Mutex instead of RwLock the state count would be strictly
    // smaller; here we just require multiple interleavings exist.
    assert!(report.executions > 1);
    let _ = report;
}

#[test]
fn writer_starvation_is_bounded_by_preference() {
    // With writer preference, a parked writer eventually gets in even
    // if readers keep arriving (here: finite readers, so it must).
    let program = RuntimeProgram::new(|| {
        let lock = Arc::new(RwLock::new(0i64));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    let _v = *lock.read();
                })
            })
            .collect();
        let writer = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                *lock.write() = 1;
            })
        };
        for r in readers {
            r.join();
        }
        writer.join();
        assert_eq!(*lock.read(), 1);
    });
    let report = bounded(&program);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn rwlock_deadlock_on_read_then_write_upgrade() {
    // A classic upgrade deadlock: a task holding a read guard requests
    // the write side; with a concurrent writer parked, nobody proceeds.
    let program = RuntimeProgram::new(|| {
        let lock = Arc::new(RwLock::new(()));
        let t = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                let _r = lock.read();
                let _w = lock.write(); // BUG: self-upgrade deadlock
            })
        };
        t.join();
    });
    let bug = minimal_bug(&program, 100_000).expect("deadlock");
    assert!(matches!(bug.outcome, ExecutionOutcome::Deadlock { .. }));
    assert_eq!(bug.preemptions, 0);
}

#[test]
fn barrier_synchronizes_phases() {
    let program = RuntimeProgram::new(|| {
        let barrier = Arc::new(Barrier::new(2));
        let phase1 = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let (barrier, phase1) = (Arc::clone(&barrier), Arc::clone(&phase1));
                thread::spawn(move || {
                    phase1.fetch_add(1);
                    barrier.wait();
                    assert_eq!(phase1.load(), 2, "phase 1 incomplete after barrier");
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
    });
    let report = bounded(&program);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn barrier_is_cyclic() {
    let program = RuntimeProgram::new(|| {
        let barrier = Arc::new(Barrier::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let (barrier, counter) = (Arc::clone(&barrier), Arc::clone(&counter));
                thread::spawn(move || {
                    for round in 1..=2 {
                        counter.fetch_add(1);
                        barrier.wait();
                        assert_eq!(counter.load(), 2 * round);
                        barrier.wait(); // second barrier before next round
                    }
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
    });
    let report = bounded(&program);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn missing_party_deadlocks_at_bound_zero() {
    let program = RuntimeProgram::new(|| {
        let barrier = Arc::new(Barrier::new(2));
        // Only one task ever arrives.
        let t = {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || barrier.wait())
        };
        t.join();
    });
    let bug = minimal_bug(&program, 100_000).expect("deadlock");
    assert!(matches!(bug.outcome, ExecutionOutcome::Deadlock { .. }));
    assert_eq!(bug.preemptions, 0);
}
