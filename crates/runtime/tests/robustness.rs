//! Crash-resilience behavior of the engine itself: replay divergence
//! surfaces as a recoverable outcome (not a process-killing panic), and
//! the wall-clock watchdog reclaims executions whose tasks get stuck
//! *between* scheduling points, where `max_steps` cannot see them.

use std::sync::Arc;
use std::time::Duration;

use icb_core::search::{Search, SearchConfig};
use icb_core::{ControlledProgram, ExecutionOutcome, NullSink, ReplayScheduler, Schedule, Tid};
use icb_runtime::sync::Mutex;
use icb_runtime::{thread, RuntimeConfig, RuntimeProgram};

#[test]
fn engine_divergence_is_a_recoverable_outcome() {
    let program = RuntimeProgram::new(|| {
        let t = thread::spawn(|| {});
        t.join();
    });
    // Two valid steps, then a thread id that can never be enabled.
    let schedule = Schedule::from(vec![Tid(0), Tid(0), Tid(7)]);
    let mut replay = ReplayScheduler::new(schedule);
    let result = program.execute(&mut replay, &mut NullSink);
    match result.outcome {
        ExecutionOutcome::ReplayDivergence {
            step,
            expected,
            ref actual,
        } => {
            assert_eq!(step, 2);
            assert_eq!(expected, Tid(7));
            assert!(!actual.contains(&expected));
        }
        ref other => panic!("expected ReplayDivergence, got {other:?}"),
    }
    // The partial trace up to the divergence point is preserved.
    assert_eq!(result.trace.len(), 2);

    // Workers were reclaimed: the engine runs normally afterwards.
    let report = Search::over(&program)
        .config(SearchConfig::default())
        .run()
        .unwrap();
    assert!(report.completed);
    assert!(report.bugs.is_empty());
}

#[test]
fn watchdog_times_out_a_stuck_task() {
    let config = RuntimeConfig {
        max_wall_time: Some(Duration::from_millis(25)),
        ..RuntimeConfig::default()
    };
    let program = RuntimeProgram::with_config(config, || {
        // Stuck between scheduling points: no yield, no sync op.
        std::thread::sleep(Duration::from_millis(250));
    });
    let mut replay = ReplayScheduler::new(Schedule::new());
    let result = program.execute(&mut replay, &mut NullSink);
    assert_eq!(result.outcome, ExecutionOutcome::WatchdogTimeout);
}

#[test]
fn watchdog_drains_the_other_tasks() {
    // The stuck task holds the baton while another task is parked; the
    // watchdog must abandon the former and cleanly unwind the latter.
    let config = RuntimeConfig {
        max_wall_time: Some(Duration::from_millis(25)),
        ..RuntimeConfig::default()
    };
    let program = RuntimeProgram::with_config(config, || {
        let lock = Arc::new(Mutex::new(0u32));
        let l2 = Arc::clone(&lock);
        let t = thread::spawn(move || {
            *l2.lock() += 1;
            std::thread::sleep(Duration::from_millis(250));
        });
        t.join();
    });
    let mut replay = ReplayScheduler::new(Schedule::new());
    let result = program.execute(&mut replay, &mut NullSink);
    assert_eq!(result.outcome, ExecutionOutcome::WatchdogTimeout);

    // And the engine is reusable for a healthy program afterwards.
    let healthy = RuntimeProgram::new(|| {
        let t = thread::spawn(|| {});
        t.join();
    });
    let report = Search::over(&healthy)
        .config(SearchConfig::default())
        .run()
        .unwrap();
    assert!(report.completed);
}

#[test]
fn search_survives_a_livelocking_workload_and_reports_trips() {
    let config = RuntimeConfig {
        max_wall_time: Some(Duration::from_millis(20)),
        ..RuntimeConfig::default()
    };
    let program = RuntimeProgram::with_config(config, || {
        std::thread::sleep(Duration::from_millis(200));
    });
    let report = Search::over(&program)
        .config(SearchConfig::default())
        .run()
        .unwrap();
    // The hung execution became a recoverable timeout, not a hang or a
    // bug report, and the search ran to completion.
    assert!(report.watchdog_trips >= 1, "{report}");
    assert!(report.bugs.is_empty());
    assert_eq!(report.buggy_executions, 0);
    assert!(report.to_string().contains("watchdog"), "{report}");
}
