//! Behavioral tests of the controlled runtime: every primitive, every
//! outcome kind, determinism, and the soundness-related configuration
//! switches.

use std::sync::Arc;

use icb_core::search::{Search, SearchConfig, Strategy};
use icb_core::{ControlledProgram, ExecutionOutcome, NullSink, ReplayScheduler};
use icb_runtime::sync::{AtomicUsize, Condvar, Event, Mutex, Semaphore};
use icb_runtime::{thread, DataVar, RuntimeConfig, RuntimeProgram};

fn exhaustive(program: &RuntimeProgram) -> icb_core::search::SearchReport {
    Search::over(program)
        .config(SearchConfig::default())
        .run()
        .unwrap()
}

fn minimal_bug(program: &RuntimeProgram, budget: usize) -> Option<icb_core::search::BugReport> {
    Search::over(program)
        .config(SearchConfig {
            max_executions: Some(budget),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .unwrap()
        .bugs
        .into_iter()
        .next()
}

#[test]
fn single_thread_program_has_one_execution() {
    let program = RuntimeProgram::new(|| {
        let x = DataVar::new(0);
        x.write(1);
        assert_eq!(x.read(), 1);
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert_eq!(report.executions, 1);
    assert!(report.bugs.is_empty());
}

#[test]
fn mutex_guarantees_mutual_exclusion_in_every_interleaving() {
    let program = RuntimeProgram::new(|| {
        let lock = Arc::new(Mutex::new(()));
        let inside = Arc::new(DataVar::new(0u32));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let inside = Arc::clone(&inside);
                thread::spawn(move || {
                    let _g = lock.lock();
                    inside.with_mut(|v| *v += 1);
                    assert_eq!(inside.read(), 1, "two tasks inside the critical section");
                    inside.with_mut(|v| *v -= 1);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
    assert!(report.executions > 1);
}

#[test]
fn lost_update_found_with_one_preemption() {
    let program = RuntimeProgram::new(|| {
        let counter = Arc::new(Mutex::new(0i32));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = *counter.lock();
                    *counter.lock() = v + 1;
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        assert_eq!(*counter.lock(), 2, "lost update");
    });
    let bug = minimal_bug(&program, 100_000).expect("lost update is reachable");
    assert_eq!(bug.preemptions, 1);
    assert!(matches!(
        bug.outcome,
        ExecutionOutcome::AssertionFailure { .. }
    ));
}

#[test]
fn ab_ba_deadlock_is_detected() {
    let program = RuntimeProgram::new(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
        };
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join();
    });
    let bug = minimal_bug(&program, 100_000).expect("deadlock is reachable");
    match &bug.outcome {
        ExecutionOutcome::Deadlock { blocked } => assert_eq!(blocked.len(), 2),
        other => panic!("expected deadlock, got {other}"),
    }
    // One preemption: interleave the two acquisition sequences.
    assert_eq!(bug.preemptions, 1);
}

#[test]
fn try_lock_never_blocks_and_never_deadlocks() {
    let program = RuntimeProgram::new(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = a.lock();
                // try_lock instead of lock: no hold-and-wait, no deadlock.
                let _maybe = b.try_lock();
            })
        };
        {
            let _gb = b.lock();
            let _maybe = a.try_lock();
        }
        t.join();
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn condvar_handshake_is_correct_in_all_interleavings() {
    let program = RuntimeProgram::new(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let t = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                *ready = true;
                cv.notify_one();
            })
        };
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        drop(ready);
        t.join();
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn missed_signal_without_predicate_recheck_deadlocks() {
    // The waiter waits unconditionally; if the notifier runs first the
    // signal is lost (condvar semantics) and the waiter blocks forever.
    let program = RuntimeProgram::new(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let t = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let _g = lock.lock();
                cv.notify_one();
            })
        };
        let (lock, cv) = &*pair;
        let g = lock.lock();
        let g = cv.wait(g); // BUG: no predicate loop
        drop(g);
        t.join();
    });
    let bug = minimal_bug(&program, 100_000).expect("missed signal");
    assert!(matches!(bug.outcome, ExecutionOutcome::Deadlock { .. }));
    // One preemption: the notifier must run between the waiter's spawn
    // and its wait, which requires preempting the main thread once.
    assert_eq!(bug.preemptions, 1);
}

#[test]
fn notify_all_wakes_every_waiter() {
    let program = RuntimeProgram::new(|| {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let (lock, cv) = &*pair;
                    let mut go = lock.lock();
                    while *go == 0 {
                        go = cv.wait(go);
                    }
                })
            })
            .collect();
        let (lock, cv) = &*pair;
        *lock.lock() = 1;
        cv.notify_all();
        for w in waiters {
            w.join();
        }
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn semaphore_bounds_concurrent_holders() {
    let program = RuntimeProgram::new(|| {
        let sem = Arc::new(Semaphore::new(1));
        let inside = Arc::new(DataVar::new(0u32));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let sem = Arc::clone(&sem);
                let inside = Arc::clone(&inside);
                thread::spawn(move || {
                    sem.acquire();
                    inside.with_mut(|v| *v += 1);
                    assert!(inside.read() <= 1, "semaphore exceeded");
                    inside.with_mut(|v| *v -= 1);
                    sem.release();
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn auto_reset_event_releases_exactly_one_waiter() {
    // Two waiters, an auto-reset event initially set: exactly one
    // consumes the signal. The main thread re-sets only after the first
    // waiter got through (acknowledged via semaphore), because setting
    // an already-set event is idempotent — signals do not accumulate.
    let program = RuntimeProgram::new(|| {
        let ev = Arc::new(Event::auto_reset(true));
        let ack = Arc::new(Semaphore::new(0));
        let passed = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let ev = Arc::clone(&ev);
                let ack = Arc::clone(&ack);
                let passed = Arc::clone(&passed);
                thread::spawn(move || {
                    ev.wait();
                    passed.fetch_add(1);
                    ack.release();
                })
            })
            .collect();
        ack.acquire(); // first waiter consumed the initial signal
        ev.set(); // release the second
        for t in ts {
            t.join();
        }
        assert_eq!(passed.load(), 2);
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn manual_reset_event_stays_signaled() {
    let program = RuntimeProgram::new(|| {
        let ev = Arc::new(Event::manual_reset(false));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let ev = Arc::clone(&ev);
                thread::spawn(move || ev.wait())
            })
            .collect();
        ev.set(); // one set releases every (current and future) waiter
        for t in ts {
            t.join();
        }
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn atomic_counter_is_correct_in_all_interleavings() {
    let program = RuntimeProgram::new(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    c.fetch_add(1);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        assert_eq!(c.load(), 2);
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn compare_exchange_loop_is_atomic() {
    let program = RuntimeProgram::new(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || loop {
                    let v = c.load();
                    if c.compare_exchange(v, v + 1).is_ok() {
                        break;
                    }
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        assert_eq!(c.load(), 2);
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn unsynchronized_writes_report_a_data_race() {
    let program = RuntimeProgram::new(|| {
        let x = Arc::new(DataVar::named("x", 0u32));
        let t = {
            let x = Arc::clone(&x);
            thread::spawn(move || x.write(1))
        };
        x.write(2);
        t.join();
    });
    let report = exhaustive(&program);
    let race = report
        .bugs
        .iter()
        .find(|b| matches!(b.outcome, ExecutionOutcome::DataRace { .. }))
        .expect("race reported");
    match &race.outcome {
        ExecutionOutcome::DataRace { description } => assert!(description.contains("x")),
        _ => unreachable!(),
    }
}

#[test]
fn race_checking_can_be_disabled() {
    let config = RuntimeConfig {
        fail_on_race: false,
        ..RuntimeConfig::default()
    };
    let program = RuntimeProgram::with_config(config, || {
        let x = Arc::new(DataVar::new(0u32));
        let t = {
            let x = Arc::clone(&x);
            thread::spawn(move || x.write(1))
        };
        x.write(2);
        t.join();
    });
    let report = exhaustive(&program);
    assert!(report.bugs.is_empty());
}

#[test]
fn step_limit_catches_livelocks() {
    let config = RuntimeConfig {
        max_steps: 50,
        ..RuntimeConfig::default()
    };
    let program = RuntimeProgram::with_config(config, || loop {
        thread::yield_now();
    });
    let mut replay = ReplayScheduler::new(Default::default());
    let result = program.execute(&mut replay, &mut NullSink);
    assert_eq!(result.outcome, ExecutionOutcome::StepLimitExceeded);
    assert!(result.stats.steps <= 51);
}

#[test]
fn replaying_a_bug_schedule_reproduces_it_exactly() {
    let program = RuntimeProgram::new(|| {
        let c = Arc::new(Mutex::new(0i32));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let v = *c.lock();
                    *c.lock() = v + 1;
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        assert_eq!(*c.lock(), 2, "lost update");
    });
    let bug = minimal_bug(&program, 100_000).expect("bug");
    for _ in 0..3 {
        let mut replay = ReplayScheduler::new(bug.schedule.clone());
        let result = program.execute(&mut replay, &mut NullSink);
        assert_eq!(result.outcome, bug.outcome);
        assert_eq!(result.trace.schedule(), bug.schedule);
    }
}

#[test]
fn executions_are_deterministic_across_runs() {
    let program = RuntimeProgram::new(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let t = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                c.fetch_add(1);
            })
        };
        c.fetch_add(1);
        t.join();
    });
    let a = exhaustive(&program);
    let b = exhaustive(&program);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.distinct_states, b.distinct_states);
    assert_eq!(a.coverage_curve, b.coverage_curve);
}

#[test]
fn hb_fingerprints_collapse_equivalent_interleavings() {
    // Two threads touching disjoint atomics: every interleaving is
    // HB-equivalent at the end, so distinct terminal states are shared
    // across executions and total states grow linearly, not
    // combinatorially.
    let program = RuntimeProgram::new(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let t1 = {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                a.fetch_add(1);
                a.fetch_add(1);
            })
        };
        let t2 = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                b.fetch_add(1);
                b.fetch_add(1);
            })
        };
        t1.join();
        t2.join();
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    // Interleavings of the two independent middles differ only in
    // linearization order: far fewer HB-states than naive prefix counts.
    let naive_upper = report.executions * report.max_stats.steps;
    assert!(report.distinct_states * 2 < naive_upper);
}

#[test]
fn full_interleaving_mode_explores_more_schedules() {
    let body = || {
        let x = Arc::new(DataVar::new(0u32));
        let lock = Arc::new(Mutex::new(()));
        let t = {
            let (x, lock) = (Arc::clone(&x), Arc::clone(&lock));
            thread::spawn(move || {
                let _g = lock.lock();
                x.with_mut(|v| *v += 1);
                x.with_mut(|v| *v += 1);
            })
        };
        {
            let _g = lock.lock();
            x.with_mut(|v| *v += 1);
        }
        t.join();
    };
    let reduced = exhaustive(&RuntimeProgram::new(body));
    let full = exhaustive(&RuntimeProgram::with_config(
        RuntimeConfig::full_interleaving(),
        body,
    ));
    assert!(reduced.completed && full.completed);
    assert!(
        full.executions > reduced.executions,
        "full {} !> reduced {}",
        full.executions,
        reduced.executions
    );
    // The reduction is sound: both report the same (zero) bugs.
    assert!(reduced.bugs.is_empty() && full.bugs.is_empty());
}

#[test]
fn join_transfers_happens_before() {
    let program = RuntimeProgram::new(|| {
        let x = Arc::new(DataVar::new(0u32));
        let t = {
            let x = Arc::clone(&x);
            thread::spawn(move || x.write(7))
        };
        t.join();
        assert_eq!(x.read(), 7); // ordered by join: no race, value visible
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn spawn_order_determines_tids() {
    let program = RuntimeProgram::new(|| {
        assert_eq!(thread::current_tid().index(), 0);
        let t1 = thread::spawn(|| {});
        let t2 = thread::spawn(|| {});
        assert_eq!(t1.tid().index(), 1);
        assert_eq!(t2.tid().index(), 2);
        t1.join();
        t2.join();
    });
    let report = exhaustive(&program);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn dfs_and_icb_agree_on_runtime_programs() {
    let body = || {
        let c = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    c.fetch_add(1);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
    };
    let icb = exhaustive(&RuntimeProgram::new(body));
    let dfs_prog = RuntimeProgram::new(body);
    let dfs = Search::over(&dfs_prog)
        .strategy(Strategy::Dfs)
        .config(SearchConfig::default())
        .run()
        .unwrap();
    assert!(icb.completed && dfs.completed);
    assert_eq!(icb.executions, dfs.executions);
    assert_eq!(icb.distinct_states, dfs.distinct_states);
}

#[test]
fn nested_spawns_work() {
    let program = RuntimeProgram::new(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let outer = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                let inner = {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        c.fetch_add(1);
                    })
                };
                inner.join();
                c.fetch_add(1);
            })
        };
        outer.join();
        assert_eq!(c.load(), 2);
    });
    let report = exhaustive(&program);
    assert!(report.completed);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}
