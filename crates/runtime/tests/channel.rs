//! Behavioral tests of the composed bounded channel: FIFO order, item
//! conservation, blocking semantics, and close protocol — all verified
//! across every interleaving within a preemption bound.

use std::sync::Arc;

use icb_core::search::{Search, SearchConfig};
use icb_core::ExecutionOutcome;
use icb_runtime::sync::{Channel, Mutex};
use icb_runtime::{thread, RuntimeProgram};

fn minimal_bug(program: &RuntimeProgram, budget: usize) -> Option<icb_core::search::BugReport> {
    Search::over(program)
        .config(SearchConfig {
            max_executions: Some(budget),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .unwrap()
        .bugs
        .into_iter()
        .next()
}

fn bounded(program: &RuntimeProgram, bound: usize) -> icb_core::search::SearchReport {
    let report = Search::over(program)
        .config(SearchConfig {
            preemption_bound: Some(bound),
            max_executions: Some(400_000),
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    assert!(
        report.completed || report.completed_bound == Some(bound),
        "budget exhausted before completing bound {bound}: {:?}",
        report.completed_bound
    );
    report
}

#[test]
fn spsc_preserves_fifo_order_and_items() {
    let program = RuntimeProgram::new(|| {
        let ch = Arc::new(Channel::bounded(1));
        let producer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                for i in 1..=3 {
                    ch.send(i);
                }
                ch.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = ch.recv() {
            got.push(v);
        }
        producer.join();
        assert_eq!(got, vec![1, 2, 3], "FIFO violated or items lost");
    });
    let report = bounded(&program, 2);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn mpmc_conserves_items() {
    let program = RuntimeProgram::new(|| {
        let ch = Arc::new(Channel::bounded(2));
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let ch = Arc::clone(&ch);
                thread::spawn(move || {
                    ch.send(10 + p);
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let ch = Arc::clone(&ch);
                let consumed = Arc::clone(&consumed);
                thread::spawn(move || {
                    if let Some(v) = ch.recv() {
                        consumed.lock().push(v);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join();
        }
        ch.close();
        for c in consumers {
            c.join();
        }
        let mut sorted = consumed.lock().clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 11], "items lost or duplicated");
    });
    let report = bounded(&program, 1);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn capacity_backpressure_blocks_producer() {
    // Producer sends 2 items into capacity 1 before any recv: the
    // second send must block until the consumer drains — never panic,
    // never drop.
    let program = RuntimeProgram::new(|| {
        let ch = Arc::new(Channel::bounded(1));
        let producer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                ch.send(1);
                ch.send(2); // blocks while full
                ch.close();
            })
        };
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), None);
        producer.join();
    });
    let report = bounded(&program, 2);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}

#[test]
fn forgetting_to_close_deadlocks_receivers() {
    let program = RuntimeProgram::new(|| {
        let ch: Arc<Channel<i32>> = Arc::new(Channel::bounded(1));
        let consumer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || while ch.recv().is_some() {})
        };
        // BUG: producer finishes without close().
        ch.send(1);
        consumer.join();
    });
    let bug = minimal_bug(&program, 200_000).expect("deadlock");
    assert!(matches!(bug.outcome, ExecutionOutcome::Deadlock { .. }));
    assert_eq!(bug.preemptions, 0);
}

#[test]
fn send_after_close_is_reported() {
    let program = RuntimeProgram::new(|| {
        let ch = Arc::new(Channel::bounded(1));
        let closer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || ch.close())
        };
        ch.send(1); // races the close: some interleavings panic
        closer.join();
        let _ = ch.try_recv();
    });
    let bug = minimal_bug(&program, 200_000).expect("protocol bug");
    match &bug.outcome {
        ExecutionOutcome::AssertionFailure { message, .. } => {
            assert!(message.contains("closed channel"), "got: {message}");
        }
        other => panic!("expected the send-after-close assert, got {other}"),
    }
}

#[test]
fn try_recv_distinguishes_empty_from_closed() {
    let program = RuntimeProgram::new(|| {
        let ch: Arc<Channel<i32>> = Arc::new(Channel::bounded(1));
        assert_eq!(ch.try_recv(), Ok(None)); // empty, open
        ch.send(7);
        assert_eq!(ch.try_recv(), Ok(Some(7)));
        ch.close();
        assert_eq!(ch.try_recv(), Err(icb_runtime::sync::Closed));
    });
    let report = bounded(&program, 1);
    assert!(report.bugs.is_empty(), "bugs: {:?}", report.bugs);
}
