//! Fault-injection semantics of the runtime: designated fallible
//! operations (`try_lock`, condvar waits, `try_send`, `fail_point`)
//! under an iterative fault bound, their byte-compatibility at fault
//! bound 0, and deterministic replay of faulted witnesses.

use std::sync::Arc;

use icb_core::search::{Search, SearchConfig, SearchReport, Strategy};
use icb_core::{ControlledProgram, ExecutionOutcome, NullSink, ReplayScheduler};
use icb_runtime::sync::{Channel, Condvar, Mutex};
use icb_runtime::{fail_point, thread, DataVar, RuntimeProgram};

fn search(program: &RuntimeProgram, fault_bound: usize) -> SearchReport {
    Search::over(program)
        .strategy(Strategy::Icb)
        .config(SearchConfig {
            fault_bound,
            ..SearchConfig::default()
        })
        .run()
        .unwrap()
}

/// A single-task program asserting `try_lock` on a free lock succeeds:
/// only an injected fault can fail it.
fn try_lock_believer() -> RuntimeProgram {
    RuntimeProgram::new(|| {
        let lock = Mutex::new(());
        assert!(lock.try_lock().is_some(), "try_lock failed on a free lock");
    })
}

#[test]
fn try_lock_on_free_lock_fails_only_under_fault() {
    let program = try_lock_believer();
    let clean = search(&program, 0);
    assert!(clean.completed && clean.bugs.is_empty());

    let faulty = search(&program, 1);
    let bug = faulty.bugs.first().expect("fault bound 1 exposes the bug");
    assert_eq!(bug.preemptions, 0, "no preemption needed");
    assert_eq!(bug.faults, 1, "exactly one injected fault");
    assert!(matches!(
        bug.outcome,
        ExecutionOutcome::AssertionFailure { .. }
    ));
}

#[test]
fn faulted_witness_replays_deterministically() {
    let program = try_lock_believer();
    let bug = search(&program, 1).bugs.into_iter().next().expect("bug");
    assert_eq!(bug.schedule.fault_count(), 1, "schedule encodes the fault");
    let mut replay = ReplayScheduler::new(bug.schedule.clone());
    let result = program.execute(&mut replay, &mut NullSink);
    assert!(matches!(
        result.outcome,
        ExecutionOutcome::AssertionFailure { .. }
    ));
    assert_eq!(result.trace.schedule(), bug.schedule);
    assert_eq!(result.stats.faults, 1);
}

#[test]
fn spurious_wakeup_breaks_if_recheck_but_not_while_recheck() {
    // The canonical bug: `if !ready { wait() }` instead of `while`.
    let build = |use_while: bool| {
        RuntimeProgram::new(move || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let producer = {
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let (lock, cv) = &*pair;
                    let mut ready = lock.lock();
                    *ready = true;
                    cv.notify_one();
                })
            };
            let (lock, cv) = &*pair;
            let mut ready = lock.lock();
            if use_while {
                while !*ready {
                    ready = cv.wait(ready);
                }
            } else if !*ready {
                ready = cv.wait(ready);
            }
            assert!(*ready, "woke without the condition holding");
            drop(ready);
            producer.join();
        })
    };

    let missing_recheck = build(false);
    assert!(
        search(&missing_recheck, 0).bugs.is_empty(),
        "without spurious wakeups the if-recheck is never caught"
    );
    let bug_report = search(&missing_recheck, 1);
    let bug = bug_report.bugs.first().expect("spurious wakeup trips it");
    assert_eq!(bug.faults, 1);

    let proper = build(true);
    let report = search(&proper, 1);
    assert!(
        report.completed && report.bugs.is_empty(),
        "a while-recheck absorbs every spurious wakeup"
    );
}

#[test]
fn spurious_wakeup_consumes_no_notification() {
    // Two waiters, one notify_one: a spurious wakeup of waiter A must
    // not swallow the signal destined for waiter B (both must exit).
    let program = RuntimeProgram::new(|| {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let (lock, cv) = &*pair;
                    let mut stage = lock.lock();
                    while *stage == 0 {
                        stage = cv.wait(stage);
                    }
                })
            })
            .collect();
        let (lock, cv) = &*pair;
        *lock.lock() = 1;
        cv.notify_all();
        for w in waiters {
            w.join();
        }
    });
    let report = search(&program, 1);
    assert!(report.completed && report.bugs.is_empty());
}

#[test]
fn try_send_fails_transiently_under_fault() {
    let program = RuntimeProgram::new(|| {
        let ch = Channel::bounded(4);
        // Capacity 4, queue empty: only an injected fault can fail it.
        assert!(ch.try_send(1u8).is_ok(), "try_send failed with space free");
    });
    assert!(search(&program, 0).bugs.is_empty());
    let bug_report = search(&program, 1);
    let bug = bug_report.bugs.first().expect("fault fails the send");
    assert_eq!(bug.faults, 1);
}

#[test]
fn fail_point_outside_execution_never_fires() {
    assert!(!fail_point("outside"));
}

#[test]
fn fault_free_search_is_byte_identical_to_fault_bound_zero() {
    // The same program, searched with and without the fault machinery
    // in the schedule space, must produce identical reports when no
    // fault is ever injected: same executions, same schedules.
    let build = || {
        RuntimeProgram::new(|| {
            let v = Arc::new(DataVar::new(0));
            let t = {
                let v = Arc::clone(&v);
                thread::spawn(move || v.with_mut(|x| *x += 1))
            };
            t.join();
            assert_eq!(v.read(), 1);
        })
    };
    let zero = search(&build(), 0);
    let one = search(&build(), 1);
    assert_eq!(zero.executions, one.executions);
    assert_eq!(zero.distinct_states, one.distinct_states);
    assert!(zero.completed && one.completed);
}

#[test]
fn fault_changes_the_fingerprint_history() {
    // A faulted try_lock and a fault-free one are different program
    // events: the search at fault bound 1 must observe strictly more
    // distinct states than at bound 0.
    let program = RuntimeProgram::new(|| {
        let lock = Mutex::new(());
        let _ = lock.try_lock();
    });
    let zero = search(&program, 0);
    let one = search(&program, 1);
    assert!(one.executions > zero.executions, "fault branch explored");
    assert!(
        one.distinct_states > zero.distinct_states,
        "faulted history fingerprints apart"
    );
}
