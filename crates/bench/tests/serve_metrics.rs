//! End-to-end checks of the live introspection layer: a parallel search
//! wired to a [`MetricsRegistry`] and served over [`MetricsServer`] must
//! expose an `icb_executions_total` that agrees *exactly* with the final
//! [`SearchReport`], and the `explore` binary must honour
//! `--serve-metrics` / `top --once` end to end.

use std::process::Command;
use std::sync::Arc;

use icb_core::search::{Search, SearchConfig};
use icb_core::MetricsRegistry;
use icb_telemetry::{parse_exposition, scrape, series_value, MetricsServer};
use icb_workloads::registry::all_benchmarks;

#[test]
fn served_executions_match_the_final_report_at_jobs_2() {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "Bluetooth")
        .expect("Bluetooth workload");
    let program = (bench.correct)();

    let registry = Arc::new(MetricsRegistry::new());
    let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let addr = server.addr();

    let report = Search::over(&program)
        .config(SearchConfig {
            preemption_bound: Some(2),
            ..SearchConfig::default()
        })
        .jobs(2)
        .metrics(Arc::clone(&registry))
        .run()
        .unwrap();

    // Scrape *after* the run: the bridge pins the registry's cumulative
    // totals to the final report on `search_finished`, so the page and
    // the report must agree to the execution.
    let parsed = parse_exposition(&scrape(addr).unwrap());
    assert_eq!(
        series_value(&parsed, "icb_executions_total"),
        Some(report.executions as f64),
        "served counter diverged from the report"
    );
    assert_eq!(
        series_value(&parsed, "icb_distinct_states"),
        Some(report.distinct_states as f64),
    );
    assert_eq!(series_value(&parsed, "icb_workers"), Some(2.0));
    // Both workers did measurable work and their per-worker execution
    // counters sum to at least the report's total (stolen work items
    // replay shared prefixes, so the sum may exceed it — never trail it).
    let per_worker: f64 = (0..2)
        .map(|w| {
            series_value(
                &parsed,
                &format!("icb_worker_executions_total{{worker=\"{w}\"}}"),
            )
            .unwrap_or(0.0)
        })
        .sum();
    assert!(
        per_worker >= report.executions as f64,
        "per-worker counters {per_worker} trail the report {}",
        report.executions
    );
    server.shutdown();
}

#[test]
fn explore_serves_metrics_and_top_renders_a_frame() {
    let output = Command::new(env!("CARGO_BIN_EXE_explore"))
        .args([
            "run",
            "Bluetooth",
            "--bound",
            "2",
            "--jobs",
            "2",
            "--serve-metrics",
            "127.0.0.1:0",
        ])
        .output()
        .expect("explore runs");
    assert!(
        output.status.success(),
        "explore failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("serving metrics at http://127.0.0.1:"),
        "no serving banner: {stderr}"
    );

    // `explore top` against a dead endpoint reports a scrape error
    // rather than hanging or panicking.
    let dead = Command::new(env!("CARGO_BIN_EXE_explore"))
        .args(["top", "127.0.0.1:1", "--once"])
        .output()
        .expect("explore top runs");
    assert!(!dead.status.success());
    assert!(
        String::from_utf8_lossy(&dead.stderr).contains("cannot scrape"),
        "unexpected top failure mode"
    );

    // And against a live one it renders a frame and exits with --once.
    let registry = Arc::new(MetricsRegistry::new());
    registry.set_strategy("icb");
    registry.set_workers(1);
    registry.record_execution(
        42,
        &icb_core::ExecStats::default(),
        &icb_core::ExecutionOutcome::Terminated,
        7,
    );
    let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let top = Command::new(env!("CARGO_BIN_EXE_explore"))
        .args(["top", &server.addr().to_string(), "--once"])
        .output()
        .expect("explore top runs");
    server.shutdown();
    assert!(
        top.status.success(),
        "top failed: {}",
        String::from_utf8_lossy(&top.stderr)
    );
    let frame = String::from_utf8_lossy(&top.stdout);
    assert!(frame.contains("[icb]"), "{frame}");
    assert!(frame.contains("42 execs"), "{frame}");
}
