//! End-to-end checks of the exploration profiler: `explore report` on a
//! JSONL log reproduces the per-bound table of an identical library-level
//! search exactly, and the phase timers partition the search wall-clock.

use std::process::Command;
use std::time::Duration;

use icb_core::search::{Search, SearchConfig};
use icb_telemetry::ExplorationProfiler;
use icb_workloads::registry::all_benchmarks;

const BUDGET: usize = 2000;
const BOUND: usize = 1;

fn bluetooth_config() -> SearchConfig {
    // Mirrors what `explore run --bound 1 --budget 2000` builds.
    SearchConfig {
        max_executions: Some(BUDGET),
        preemption_bound: Some(BOUND),
        stop_on_first_bug: true,
        ..SearchConfig::default()
    }
}

/// Runs a bounded Bluetooth search through the `explore` binary with a
/// JSONL sink, renders the log with `explore report --markdown`, and
/// asserts the per-bound table matches `SearchReport::bound_stats` of the
/// identical library search, row for row.
#[test]
fn explore_report_reproduces_bound_stats() {
    let path = std::env::temp_dir().join(format!("icb-profile-test-{}.jsonl", std::process::id()));
    let run = Command::new(env!("CARGO_BIN_EXE_explore"))
        .args([
            "run",
            "Bluetooth",
            "--bound",
            &BOUND.to_string(),
            "--budget",
            &BUDGET.to_string(),
            "--profile",
            "--telemetry",
            &format!("jsonl:{}", path.display()),
        ])
        .output()
        .expect("explore runs");
    assert!(
        run.status.success(),
        "explore run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    let report_out = Command::new(env!("CARGO_BIN_EXE_explore"))
        .args(["report", &path.display().to_string(), "--markdown"])
        .output()
        .expect("explore report runs");
    let _ = std::fs::remove_file(&path);
    assert!(
        report_out.status.success(),
        "explore report failed: {}",
        String::from_utf8_lossy(&report_out.stderr)
    );
    let rendered = String::from_utf8(report_out.stdout).expect("utf-8 report");

    // Pull the data rows of the "Per-bound results" markdown table:
    // | bound | executions | cumulative states | bugs | wall time |
    let mut rows: Vec<(usize, usize, usize, usize)> = Vec::new();
    let mut in_table = false;
    for line in rendered.lines() {
        if line.starts_with("## Per-bound results") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if line.starts_with("## ") {
            break;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 5 || cells[0].parse::<usize>().is_err() {
            continue; // header, separator, or blank
        }
        rows.push((
            cells[0].parse().unwrap(),
            cells[1].parse().unwrap(),
            cells[2].parse().unwrap(),
            cells[3].parse().unwrap(),
        ));
    }

    // The same search through the library.
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "Bluetooth")
        .expect("registered");
    let program = (bench.correct)();
    let report = Search::over(&program)
        .config(bluetooth_config())
        .run()
        .unwrap();
    let expected: Vec<(usize, usize, usize, usize)> = report
        .bound_stats()
        .iter()
        .map(|s| (s.bound, s.executions, s.cumulative_states, s.bugs_found))
        .collect();

    assert!(
        expected.len() >= 2,
        "bounds 0 and 1 both complete within the budget"
    );
    assert_eq!(rows, expected, "rendered table mirrors bound_stats exactly");

    // Headline totals survive the JSONL round trip too.
    assert!(
        rendered.contains(&format!(
            "{} executions, {} distinct states",
            report.executions, report.distinct_states
        )),
        "summary line carries the report totals:\n{rendered}"
    );
}

/// The wall-clock phase timers partition the search: each phase accrues
/// real time, and replay + selection + race detection never exceeds the
/// total elapsed wall-clock (the remainder is the report's explicit
/// "other" row, so the four together account for 100% of the run).
#[test]
fn phase_timers_partition_wall_clock() {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "Bluetooth")
        .expect("registered");
    let program = (bench.correct)();
    let mut profiler = ExplorationProfiler::new();
    Search::over(&program)
        .config(bluetooth_config())
        .observer(&mut profiler)
        .run()
        .unwrap();

    let phases = profiler.phase_totals();
    let elapsed = profiler.elapsed().expect("search finished");
    assert!(phases.replay > Duration::ZERO, "replay time accrued");
    assert!(
        phases.race_detection > Duration::ZERO,
        "detector time accrued"
    );
    assert!(phases.sum() > Duration::ZERO);
    // Partition property: the timers are disjoint slices of the run, so
    // their sum can never exceed the wall-clock that contains them.
    assert!(
        phases.sum() <= elapsed,
        "phases sum to {:?} > elapsed {:?}",
        phases.sum(),
        elapsed
    );
}
