//! End-to-end check of `explore --telemetry jsonl:<path>`: the emitted
//! JSONL must be parseable and its per-bound rows must agree exactly
//! with the `SearchReport::bound_stats` of an identical library-level
//! search.

use std::process::Command;

use icb_core::search::{Search, SearchConfig};
use icb_workloads::registry::all_benchmarks;

/// Extracts an unsigned integer field from one JSON line. The sink
/// writes flat objects with unique keys, so a textual scan suffices.
fn json_usize(line: &str, key: &str) -> usize {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no key {key} in {line}"));
    line[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {line}"))
}

fn json_str<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":\"");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no key {key} in {line}"));
    let rest = &line[at + pat.len()..];
    &rest[..rest.find('"').expect("terminated string")]
}

const BUDGET: usize = 400;

#[test]
fn explore_jsonl_matches_bound_stats() {
    let path =
        std::env::temp_dir().join(format!("icb-telemetry-test-{}.jsonl", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_explore"))
        .args([
            "run",
            "Bluetooth",
            "--budget",
            &BUDGET.to_string(),
            "--telemetry",
            &format!("jsonl:{}", path.display()),
        ])
        .output()
        .expect("explore runs");
    assert!(
        output.status.success(),
        "explore failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let jsonl = std::fs::read_to_string(&path).expect("telemetry file written");
    let _ = std::fs::remove_file(&path);

    // Structural parseability: flat one-object-per-line JSON, each with
    // an "event" tag; the stream is bracketed by started/finished.
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line {line}"
        );
        assert!(!json_str(line, "event").is_empty());
    }
    assert_eq!(json_str(lines[0], "event"), "search-started");
    assert_eq!(json_str(lines.last().unwrap(), "event"), "search-finished");

    // The same search through the library, with explore's `run` config.
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "Bluetooth")
        .expect("registered");
    let program = (bench.correct)();
    let report = Search::over(&program)
        .config(SearchConfig {
            max_executions: Some(BUDGET),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .unwrap();

    // Per-bound execution counts and distinct-state totals match
    // SearchReport::bound_stats exactly, row for row.
    let rows: Vec<(usize, usize, usize)> = lines
        .iter()
        .filter(|l| json_str(l, "event") == "bound-completed")
        .map(|l| {
            (
                json_usize(l, "bound"),
                json_usize(l, "executions"),
                json_usize(l, "cumulative_states"),
            )
        })
        .collect();
    let expected: Vec<(usize, usize, usize)> = report
        .bound_stats()
        .iter()
        .map(|s| (s.bound, s.executions, s.cumulative_states))
        .collect();
    assert!(!expected.is_empty(), "at least one bound completed");
    assert_eq!(rows, expected);

    // The stream-level totals agree with the report as well.
    let finished = lines.last().unwrap();
    assert_eq!(json_usize(finished, "executions"), report.executions);
    assert_eq!(
        json_usize(finished, "distinct_states"),
        report.distinct_states
    );
    let execution_finishes = lines
        .iter()
        .filter(|l| json_str(l, "event") == "execution-finished")
        .count();
    assert_eq!(execution_finishes, report.executions);
}
