//! Process-level crash resilience: a checkpointing `explore run` killed
//! with SIGKILL mid-search must be resumable with `explore resume`, and
//! the resumed run's final report must match an uninterrupted reference
//! byte for byte. A corrupted checkpoint must be rejected with a clear
//! error, not a panic.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const EXPLORE: &str = env!("CARGO_BIN_EXE_explore");

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("icb-crash-{}-{name}", std::process::id()))
}

/// The report body: stdout minus the first status line (`exploring …`
/// for a fresh run, `resuming …` for a resumed one), which legitimately
/// differs between the two.
fn report_body(output: &Output) -> String {
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .lines()
        .filter(|l| !l.starts_with("exploring ") && !l.starts_with("resuming "))
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_explore(args: &[&str]) -> Output {
    Command::new(EXPLORE)
        .args(args)
        .output()
        .expect("spawn explore")
}

/// The first `N executions` count appearing in a report.
fn executions_in(report: &str) -> usize {
    for line in report.lines() {
        if let Some(at) = line.find(" executions") {
            let digits: String = line[..at]
                .chars()
                .rev()
                .take_while(char::is_ascii_digit)
                .collect();
            if !digits.is_empty() {
                return digits.chars().rev().collect::<String>().parse().unwrap();
            }
        }
    }
    panic!("no execution count in: {report}");
}

/// One crash-drill configuration. The reference run is always an
/// uninterrupted `--jobs 1` search; the checkpointing run is killed at
/// `kill_jobs` workers and resumed at `resume_jobs` — exercising the
/// contract that a snapshot taken under any worker count resumes at any
/// other.
struct Drill<'a> {
    benchmark: &'a str,
    strategy: &'a str,
    budget: &'a str,
    /// `None` runs the correct (bug-free) workload variant. Parallel
    /// drills must be bug-free: with `stop_on_first_bug`, the
    /// sequential reference legitimately stops mid-bound at the first
    /// bug while the parallel driver finishes the bound, so the
    /// execution counts would differ by design, not by defect.
    bug: Option<&'a str>,
    /// `--bound N` (ICB only). Parallel drills need a *finite* explored
    /// space — a preemption bound or `db:N` — because a bare budget
    /// cutoff truncates sequential and parallel runs at different
    /// (equally valid) subsets of the space.
    bound: Option<&'a str>,
    /// `--fault-bound N`: turns fault injection on for the drill. The
    /// checkpoint encodes the bound, so `explore resume` needs no flag.
    fault_bound: Option<&'a str>,
    kill_jobs: &'a str,
    resume_jobs: &'a str,
}

/// Runs the full crash drill for one workload: reference run, killed
/// checkpointing run, resume, report comparison, and a stitch of the
/// two telemetry segments.
fn crash_drill(d: Drill<'_>) {
    let tag = format!("{}-j{}", d.strategy, d.kill_jobs);
    let ckpt = scratch(&format!("{tag}.ckpt"));
    let seg1 = scratch(&format!("{tag}-seg1.jsonl"));
    let seg2 = scratch(&format!("{tag}-seg2.jsonl"));
    for p in [&ckpt, &seg1, &seg2] {
        let _ = std::fs::remove_file(p);
    }
    let ckpt_str = ckpt.to_str().unwrap();
    let jsonl1 = format!("jsonl:{}", seg1.display());
    let jsonl2 = format!("jsonl:{}", seg2.display());
    let mut bug_args: Vec<&str> = match d.bug {
        Some(bug) => vec!["--bug", bug],
        None => Vec::new(),
    };
    if let Some(bound) = d.bound {
        bug_args.extend_from_slice(&["--bound", bound]);
    }
    if let Some(fault_bound) = d.fault_bound {
        bug_args.extend_from_slice(&["--fault-bound", fault_bound]);
    }

    // Uninterrupted reference.
    let mut ref_args = vec!["run", d.benchmark];
    ref_args.extend_from_slice(&bug_args);
    ref_args.extend_from_slice(&[
        "--strategy",
        d.strategy,
        "--budget",
        d.budget,
        "--jobs",
        "1",
    ]);
    let reference = run_explore(&ref_args);
    assert!(reference.status.success(), "reference run failed");

    // Checkpointing run, killed with SIGKILL once the first snapshot is
    // on disk. `--checkpoint-every 1` both maximizes the snapshots at
    // risk and slows the child enough to kill it mid-flight.
    let mut kill_args = vec!["run", d.benchmark];
    kill_args.extend_from_slice(&bug_args);
    kill_args.extend_from_slice(&[
        "--strategy",
        d.strategy,
        "--budget",
        d.budget,
        "--jobs",
        d.kill_jobs,
        "--checkpoint",
        ckpt_str,
        "--checkpoint-every",
        "1",
        "--telemetry",
        &jsonl1,
    ]);
    let mut child = Command::new(EXPLORE)
        .args(&kill_args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointing child");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut finished = false;
    loop {
        if ckpt.exists() {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() {
            finished = true;
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared in 60s");
        std::thread::sleep(Duration::from_millis(2));
    }
    if !finished {
        child.kill().expect("SIGKILL the child"); // SIGKILL on unix
    }
    let status = child.wait().expect("reap the child");
    assert!(
        ckpt.exists(),
        "no checkpoint survived the crash (child exit: {status})"
    );

    // Resume must converge on the reference report exactly. (If the
    // child happened to finish before the kill, the snapshot holds the
    // final aborted state and resuming still reproduces the report.)
    let resumed = run_explore(&[
        "resume",
        ckpt_str,
        "--jobs",
        d.resume_jobs,
        "--telemetry",
        &jsonl2,
    ]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        report_body(&reference),
        report_body(&resumed),
        "resumed report diverged from the uninterrupted reference"
    );

    // Stitching the crashed segment's log (flushed at every checkpoint,
    // possibly ending mid-line) with the resumed segment's must yield
    // one report covering the whole run.
    let total = executions_in(&report_body(&resumed));
    let stitched = run_explore(&[
        "report",
        seg1.to_str().unwrap(),
        seg2.to_str().unwrap(),
        "--stitch",
    ]);
    assert!(
        stitched.status.success(),
        "stitch failed: {}",
        String::from_utf8_lossy(&stitched.stderr)
    );
    let text = String::from_utf8_lossy(&stitched.stdout).into_owned();
    assert_eq!(
        executions_in(&text),
        total,
        "stitched report does not cover the whole run: {text}"
    );

    for p in [&ckpt, &seg1, &seg2] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn killed_dfs_search_resumes_to_the_reference_report() {
    crash_drill(Drill {
        benchmark: "Work Stealing Q.",
        strategy: "dfs",
        budget: "3000",
        bug: Some("tail-publish-first"),
        bound: None,
        fault_bound: None,
        kill_jobs: "1",
        resume_jobs: "1",
    });
}

#[test]
fn killed_icb_search_resumes_to_the_reference_report() {
    crash_drill(Drill {
        benchmark: "Bluetooth",
        strategy: "icb",
        budget: "3000",
        bug: Some("check-then-increment"),
        bound: None,
        fault_bound: None,
        kill_jobs: "1",
        resume_jobs: "1",
    });
}

#[test]
fn killed_fault_bound_search_resumes_to_the_reference_report() {
    // The crash drill with fault injection on: the snapshot encodes the
    // fault bound, so the resumed run continues the (preemption, fault)
    // level progression exactly where the killed run left off and
    // converges on the uninterrupted reference byte for byte.
    crash_drill(Drill {
        benchmark: "Fault Injection",
        strategy: "icb",
        budget: "3000",
        bug: Some("shed-on-try-lock-failure"),
        bound: None,
        fault_bound: Some("1"),
        kill_jobs: "1",
        resume_jobs: "1",
    });
}

#[test]
fn killed_parallel_icb_search_resumes_at_a_smaller_worker_count() {
    // The parallel drill from the issue: kill a `--jobs 4` run after a
    // checkpoint lands, resume it at `--jobs 2`, and demand the report
    // of the uninterrupted `--jobs 1` reference. Bound 2 keeps the
    // explored space finite (~3.1k executions on clean Bluetooth), so
    // every worker count visits the same set.
    crash_drill(Drill {
        benchmark: "Bluetooth",
        strategy: "icb",
        budget: "200000",
        bug: None,
        bound: Some("2"),
        fault_bound: None,
        kill_jobs: "4",
        resume_jobs: "2",
    });
}

#[test]
fn killed_parallel_dfs_search_resumes_at_a_smaller_worker_count() {
    // Depth-bounded DFS for the same reason the ICB drill uses
    // `--bound`: `db:10` exhausts ~3.2k executions on clean Bluetooth.
    crash_drill(Drill {
        benchmark: "Bluetooth",
        strategy: "db:10",
        budget: "100000",
        bug: None,
        bound: None,
        fault_bound: None,
        kill_jobs: "4",
        resume_jobs: "2",
    });
}

#[test]
fn corrupted_checkpoint_is_rejected_cleanly() {
    // A valid checkpoint, produced by an interrupt-free but
    // budget-limited run (a budget abort writes a final snapshot).
    let ckpt = scratch("corrupt.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let ckpt_str = ckpt.to_str().unwrap();
    let seeded = run_explore(&[
        "run",
        "Bluetooth",
        "--bug",
        "check-then-increment",
        "--strategy",
        "dfs",
        "--budget",
        "5",
        "--checkpoint",
        ckpt_str,
    ]);
    assert!(seeded.status.success());
    let bytes = std::fs::read(&ckpt).expect("read checkpoint");

    let reject = |name: &str, bytes: &[u8], expect: &str| {
        let bad = scratch(name);
        std::fs::write(&bad, bytes).unwrap();
        let out = run_explore(&["resume", bad.to_str().unwrap()]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{name}: resume must fail");
        assert!(
            stderr.contains(expect),
            "{name}: expected `{expect}` in stderr, got: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{name}: panicked: {stderr}");
        let _ = std::fs::remove_file(&bad);
    };

    // Flip one payload byte: checksum mismatch.
    let mut flipped = bytes.clone();
    let at = flipped.len() / 2;
    flipped[at] ^= 0xff;
    reject("flip.ckpt", &flipped, "corrupted");

    // Cut the file short: truncation.
    reject("trunc.ckpt", &bytes[..bytes.len() / 3], "truncated");

    // Not a checkpoint at all.
    reject("noise.ckpt", b"definitely not a snapshot", "");

    let _ = std::fs::remove_file(&ckpt);
}
