//! End-to-end contract of `explore explain`: the bundle it writes is
//! complete, self-consistent, and byte-identical no matter how many
//! workers found the bug or whether the witness came from a live search
//! or a recorded `--from` telemetry log.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const EXPLORE: &str = env!("CARGO_BIN_EXE_explore");

const BUNDLE_FILES: [&str; 6] = [
    "witness.json",
    "lanes.txt",
    "hb.dot",
    "hb.json",
    "trace.chrome.json",
    "EXPLANATION.md",
];

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("icb-explain-{}-{name}", std::process::id()))
}

fn run_explore(args: &[&str]) -> Output {
    Command::new(EXPLORE)
        .args(args)
        .output()
        .expect("spawn explore")
}

fn read_bundle(dir: &Path) -> Vec<(String, String)> {
    BUNDLE_FILES
        .iter()
        .map(|name| {
            let text = std::fs::read_to_string(dir.join(name))
                .unwrap_or_else(|e| panic!("bundle missing {name}: {e}"));
            assert!(!text.is_empty(), "{name} must not be empty");
            (name.to_string(), text)
        })
        .collect()
}

/// Checks that every brace/bracket in `text` balances, ignoring anything
/// inside string literals — enough to catch truncated or interleaved
/// JSON without a parser dependency.
fn assert_balanced_json(text: &str, label: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "{label}: closer without opener");
            }
            _ => {}
        }
    }
    assert!(!in_string, "{label}: unterminated string");
    assert_eq!(depth, 0, "{label}: unbalanced braces/brackets");
}

#[test]
fn explain_bundle_is_complete_and_worker_count_free() {
    let dir1 = scratch("jobs1");
    let dir2 = scratch("jobs2");
    for d in [&dir1, &dir2] {
        let _ = std::fs::remove_dir_all(d);
    }

    let out1 = run_explore(&[
        "explain",
        "bluetooth",
        "--jobs",
        "1",
        "--out",
        dir1.to_str().unwrap(),
    ]);
    assert!(
        out1.status.success(),
        "explain --jobs 1 failed: {}",
        String::from_utf8_lossy(&out1.stderr)
    );
    let out2 = run_explore(&[
        "explain",
        "bluetooth",
        "--jobs",
        "2",
        "--out",
        dir2.to_str().unwrap(),
    ]);
    assert!(out2.status.success(), "explain --jobs 2 failed");

    let stdout = String::from_utf8_lossy(&out1.stdout);
    // ICB's headline guarantee carried through shrinking: the bluetooth
    // driver bug needs exactly one preemption, and the shrunk witness
    // must still show it (a divergence would print a stderr note).
    assert!(
        stdout.contains("1 preemption(s)"),
        "witness must be preemption-minimal, got: {stdout}"
    );
    assert!(
        !String::from_utf8_lossy(&out1.stderr).contains("note:"),
        "shrunk witness diverged from the reported minimum"
    );

    let bundle1 = read_bundle(&dir1);
    let bundle2 = read_bundle(&dir2);
    for ((name, a), (_, b)) in bundle1.iter().zip(bundle2.iter()) {
        assert_eq!(a, b, "{name} must be byte-identical at --jobs 1 and 2");
    }

    // Spot-check each artifact's format.
    for (name, text) in &bundle1 {
        match name.as_str() {
            "witness.json" => {
                assert_balanced_json(text, name);
                assert!(text.contains("\"preemptions\": 1"), "witness preemptions");
                assert!(text.contains("\"nearest_passing\""), "nearest-passing diff");
                assert!(text.contains("\"passes\": true"), "flipped schedule passes");
            }
            "hb.json" | "trace.chrome.json" => assert_balanced_json(text, name),
            "hb.dot" => {
                assert!(text.starts_with("digraph happens_before"), "dot header");
                assert_eq!(
                    text.matches('{').count(),
                    text.matches('}').count(),
                    "dot braces balance"
                );
            }
            "lanes.txt" => assert!(text.contains('\u{25CF}') || text.contains('\u{00B7}')),
            "EXPLANATION.md" => {
                assert!(text.contains("## Bundle contents"));
                assert!(text.contains("Nearest passing schedule"));
            }
            _ => unreachable!(),
        }
    }

    // The chrome trace carries all three event phases: metadata, one
    // slice per step, and the preemption/outcome instants.
    let chrome = &bundle1
        .iter()
        .find(|(n, _)| n == "trace.chrome.json")
        .unwrap()
        .1;
    for phase in ["\"ph\":\"M\"", "\"ph\":\"X\"", "\"ph\":\"i\""] {
        assert!(chrome.contains(phase), "chrome trace missing {phase}");
    }

    for d in [&dir1, &dir2] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn explain_from_recorded_log_matches_fresh_search() {
    let log = scratch("run.jsonl");
    let fresh_dir = scratch("fresh");
    let from_dir = scratch("from");
    let _ = std::fs::remove_file(&log);
    for d in [&fresh_dir, &from_dir] {
        let _ = std::fs::remove_dir_all(d);
    }

    let fresh = run_explore(&["explain", "bluetooth", "--out", fresh_dir.to_str().unwrap()]);
    assert!(fresh.status.success(), "fresh explain failed");

    let telemetry = format!("jsonl:{}", log.display());
    let run = run_explore(&[
        "run",
        "bluetooth",
        "--bug",
        "check-then-increment",
        "--telemetry",
        &telemetry,
    ]);
    assert!(
        run.status.success(),
        "recorded run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    let from = run_explore(&[
        "explain",
        "bluetooth",
        "--from",
        log.to_str().unwrap(),
        "--out",
        from_dir.to_str().unwrap(),
    ]);
    assert!(
        from.status.success(),
        "explain --from failed: {}",
        String::from_utf8_lossy(&from.stderr)
    );

    // Shrinking canonicalizes the witness, so a bundle built from the
    // recorded log must equal the fresh search's bundle byte for byte.
    for ((name, a), (_, b)) in read_bundle(&fresh_dir).iter().zip(read_bundle(&from_dir)) {
        assert_eq!(*a, b, "{name} must match between fresh and --from runs");
    }

    let _ = std::fs::remove_file(&log);
    for d in [&fresh_dir, &from_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn explain_requires_a_workload_and_a_buggy_variant() {
    let out = run_explore(&["explain", "--from", "nowhere.jsonl"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("missing benchmark name"),
        "flag-first invocation must explain the workload requirement"
    );
}
