//! Criterion benchmarks of the search strategies: executions per second
//! and cost per explored execution for ICB against the baselines, on the
//! paper's two smallest benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use icb_core::search::{DfsSearch, IcbSearch, RandomSearch, SearchConfig, SearchStrategy};
use icb_workloads::bluetooth::{bluetooth_model, BluetoothVariant};
use icb_workloads::wsq::{wsq_model, WsqVariant};

fn strategy_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_throughput_wsq");
    group.sample_size(10);
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let budget = 500;
    let config = SearchConfig::with_max_executions(budget);
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(IcbSearch::new(config.clone())),
        Box::new(DfsSearch::new(config.clone())),
        Box::new(DfsSearch::with_depth_bound(config.clone(), 20)),
        Box::new(RandomSearch::new(config.clone(), 7)),
    ];
    for strategy in &strategies {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            strategy,
            |b, s| b.iter(|| s.search(&model)),
        );
    }
    group.finish();
}

fn icb_bug_hunt(c: &mut Criterion) {
    let mut group = c.benchmark_group("bug_hunt_bluetooth_vm");
    group.sample_size(10);
    let model = bluetooth_model(BluetoothVariant::Buggy, 2);
    group.bench_function("icb_find_minimal_bug", |b| {
        b.iter(|| {
            IcbSearch::find_minimal_bug(&model, 100_000).expect("bug exists");
        })
    });
    group.bench_function("dfs_find_any_bug", |b| {
        b.iter(|| {
            let report = DfsSearch::new(SearchConfig {
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run(&model);
            assert!(!report.bugs.is_empty());
        })
    });
    group.finish();
}

fn icb_exhaustive_by_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("icb_exhaust_wsq_by_bound");
    group.sample_size(10);
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    for bound in [0usize, 1, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| IcbSearch::up_to_bound(bound).run(&model))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    strategy_throughput,
    icb_bug_hunt,
    icb_exhaustive_by_bound
);
criterion_main!(benches);
