//! Benchmarks of the search strategies: executions per second and cost
//! per explored execution for ICB against the baselines, on the paper's
//! two smallest benchmarks — plus the telemetry overhead check (a
//! `NoopObserver` search against one carrying a full `MetricsRecorder`).

use icb_bench::harness::Harness;
use icb_core::search::{DfsSearch, IcbSearch, RandomSearch, SearchConfig, SearchStrategy};
use icb_core::NoopObserver;
use icb_telemetry::MetricsRecorder;
use icb_workloads::bluetooth::{bluetooth_model, BluetoothVariant};
use icb_workloads::wsq::{wsq_model, WsqVariant};

fn strategy_throughput(c: &mut Harness) {
    let mut group = c.group("strategy_throughput_wsq");
    group.sample_size(10);
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let budget = 500;
    let config = SearchConfig::with_max_executions(budget);
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(IcbSearch::new(config.clone())),
        Box::new(DfsSearch::new(config.clone())),
        Box::new(DfsSearch::with_depth_bound(config.clone(), 20)),
        Box::new(RandomSearch::new(config.clone(), 7)),
    ];
    for strategy in &strategies {
        group.bench_function(&strategy.name(), || strategy.search(&model));
    }
    group.finish();
}

fn icb_bug_hunt(c: &mut Harness) {
    let mut group = c.group("bug_hunt_bluetooth_vm");
    group.sample_size(10);
    let model = bluetooth_model(BluetoothVariant::Buggy, 2);
    group.bench_function("icb_find_minimal_bug", || {
        IcbSearch::find_minimal_bug(&model, 100_000).expect("bug exists")
    });
    group.bench_function("dfs_find_any_bug", || {
        let report = DfsSearch::new(SearchConfig {
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run(&model);
        assert!(!report.bugs.is_empty());
        report
    });
    group.finish();
}

fn icb_exhaustive_by_bound(c: &mut Harness) {
    let mut group = c.group("icb_exhaust_wsq_by_bound");
    group.sample_size(10);
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    for bound in [0usize, 1, 2] {
        group.bench_function(&bound.to_string(), || {
            IcbSearch::up_to_bound(bound).run(&model)
        });
    }
    group.finish();
}

/// The tentpole's zero-cost claim: a search driven through the
/// `NoopObserver` must cost the same as the plain `search()` path, and a
/// full `MetricsRecorder` should stay within a few percent.
fn observer_overhead(c: &mut Harness) {
    let mut group = c.group("observer_overhead");
    group.sample_size(10);
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let search = IcbSearch::new(SearchConfig::with_max_executions(500));
    group.bench_function("noop", || search.search_observed(&model, &mut NoopObserver));
    group.bench_function("metrics_recorder", || {
        let mut metrics = MetricsRecorder::new();
        search.search_observed(&model, &mut metrics);
        metrics
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::from_args();
    strategy_throughput(&mut harness);
    icb_bug_hunt(&mut harness);
    icb_exhaustive_by_bound(&mut harness);
    observer_overhead(&mut harness);
}
