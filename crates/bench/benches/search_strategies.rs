//! Benchmarks of the search strategies: executions per second and cost
//! per explored execution for ICB against the baselines, on the paper's
//! two smallest benchmarks — plus the telemetry overhead check (a
//! `NoopObserver` search against one carrying a full `MetricsRecorder`).

use icb_bench::harness::Harness;
use icb_core::search::{Search, SearchConfig, Strategy};
use icb_telemetry::MetricsRecorder;
use icb_workloads::bluetooth::{bluetooth_model, BluetoothVariant};
use icb_workloads::wsq::{wsq_model, WsqVariant};

fn strategy_throughput(c: &mut Harness) {
    let mut group = c.group("strategy_throughput_wsq");
    group.sample_size(10);
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let budget = 500;
    let config = SearchConfig::with_max_executions(budget);
    let strategies = [
        Strategy::Icb,
        Strategy::Dfs,
        Strategy::DepthBounded(20),
        Strategy::Random { seed: 7 },
    ];
    for strategy in strategies {
        group.bench_function(&strategy.label(), || {
            Search::over(&model)
                .strategy(strategy)
                .config(config.clone())
                .run()
                .unwrap()
        });
    }
    group.finish();
}

fn icb_bug_hunt(c: &mut Harness) {
    let mut group = c.group("bug_hunt_bluetooth_vm");
    group.sample_size(10);
    let model = bluetooth_model(BluetoothVariant::Buggy, 2);
    group.bench_function("icb_find_minimal_bug", || {
        Search::over(&model)
            .config(SearchConfig {
                max_executions: Some(100_000),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap()
            .bugs
            .into_iter()
            .next()
            .expect("bug exists")
    });
    group.bench_function("dfs_find_any_bug", || {
        let report = Search::over(&model)
            .strategy(Strategy::Dfs)
            .config(SearchConfig {
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .unwrap();
        assert!(!report.bugs.is_empty());
        report
    });
    group.finish();
}

fn icb_exhaustive_by_bound(c: &mut Harness) {
    let mut group = c.group("icb_exhaust_wsq_by_bound");
    group.sample_size(10);
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    for bound in [0usize, 1, 2] {
        group.bench_function(&bound.to_string(), || {
            Search::over(&model)
                .config(SearchConfig {
                    preemption_bound: Some(bound),
                    ..SearchConfig::default()
                })
                .run()
                .unwrap()
        });
    }
    group.finish();
}

/// The tentpole's zero-cost claim: a search driven through the
/// `NoopObserver` must cost the same as the plain `search()` path, and a
/// full `MetricsRecorder` should stay within a few percent.
fn observer_overhead(c: &mut Harness) {
    let mut group = c.group("observer_overhead");
    group.sample_size(10);
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let config = SearchConfig::with_max_executions(500);
    group.bench_function("noop", || {
        Search::over(&model).config(config.clone()).run().unwrap()
    });
    group.bench_function("metrics_recorder", || {
        let mut metrics = MetricsRecorder::new();
        Search::over(&model)
            .config(config.clone())
            .observer(&mut metrics)
            .run()
            .unwrap();
        metrics
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::from_args();
    strategy_throughput(&mut harness);
    icb_bug_hunt(&mut harness);
    icb_exhaustive_by_bound(&mut harness);
    observer_overhead(&mut harness);
}
