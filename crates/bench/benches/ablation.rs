//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the Section 3.1 reduction (scheduling points only at sync
//!   operations + race checking) against the unreduced full
//!   interleaving of Section 3;
//! * state caching in the explicit-state checker (Algorithm 1's `table`)
//!   on and off;
//! * the ICB work-queue formulation against plain DFS when both must
//!   exhaust the same small space.

use std::sync::Arc;

use icb_bench::harness::Harness;
use icb_core::search::{Search, SearchConfig, Strategy};
use icb_runtime::sync::Mutex;
use icb_runtime::{thread, DataVar, RuntimeConfig, RuntimeProgram};
use icb_statevm::{ExplicitConfig, ExplicitIcb};
use icb_workloads::bluetooth::{bluetooth_model, BluetoothVariant};

fn locked_counter(config: RuntimeConfig) -> RuntimeProgram {
    RuntimeProgram::with_config(config, || {
        let lock = Arc::new(Mutex::new(()));
        let x = Arc::new(DataVar::new(0u32));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let (lock, x) = (Arc::clone(&lock), Arc::clone(&x));
                thread::spawn(move || {
                    let _g = lock.lock();
                    x.with_mut(|v| *v += 1);
                    x.with_mut(|v| *v += 1);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
    })
}

/// Section 3.1's reduction: same program, scheduling points at sync ops
/// only vs. at every shared access. The reduced search must exhaust a
/// far smaller (yet sound) space.
fn reduction_ablation(c: &mut Harness) {
    let mut group = c.group("sync_only_reduction");
    group.sample_size(10);
    let reduced = locked_counter(RuntimeConfig::default());
    let bound1 = SearchConfig {
        preemption_bound: Some(1),
        ..SearchConfig::default()
    };
    group.bench_function("reduced_bound1", || {
        Search::over(&reduced).config(bound1.clone()).run().unwrap()
    });
    let full = locked_counter(RuntimeConfig::full_interleaving());
    group.bench_function("full_interleaving_bound1", || {
        Search::over(&full).config(bound1.clone()).run().unwrap()
    });
    group.finish();
}

/// Algorithm 1's `table`: state caching on vs. off on the explicit
/// checker.
fn caching_ablation(c: &mut Harness) {
    let mut group = c.group("state_caching");
    group.sample_size(10);
    // The Bluetooth model: ~6k schedules uncached, ~1.2k work items
    // cached — big enough to show the effect, small enough to sample.
    let model = bluetooth_model(BluetoothVariant::Fixed, 2);
    group.bench_function("cached", || {
        ExplicitIcb::new(ExplicitConfig::default()).run(&model)
    });
    group.bench_function("uncached", || {
        ExplicitIcb::new(ExplicitConfig {
            state_caching: false,
            ..ExplicitConfig::default()
        })
        .run(&model)
    });
    group.finish();
}

/// Exhausting a small space: the ICB queue formulation pays bookkeeping
/// over DFS but keeps the preemption-ordering guarantee.
fn exhaustion_ablation(c: &mut Harness) {
    let mut group = c.group("exhaust_small_space");
    group.sample_size(10);
    let model = bluetooth_model(BluetoothVariant::Fixed, 2);
    group.bench_function("icb", || {
        Search::over(&model)
            .config(SearchConfig::default())
            .run()
            .unwrap()
    });
    group.bench_function("dfs", || {
        Search::over(&model)
            .strategy(Strategy::Dfs)
            .config(SearchConfig::default())
            .run()
            .unwrap()
    });
    group.finish();
}

/// The paper's future-work item: partial-order reduction is
/// complementary to context bounding. Sleep sets vs. plain DFS on the
/// file-system model (the benchmark with the most independence).
fn por_ablation(c: &mut Harness) {
    use icb_statevm::por::{sleep_set_dfs, PorConfig};
    use icb_workloads::filesystem::{filesystem_model, FsParams};
    let mut group = c.group("partial_order_reduction");
    group.sample_size(10);
    let model = filesystem_model(FsParams {
        threads: 3,
        inodes: 2,
        blocks: 2,
    });
    group.bench_function("sleep_sets", || {
        sleep_set_dfs(&model, &PorConfig::default())
    });
    group.bench_function("plain_dfs", || {
        sleep_set_dfs(
            &model,
            &PorConfig {
                sleep_sets: false,
                ..PorConfig::default()
            },
        )
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::from_args();
    reduction_ablation(&mut harness);
    caching_ablation(&mut harness);
    exhaustion_ablation(&mut harness);
    por_ablation(&mut harness);
}
