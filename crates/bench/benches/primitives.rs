//! Benchmarks of the substrate primitives: vector clocks, happens-before
//! fingerprints, VM stepping and the controlled runtime's per-execution
//! overhead.

use icb_bench::harness::Harness;
use icb_core::{ControlledProgram, NullSink, ReplayScheduler, Tid};
use icb_race::{AccessKind, HbFingerprint, RaceDetector, VectorClock};
use icb_workloads::bluetooth::{bluetooth_model, bluetooth_program, BluetoothVariant};

fn vector_clocks(c: &mut Harness) {
    let mut group = c.group("vector_clock");
    let mut a = VectorClock::new();
    let mut b = VectorClock::new();
    for i in 0..8 {
        a.set(Tid(i), (i * 3) as u32);
        b.set(Tid(i), (i * 2 + 5) as u32);
    }
    group.bench_function("join_8_threads", || {
        let mut x = a.clone();
        x.join(&b);
        x
    });
    group.bench_function("compare_8_threads", || a.compare(&b));
    group.bench_function("hash64", || a.hash64());
    group.finish();
}

fn fingerprints(c: &mut Harness) {
    let mut group = c.group("hb_fingerprint");
    let vc: VectorClock = (0..4).map(|i| (Tid(i), i as u32 + 1)).collect();
    let mut fp = HbFingerprint::new();
    group.bench_function("record", || fp.record(Tid(1), 0xfeed, &vc));
    group.finish();
}

fn race_detection(c: &mut Harness) {
    let mut group = c.group("race_detector");
    group.bench_function("locked_access_cycle", || {
        let mut d = RaceDetector::new();
        let m = d.new_sync_object();
        let x = d.new_data_var(None);
        for t in [Tid(0), Tid(1), Tid(0), Tid(1)] {
            d.sync_acquire(t, m);
            d.data_access(t, x, AccessKind::Write).unwrap();
            d.sync_release(t, m);
        }
        d
    });
    group.finish();
}

fn execution_overhead(c: &mut Harness) {
    let mut group = c.group("single_execution");
    group.sample_size(20);
    let model = bluetooth_model(BluetoothVariant::Fixed, 2);
    group.bench_function("statevm_bluetooth", || {
        let mut sched = ReplayScheduler::new(Default::default());
        model.execute(&mut sched, &mut NullSink)
    });
    let program = bluetooth_program(BluetoothVariant::Fixed, 2);
    group.bench_function("runtime_bluetooth", || {
        let mut sched = ReplayScheduler::new(Default::default());
        program.execute(&mut sched, &mut NullSink)
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::from_args();
    vector_clocks(&mut harness);
    fingerprints(&mut harness);
    race_detection(&mut harness);
    execution_overhead(&mut harness);
}
