//! The experiments: one function per table/figure of the paper.

use icb_core::bounds;
use icb_core::search::{Search, SearchConfig, Strategy};
use icb_core::{ControlledProgram, NullSink, ReplayScheduler};
use icb_statevm::{reachable_states, ExplicitConfig, ExplicitIcb, Model, ModelBuilder};
use icb_workloads::ape::{ape_program, ApeVariant};
use icb_workloads::dryad::{dryad_program, DryadVariant};
use icb_workloads::registry::all_benchmarks;
use icb_workloads::wsq::{wsq_model, WsqVariant};

use crate::{banner, header, print_curves_csv, row, run_timed};

/// Our source line counts, embedded at compile time so Table 1 can show
/// LOC for this reimplementation next to the paper's.
fn our_loc(name: &str) -> usize {
    let src: &str = match name {
        "Bluetooth" => include_str!("../../workloads/src/bluetooth.rs"),
        "File System Model" => include_str!("../../workloads/src/filesystem.rs"),
        "Work Stealing Q." => include_str!("../../workloads/src/wsq.rs"),
        "Transaction Manager" => include_str!("../../workloads/src/txnmgr.rs"),
        "APE" => include_str!("../../workloads/src/ape.rs"),
        "Dryad Channels" => include_str!("../../workloads/src/dryad.rs"),
        _ => "",
    };
    src.lines().count()
}

/// Table 1: benchmark characteristics — threads, max K (steps), max B
/// (blocking steps), max c (preemptions) observed while exploring.
pub fn table1() {
    banner("Table 1 — benchmark characteristics");
    header(&[
        "Program",
        "Paper LOC",
        "Our LOC",
        "Threads",
        "Max K",
        "Max B",
        "Max c",
    ]);
    for bench in all_benchmarks() {
        let program = (bench.correct)();
        // Unbounded DFS maximizes observed preemptions; a budget keeps
        // the pass fast. K and B are schedule-independent maxima in
        // practice.
        let report = Search::over(&program)
            .strategy(Strategy::Dfs)
            .config(SearchConfig::with_max_executions(3_000))
            .run()
            .expect("valid configuration");
        row(&[
            bench.name.to_string(),
            bench.paper_loc.to_string(),
            our_loc(bench.name).to_string(),
            bench.paper_threads.to_string(),
            report.max_stats.steps.to_string(),
            report.max_stats.blocking_steps.to_string(),
            report.max_stats.preemptions.to_string(),
        ]);
    }
}

/// Table 2: for every seeded bug, the minimal preemption bound at which
/// iterative context bounding exposes it.
pub fn table2() {
    banner("Table 2 — bugs by context bound");
    let benches = all_benchmarks();

    println!("Per-bug minimal bounds (measured by ICB):");
    println!();
    header(&["Program", "Bug", "Minimal bound", "Outcome"]);
    let mut matrix: Vec<(String, [usize; 4])> = Vec::new();
    for bench in &benches {
        if bench.bugs.is_empty() {
            continue;
        }
        let mut counts = [0usize; 4];
        for bug in &bench.bugs {
            let program = (bug.build)();
            let found = Search::over(&program)
                .config(SearchConfig {
                    max_executions: Some(500_000),
                    stop_on_first_bug: true,
                    ..SearchConfig::default()
                })
                .run()
                .expect("valid configuration")
                .bugs
                .into_iter()
                .next();
            match found {
                Some(report) => {
                    counts[report.preemptions.min(3)] += 1;
                    row(&[
                        bench.name.to_string(),
                        bug.name.to_string(),
                        report.preemptions.to_string(),
                        format!("{}", report.outcome),
                    ]);
                }
                None => row(&[
                    bench.name.to_string(),
                    bug.name.to_string(),
                    "not found (budget)".to_string(),
                    String::new(),
                ]),
            }
        }
        matrix.push((bench.name.to_string(), counts));
    }

    println!();
    println!("Bugs exposed with exactly c preemptions (paper's Table 2 layout):");
    println!();
    header(&["Program", "Bugs", "c=0", "c=1", "c=2", "c=3"]);
    for (name, counts) in &matrix {
        row(&[
            name.clone(),
            counts.iter().sum::<usize>().to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
        ]);
    }
}

/// Figure 1: % of the reachable state space of the work-stealing queue
/// covered by executions with at most c preemptions.
pub fn fig1() {
    banner("Figure 1 — WSQ state coverage vs. context bound");
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let total = reachable_states(&model, 50_000_000);
    println!("reachable states: {total}");
    println!();
    let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
    header(&["Context bound", "States", "% of state space", "Work items"]);
    for b in &report.bound_history {
        row(&[
            b.bound.to_string(),
            b.cumulative_states.to_string(),
            format!("{:.1}", 100.0 * b.cumulative_states as f64 / total as f64),
            b.work_items.to_string(),
        ]);
    }
    println!();
    println!(
        "full coverage at bound {} (completed = {})",
        report.completed_bound.map_or(0, |b| b),
        report.completed
    );
}

/// Figure 2: distinct states (log scale in the paper) vs. executions for
/// icb, dfs, random, db:20 and db:40 on the work-stealing queue.
pub fn fig2() {
    banner("Figure 2 — WSQ coverage growth per strategy");
    let model = wsq_model(WsqVariant::Correct, 3, 2);
    let budget = 25_000;
    let config = SearchConfig::with_max_executions(budget);
    let strategies = [
        Strategy::Icb,
        Strategy::Dfs,
        Strategy::Random { seed: 0x1cb },
        Strategy::DepthBounded(40),
        Strategy::DepthBounded(20),
    ];
    let curves: Vec<(String, Vec<(usize, usize)>)> = strategies
        .iter()
        .map(|&s| {
            let (_, metrics) = run_timed(s, &config, 1, &model);
            (s.label(), metrics.coverage_curve().to_vec())
        })
        .collect();
    print_curves_csv(&curves, 40);
}

/// Figure 4: % of state space covered vs. context bound for Bluetooth,
/// the file-system model, the transaction manager and the WSQ.
pub fn fig4() {
    banner("Figure 4 — state coverage vs. context bound, four programs");
    // The paper's Figure 4 shows exactly these four programs; APE and
    // Dryad also have VM models but were too large for the paper's
    // complete search (and appear in Figures 5/6 instead).
    let fig4_set = [
        "Bluetooth",
        "File System Model",
        "Work Stealing Q.",
        "Transaction Manager",
    ];
    let programs: Vec<(&str, Model)> = all_benchmarks()
        .iter()
        .filter(|b| fig4_set.contains(&b.name))
        .filter_map(|b| b.vm_model.map(|f| (b.name, f())))
        .collect();
    for (name, model) in programs {
        let total = reachable_states(&model, 50_000_000);
        let report = ExplicitIcb::new(ExplicitConfig::default()).run(&model);
        println!("{name} (reachable states: {total}):");
        header(&["Context bound", "States", "% of state space"]);
        for b in &report.bound_history {
            row(&[
                b.bound.to_string(),
                b.cumulative_states.to_string(),
                format!("{:.1}", 100.0 * b.cumulative_states as f64 / total as f64),
            ]);
        }
        println!();
    }
}

/// Probes one preemption-free execution to size depth bounds.
fn probe_len(program: &dyn ControlledProgram) -> usize {
    let mut sched = ReplayScheduler::new(Default::default());
    program.execute(&mut sched, &mut NullSink).stats.steps
}

fn coverage_growth(
    title: &str,
    program: &(dyn ControlledProgram + Sync),
    budget: usize,
    depth_fracs: &[f64],
) {
    banner(title);
    let k = probe_len(program);
    println!("probe execution length: {k} steps; budget: {budget} executions");
    println!();
    let config = SearchConfig::with_max_executions(budget);
    let mut strategies = vec![Strategy::Icb, Strategy::Dfs];
    for &frac in depth_fracs {
        let max = ((k as f64 * frac) as usize).max(4);
        strategies.push(Strategy::IterativeDeepening {
            start: max / 4,
            step: max / 4,
            max,
        });
    }
    let curves: Vec<(String, Vec<(usize, usize)>)> = strategies
        .iter()
        .map(|&s| {
            let (_, metrics) = run_timed(s, &config, 1, program);
            (s.label(), metrics.coverage_curve().to_vec())
        })
        .collect();
    print_curves_csv(&curves, 40);
}

/// Figure 5: coverage growth on APE — icb vs. dfs vs. iterative
/// depth-bounding at three depth bounds.
pub fn fig5() {
    let program = ape_program(ApeVariant::Correct, 2);
    coverage_growth(
        "Figure 5 — APE coverage growth per strategy",
        &program,
        10_000,
        &[0.5, 0.75, 1.0],
    );
}

/// Figure 6: coverage growth on the Dryad channel library.
pub fn fig6() {
    let program = dryad_program(DryadVariant::Correct, 4, 2);
    coverage_growth(
        "Figure 6 — Dryad coverage growth per strategy",
        &program,
        10_000,
        &[0.3, 0.4, 0.5],
    );
}

/// A nonblocking n×k increment model (each thread's only blocking action
/// is its termination, the paper's b = 1 case).
fn counter_model(n: usize, k: usize) -> Model {
    let mut m = ModelBuilder::new();
    let g = m.global("g", 0);
    for _ in 0..n {
        m.thread("inc", |t| {
            let old = t.local();
            for _ in 0..k {
                t.fetch_add(g, 1, old);
            }
        });
    }
    m.build()
}

/// Theorem 1: the measured number of executions with exactly c
/// preemptions against the theoretical ceiling `C(nk, c) · (nb + c)!`.
pub fn theorem1() {
    banner("Theorem 1 — executions per preemption bound vs. the bound");
    for (n, k) in [(2usize, 4usize), (3, 3)] {
        let model = counter_model(n, k);
        let report = Search::over(&model).run().expect("valid configuration");
        println!(
            "{n} threads x {k} steps (completed = {}):",
            report.completed
        );
        header(&["c", "Executions (measured)", "Theorem 1 ceiling"]);
        for b in &report.bound_history {
            let ceiling =
                bounds::executions_with_preemptions(n as u64, k as u64, 1, b.bound as u64)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| {
                        format!(
                            "e^{:.1}",
                            bounds::ln_executions_with_preemptions(
                                n as u64,
                                k as u64,
                                1,
                                b.bound as u64
                            )
                        )
                    });
            row(&[b.bound.to_string(), b.executions.to_string(), ceiling]);
        }
        println!(
            "total executions {} vs. unbounded-schedule count e^{:.1}",
            report.executions,
            bounds::ln_total_executions(n as u64, k as u64)
        );
        println!();
    }
}

/// Runs every experiment in paper order.
pub fn all() {
    table1();
    table2();
    fig1();
    fig2();
    fig3();
    fig4();
    fig5();
    fig6();
    theorem1();
}

/// Figure 3: the Dryad use-after-free. The paper's figure is a code
/// listing; the reproducible artifact is the witness trace — one
/// preempting context switch right before `EnterCriticalSection`, plus
/// the several nonpreempting switches the paper highlights.
pub fn fig3() {
    banner("Figure 3 — the Dryad use-after-free witness");
    let program = dryad_program(DryadVariant::CloseNoWait, 2, 2);
    let bug = Search::over(&program)
        .config(SearchConfig {
            max_executions: Some(500_000),
            stop_on_first_bug: true,
            ..SearchConfig::default()
        })
        .run()
        .expect("valid configuration")
        .bugs
        .into_iter()
        .next()
        .expect("the Figure 3 bug is reachable");
    println!("outcome: {}", bug.outcome);
    println!(
        "found after {} executions; witness has {} preemption(s)",
        bug.execution_index, bug.preemptions
    );
    let mut replay = ReplayScheduler::new(bug.schedule.clone());
    let result = program.execute(&mut replay, &mut NullSink);
    println!(
        "context switches: {} ({} preempting, {} nonpreempting)",
        result.stats.context_switches,
        result.stats.preemptions,
        result.stats.context_switches - result.stats.preemptions
    );
    println!();
    println!("{}", icb_core::render::lanes(&result.trace));
    println!();
    println!("compact: {}", icb_core::render::compact(&result.trace));
}
