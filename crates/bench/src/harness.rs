//! A minimal, dependency-free benchmark harness.
//!
//! The workspace builds in hermetic environments without a crate
//! registry, so the `[[bench]]` targets cannot use criterion. This
//! module provides the small subset the benches need — named groups,
//! per-group sample counts, warmup, iteration-count calibration and
//! median/mean reporting — behind a deliberately criterion-shaped API so
//! the bench files read the same way.
//!
//! Methodology per benchmark:
//!
//! 1. warm up for [`WARMUP`] (at least one call);
//! 2. calibrate an iteration count so one sample lasts ≥ [`MIN_SAMPLE`];
//! 3. take `sample_size` samples of that many iterations;
//! 4. report min / median / mean ns per iteration.
//!
//! `cargo bench -- <substring>` filters by `group/benchmark` id, as with
//! criterion.

use std::time::{Duration, Instant};

/// Warmup budget before any measurement.
const WARMUP: Duration = Duration::from_millis(100);
/// Target minimum wall time for one sample.
const MIN_SAMPLE: Duration = Duration::from_millis(5);
/// Iteration-count ceiling per sample (nanosecond-scale bodies).
const MAX_ITERS: u64 = 1 << 22;

/// Re-exported compiler barrier for benchmark results.
pub use std::hint::black_box;

/// The harness entry point: parses CLI filters and runs groups.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Builds a harness from the process arguments. Flags injected by
    /// `cargo bench` (`--bench`, etc.) are ignored; the first free
    /// argument is a substring filter on `group/benchmark` ids.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `body` and prints one result line. The closure's return
    /// value is passed through [`black_box`] so the computation cannot
    /// be optimized away.
    pub fn bench_function<R>(&mut self, id: &str, mut body: impl FnMut() -> R) {
        let full = format!("{}/{}", self.name, id);
        if !self.harness.matches(&full) {
            return;
        }
        // Warm up.
        let start = Instant::now();
        loop {
            black_box(body());
            if start.elapsed() >= WARMUP {
                break;
            }
        }
        // Calibrate iterations per sample.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            if t.elapsed() >= MIN_SAMPLE || iters >= MAX_ITERS {
                break;
            }
            iters = iters.saturating_mul(2).min(MAX_ITERS);
        }
        // Measure.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{full:<55} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {iters} iters)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            samples_ns.len(),
        );
    }

    /// Ends the group (parity with the criterion API; prints nothing).
    pub fn finish(self) {}
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matches_substrings() {
        let h = Harness {
            filter: Some("clock".into()),
        };
        assert!(h.matches("vector_clock/join_8_threads"));
        assert!(!h.matches("race_detector/locked_access_cycle"));
        let all = Harness { filter: None };
        assert!(all.matches("anything"));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 us");
        assert_eq!(fmt_ns(12_500_000.0), "12.50 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
