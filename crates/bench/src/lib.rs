//! Shared helpers for the experiment binaries that regenerate every
//! table and figure of the paper.
//!
//! Each binary prints one experiment:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — benchmark characteristics |
//! | `table2` | Table 2 — bugs by context bound |
//! | `fig1` | Figure 1 — WSQ coverage vs. context bound |
//! | `fig2` | Figure 2 — WSQ coverage growth per strategy |
//! | `fig4` | Figure 4 — coverage vs. bound, four programs |
//! | `fig5` | Figure 5 — APE coverage growth per strategy |
//! | `fig6` | Figure 6 — Dryad coverage growth per strategy |
//! | `theorem1` | Theorem 1 — measured executions vs. the bound |
//! | `all_experiments` | everything above, in sequence |
//!
//! Run with `cargo run --release -p icb-bench --bin <name>`.

pub mod experiments;
pub mod harness;

use icb_core::search::{Search, SearchConfig, SearchReport, Strategy};
use icb_core::ControlledProgram;
use icb_telemetry::MetricsRecorder;

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header with separator.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!();
    println!("## {title}");
    println!();
}

/// Runs a strategy against a program with a [`MetricsRecorder`]
/// attached, logging a one-line summary (from the recorder, not ad-hoc
/// timers) to stderr. The figures draw their curves from the returned
/// recorder, so what they plot is exactly what the telemetry layer saw.
pub fn run_timed(
    strategy: Strategy,
    config: &SearchConfig,
    jobs: usize,
    program: &(dyn ControlledProgram + Sync),
) -> (SearchReport, MetricsRecorder) {
    let mut metrics = MetricsRecorder::new();
    let report = Search::over(program)
        .strategy(strategy)
        .config(config.clone())
        .jobs(jobs)
        .observer(&mut metrics)
        .run()
        .expect("experiment configurations are valid");
    eprintln!(
        "  [{}] {} executions ({:.0}/s), {} states, completed={} in {:.2?}",
        report.strategy,
        metrics.executions(),
        metrics.executions_per_sec().unwrap_or(0.0),
        metrics.distinct_states(),
        report.completed,
        metrics.elapsed()
    );
    (report, metrics)
}

/// Downsamples a coverage curve to at most `points` samples, keeping the
/// last one (log-friendly output without megabytes of CSV).
pub fn downsample(curve: &[(usize, usize)], points: usize) -> Vec<(usize, usize)> {
    if curve.len() <= points {
        return curve.to_vec();
    }
    let stride = curve.len().div_ceil(points);
    let mut out: Vec<(usize, usize)> = curve.iter().copied().step_by(stride).collect();
    if out.last() != curve.last() {
        out.push(*curve.last().expect("curve nonempty"));
    }
    out
}

/// Serializes several named coverage curves as aligned CSV on stdout:
/// `executions,<name1>,<name2>,…` carrying each curve's value forward.
pub fn print_curves_csv(curves: &[(String, Vec<(usize, usize)>)], points: usize) {
    let sampled: Vec<(String, Vec<(usize, usize)>)> = curves
        .iter()
        .map(|(n, c)| (n.clone(), downsample(c, points)))
        .collect();
    let mut xs: Vec<usize> = sampled
        .iter()
        .flat_map(|(_, c)| c.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_unstable();
    xs.dedup();
    print!("executions");
    for (name, _) in &sampled {
        print!(",{name}");
    }
    println!();
    for x in xs {
        print!("{x}");
        for (_, curve) in &sampled {
            // Coverage at the last sample at or before x.
            let y = curve
                .iter()
                .take_while(|&&(cx, _)| cx <= x)
                .last()
                .map(|&(_, y)| y);
            match y {
                Some(y) => print!(",{y}"),
                None => print!(","),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_endpoints() {
        let curve: Vec<(usize, usize)> = (1..=100).map(|i| (i, i * 2)).collect();
        let d = downsample(&curve, 10);
        assert!(d.len() <= 12);
        assert_eq!(*d.last().unwrap(), (100, 200));
        assert_eq!(d[0], (1, 2));
    }

    #[test]
    fn downsample_short_curves_untouched() {
        let curve = vec![(1, 1), (2, 3)];
        assert_eq!(downsample(&curve, 10), curve);
    }
}
