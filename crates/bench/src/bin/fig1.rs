//! Regenerates the paper's fig1. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::fig1();
}
