//! Regenerates the paper's fig2. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::fig2();
}
