//! `metrics_bench` — measures the overhead of the live metrics layer on
//! the sequential hot path and writes `results/BENCH_metrics.json`.
//!
//! The same clean-Bluetooth bound-2 search the parallel benchmark uses
//! (a finite ~3.1k-execution space) runs `--jobs 1` twice per
//! iteration: bare, and with a [`MetricsRegistry`] mirrored through the
//! bridge while a [`MetricsServer`] listens (unscraped — the budget is
//! for the *instrumentation*, scrapes are the scraper's bill). Each
//! variant takes the best of `ITERATIONS` runs, so transient machine
//! noise does not masquerade as overhead. The budget is 3%: the
//! registry is relaxed atomics end to end, so anything above that means
//! a hot-path regression, not measurement jitter.
//!
//! ```sh
//! cargo run --release -p icb-bench --bin metrics_bench
//! ```

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use icb_core::search::{Search, SearchConfig, SearchReport};
use icb_core::MetricsRegistry;
use icb_telemetry::MetricsServer;
use icb_workloads::registry::{all_benchmarks, AnyProgram};

const BOUND: usize = 2;
const ITERATIONS: usize = 5;
const BUDGET_PCT: f64 = 3.0;

fn bluetooth() -> AnyProgram {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "Bluetooth")
        .expect("Bluetooth benchmark");
    (bench.correct)()
}

fn run_once(program: &AnyProgram, metrics: Option<Arc<MetricsRegistry>>) -> (SearchReport, f64) {
    let start = Instant::now();
    let mut search = Search::over(program)
        .config(SearchConfig {
            preemption_bound: Some(BOUND),
            ..SearchConfig::default()
        })
        .jobs(1);
    if let Some(registry) = metrics {
        search = search.metrics(registry);
    }
    let report = search.run().expect("search");
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let program = bluetooth();

    let mut bare_best = f64::INFINITY;
    let mut metered_best = f64::INFINITY;
    let mut bare_execs = 0;
    let mut metered_execs = 0;
    for _ in 0..ITERATIONS {
        let (report, secs) = run_once(&program, None);
        bare_best = bare_best.min(secs);
        bare_execs = report.executions;

        let registry = Arc::new(MetricsRegistry::new());
        let server =
            MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).expect("metrics server");
        let (report, secs) = run_once(&program, Some(Arc::clone(&registry)));
        server.shutdown();
        metered_best = metered_best.min(secs);
        metered_execs = report.executions;
        assert_eq!(
            registry.executions(),
            report.executions as u64,
            "served counter diverged from the report"
        );
    }

    // The overhead is only meaningful if both variants did the same work.
    assert_eq!(bare_execs, metered_execs);

    let overhead_pct = 100.0 * (metered_best - bare_best) / bare_best;
    let within_budget = overhead_pct <= BUDGET_PCT;
    println!("bluetooth bound {BOUND}, jobs 1, best of {ITERATIONS}:");
    println!("  bare:    {bare_best:.3}s ({bare_execs} executions)");
    println!("  metered: {metered_best:.3}s (registry + idle /metrics listener)");
    println!(
        "  overhead: {overhead_pct:+.2}% (budget {BUDGET_PCT}%) — {}",
        if within_budget { "ok" } else { "OVER BUDGET" }
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"metrics_overhead\",\n",
            "  \"workload\": \"Bluetooth (correct)\",\n",
            "  \"preemption_bound\": {bound},\n",
            "  \"jobs\": 1,\n",
            "  \"iterations\": {iters},\n",
            "  \"executions\": {execs},\n",
            "  \"bare\": {{ \"seconds\": {bare:.3} }},\n",
            "  \"metered\": {{ \"seconds\": {metered:.3} }},\n",
            "  \"overhead_pct\": {overhead:.2},\n",
            "  \"budget_pct\": {budget:.1},\n",
            "  \"within_budget\": {within},\n",
            "  \"executions_match\": true\n",
            "}}\n"
        ),
        bound = BOUND,
        iters = ITERATIONS,
        execs = bare_execs,
        bare = bare_best,
        metered = metered_best,
        overhead = overhead_pct,
        budget = BUDGET_PCT,
        within = within_budget,
    );
    let path = "results/BENCH_metrics.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::File::create(path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}
