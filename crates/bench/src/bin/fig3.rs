//! Regenerates the paper's fig3. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::fig3();
}
