//! `parallel_bench` — measures the parallel driver's throughput on the
//! clean Bluetooth driver at preemption bound 2 (a finite ~3.1k-execution
//! space every worker count explores identically), at `--jobs 1` vs.
//! `--jobs $(nproc)`, and appends the result to
//! `results/BENCH_parallel.json`.
//!
//! Rates come from a [`MetricsRecorder`] attached to each run, so the
//! numbers are the same ones the figure binaries use. The sanity checks
//! assert the determinism contract (identical order-independent reports)
//! before any rate is reported.
//!
//! ```sh
//! cargo run --release -p icb-bench --bin parallel_bench
//! ```

use std::io::Write;

use icb_core::search::{Search, SearchConfig, SearchReport};
use icb_telemetry::MetricsRecorder;
use icb_workloads::registry::all_benchmarks;

const BOUND: usize = 2;

fn measure(jobs: usize) -> (SearchReport, f64, f64) {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "Bluetooth")
        .expect("Bluetooth benchmark");
    let program = (bench.correct)();
    let mut metrics = MetricsRecorder::new();
    let report = Search::over(&program)
        .config(SearchConfig {
            preemption_bound: Some(BOUND),
            ..SearchConfig::default()
        })
        .jobs(jobs)
        .observer(&mut metrics)
        .run()
        .expect("search");
    let rate = metrics.executions_per_sec().expect("finished run");
    (report, metrics.elapsed().as_secs_f64(), rate)
}

fn main() {
    let nproc = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let (seq_report, seq_secs, seq_rate) = measure(1);
    let (par_report, par_secs, par_rate) = measure(nproc.max(2));
    let speedup = par_rate / seq_rate;

    // The rates are only comparable if both runs did the same work.
    assert_eq!(seq_report.executions, par_report.executions);
    assert_eq!(seq_report.distinct_states, par_report.distinct_states);
    assert_eq!(seq_report.bound_history, par_report.bound_history);

    println!(
        "bluetooth bound {BOUND}: {} executions, {} states",
        seq_report.executions, seq_report.distinct_states
    );
    println!("  jobs 1:  {seq_rate:>10.0} exec/s ({seq_secs:.2}s)");
    println!(
        "  jobs {}: {par_rate:>10.0} exec/s ({par_secs:.2}s)  —  {speedup:.2}x",
        nproc.max(2)
    );
    if nproc == 1 {
        println!("  note: nproc=1 on this machine; the parallel run timeshares one core");
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel_driver\",\n",
            "  \"workload\": \"Bluetooth (correct)\",\n",
            "  \"preemption_bound\": {bound},\n",
            "  \"executions\": {execs},\n",
            "  \"distinct_states\": {states},\n",
            "  \"nproc\": {nproc},\n",
            "  \"jobs_1\": {{ \"exec_per_sec\": {seq_rate:.1}, \"seconds\": {seq_secs:.3} }},\n",
            "  \"jobs_{par_jobs}\": {{ \"exec_per_sec\": {par_rate:.1}, \"seconds\": {par_secs:.3} }},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"reports_match\": true,\n",
            "  \"instrumentation_note\": \"driver choke points now feed the live \
             metrics registry (steal donations, pump recv-timeout stalls, frontier \
             lock ops and pop waits, per-worker busy/idle clocks) via relaxed \
             atomics; pre-instrumentation baseline on this machine was jobs_1 \
             3330.0 exec/s / jobs_2 3528.2 exec/s (speedup 1.060), so any drift \
             beyond noise here is an instrumentation regression\"\n",
            "}}\n"
        ),
        bound = BOUND,
        execs = seq_report.executions,
        states = seq_report.distinct_states,
        nproc = nproc,
        seq_rate = seq_rate,
        seq_secs = seq_secs,
        par_jobs = nproc.max(2),
        par_rate = par_rate,
        par_secs = par_secs,
        speedup = speedup,
    );
    let path = "results/BENCH_parallel.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::File::create(path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}
