//! `explain_bench` — measures what a bug explanation costs on the six
//! paper bugs and writes `results/BENCH_explain.json`.
//!
//! Two numbers matter, and they are billed separately. *Shrink cost*:
//! `ExplainedWitness::explain` replays the program once per prefix probe
//! plus twice for attribution and the nearest-passing diff — replays
//! that happen outside the search's execution budget (the
//! `icb_shrink_replays_total` counter). *Bundle cost*: rendering and
//! writing the six artifacts (`witness.json`, `lanes.txt`, `hb.dot`,
//! `hb.json`, `trace.chrome.json`, `EXPLANATION.md`). Each phase takes
//! the best of `ITERATIONS` timings; the search that finds the witness
//! is timed once for context but is not part of the explanation's bill.
//!
//! ```sh
//! cargo run --release -p icb-bench --bin explain_bench
//! ```

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use icb_core::render;
use icb_core::search::{Search, SearchConfig};
use icb_core::ExplainedWitness;
use icb_race::CausalGraph;
use icb_telemetry::export::chrome::ChromeTrace;
use icb_workloads::registry::all_benchmarks;

const ITERATIONS: usize = 3;
const BUDGET: usize = 200_000;

/// The six paper bugs: the first registered bug of each buggy workload,
/// plus the paper's Figure 3 use-after-free as Dryad's second entry.
const WORKLOADS: [(&str, &str); 6] = [
    ("Bluetooth", "check-then-increment"),
    ("Work Stealing Q.", "tail-publish-first"),
    ("Transaction Manager", "commit-toctou"),
    ("APE", "missing-join"),
    ("Dryad Channels", "stop-jumps-queue"),
    ("Dryad Channels", "close-no-wait (Fig. 3 UAF)"),
];

fn main() {
    let benchmarks = all_benchmarks();
    let out_dir = std::env::temp_dir().join(format!("icb-explain-bench-{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).expect("create scratch dir");

    let mut rows = String::new();
    for (i, (workload, bug)) in WORKLOADS.iter().enumerate() {
        let bench = benchmarks
            .iter()
            .find(|b| b.name == *workload)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        let spec = bench
            .bugs
            .iter()
            .find(|b| b.name == *bug)
            .unwrap_or_else(|| panic!("{workload} has no bug {bug}"));
        let program = (spec.build)();

        let search_start = Instant::now();
        let report = Search::over(&program)
            .config(SearchConfig {
                max_executions: Some(BUDGET),
                stop_on_first_bug: true,
                ..SearchConfig::default()
            })
            .run()
            .expect("search");
        let search_seconds = search_start.elapsed().as_secs_f64();
        let found = report
            .first_bug()
            .unwrap_or_else(|| panic!("{workload} --bug {bug}: no bug in {BUDGET} executions"));
        let schedule = found.schedule.clone();

        let mut shrink_best = f64::INFINITY;
        let mut witness = None;
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            let explained = ExplainedWitness::explain(&program, &schedule);
            shrink_best = shrink_best.min(start.elapsed().as_secs_f64());
            witness = Some(explained);
        }
        let witness = witness.unwrap();

        let mut bundle_best = f64::INFINITY;
        let mut bundle_bytes = 0usize;
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            let graph = CausalGraph::from_execution(&witness.trace, &witness.outcome);
            let chrome = ChromeTrace::new().add_execution(&witness.trace, &witness.outcome);
            let artifacts = [
                ("witness.json", witness.to_json()),
                (
                    "lanes.txt",
                    format!("{}\n", render::lanes_wrapped(&witness.trace, 120)),
                ),
                ("hb.dot", graph.to_dot()),
                ("hb.json", graph.to_json()),
                ("trace.chrome.json", chrome.render()),
                ("EXPLANATION.md", witness.to_markdown(bench.name)),
            ];
            bundle_bytes = artifacts.iter().map(|(_, text)| text.len()).sum();
            for (name, text) in &artifacts {
                std::fs::write(out_dir.join(name), text).expect("write artifact");
            }
            bundle_best = bundle_best.min(start.elapsed().as_secs_f64());
        }

        println!(
            "{workload} --bug {bug}: witness {} ({} preemptions, {} steps)",
            witness.schedule,
            witness.preemptions,
            witness.trace.len()
        );
        println!(
            "  search {search_seconds:.3}s ({} executions) | shrink {:.1}ms \
             ({} replays) | bundle {:.1}ms ({bundle_bytes} bytes)",
            report.executions,
            shrink_best * 1e3,
            witness.shrink_replays,
            bundle_best * 1e3,
        );

        write!(
            rows,
            concat!(
                "    {{\n",
                "      \"workload\": \"{workload}\",\n",
                "      \"bug\": \"{bug}\",\n",
                "      \"search_executions\": {execs},\n",
                "      \"search_seconds\": {search:.3},\n",
                "      \"witness_preemptions\": {preempt},\n",
                "      \"witness_steps\": {steps},\n",
                "      \"shrink_replays\": {replays},\n",
                "      \"shrink_seconds\": {shrink:.6},\n",
                "      \"bundle_bytes\": {bytes},\n",
                "      \"bundle_write_seconds\": {bundle:.6}\n",
                "    }}{comma}\n",
            ),
            workload = workload,
            bug = bug.replace('"', "\\\""),
            execs = report.executions,
            search = search_seconds,
            preempt = witness.preemptions,
            steps = witness.trace.len(),
            replays = witness.shrink_replays,
            shrink = shrink_best,
            bytes = bundle_bytes,
            bundle = bundle_best,
            comma = if i + 1 < WORKLOADS.len() { "," } else { "" },
        )
        .unwrap();
    }
    let _ = std::fs::remove_dir_all(&out_dir);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"explain_pipeline\",\n",
            "  \"strategy\": \"icb\",\n",
            "  \"budget\": {budget},\n",
            "  \"iterations\": {iters},\n",
            "  \"workloads\": [\n{rows}  ]\n",
            "}}\n",
        ),
        budget = BUDGET,
        iters = ITERATIONS,
        rows = rows,
    );
    let path = "results/BENCH_explain.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::File::create(path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}
