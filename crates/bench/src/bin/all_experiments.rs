//! Regenerates every table and figure of the paper, in order.
fn main() {
    icb_bench::experiments::all();
}
