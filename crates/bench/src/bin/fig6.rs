//! Regenerates the paper's fig6. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::fig6();
}
