//! `faults_bench` — the fault-bound ablation: runs the fault-injection
//! workloads (plus one classic preemption bug as a control) over the
//! whole `(preemption_bound, fault_bound)` grid and writes
//! `results/BENCH_faults.json`.
//!
//! The grid makes the tentpole claim measurable: a fault-dependent bug
//! is invisible along the entire `f = 0` column no matter how high the
//! preemption bound climbs, appears exactly when `f` reaches the bug's
//! `expected_faults`, and its witness carries the minimum
//! `(preemptions, faults)` level — while a classic preemption bug's row
//! is untouched by `f`, paying only the extra executions of the widened
//! space.
//!
//! ```sh
//! cargo run --release -p icb-bench --bin faults_bench
//! ```

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use icb_core::search::{Search, SearchConfig};
use icb_workloads::registry::all_benchmarks;

const BUDGET: usize = 200_000;
const MAX_PREEMPTION_BOUND: usize = 2;
const MAX_FAULT_BOUND: usize = 2;

/// The ablation subjects: both fault-dependent bugs, plus the paper's
/// Bluetooth driver bug as the preemption-only control row.
const WORKLOADS: [(&str, &str); 3] = [
    ("Fault Injection", "shed-on-try-lock-failure"),
    ("Fault Injection", "missing-spurious-recheck"),
    ("Bluetooth", "check-then-increment"),
];

fn main() {
    let benchmarks = all_benchmarks();
    let mut workload_rows = String::new();
    for (w, (workload, bug)) in WORKLOADS.iter().enumerate() {
        let bench = benchmarks
            .iter()
            .find(|b| b.name == *workload)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        let spec = bench
            .bugs
            .iter()
            .find(|b| b.name == *bug)
            .unwrap_or_else(|| panic!("{workload} has no bug {bug}"));
        println!(
            "{workload} --bug {bug} (expected bound {}, expected faults {})",
            spec.expected_bound, spec.expected_faults
        );

        let mut cells = String::new();
        for c in 0..=MAX_PREEMPTION_BOUND {
            for f in 0..=MAX_FAULT_BOUND {
                let program = (spec.build)();
                let start = Instant::now();
                let report = Search::over(&program)
                    .config(SearchConfig {
                        max_executions: Some(BUDGET),
                        preemption_bound: Some(c),
                        fault_bound: f,
                        ..SearchConfig::default()
                    })
                    .run()
                    .expect("search");
                let seconds = start.elapsed().as_secs_f64();
                let witness = report.first_bug();
                println!(
                    "  (c={c}, f={f}): {} executions, {} — {:.3}s",
                    report.executions,
                    match witness {
                        Some(b) => format!(
                            "bug at ({} preemptions, {} faults)",
                            b.preemptions, b.faults
                        ),
                        None => "no bug".into(),
                    },
                    seconds,
                );
                write!(
                    cells,
                    concat!(
                        "        {{\"preemption_bound\": {c}, \"fault_bound\": {f}, ",
                        "\"executions\": {execs}, \"distinct_states\": {states}, ",
                        "\"bug_found\": {found}, \"witness_preemptions\": {wp}, ",
                        "\"witness_faults\": {wf}, \"seconds\": {secs:.3}}},\n",
                    ),
                    c = c,
                    f = f,
                    execs = report.executions,
                    states = report.distinct_states,
                    found = witness.is_some(),
                    wp = witness.map_or(-1i64, |b| b.preemptions as i64),
                    wf = witness.map_or(-1i64, |b| b.faults as i64),
                    secs = seconds,
                )
                .unwrap();
            }
        }
        // Drop the trailing comma of the last cell.
        let cells = cells.trim_end().trim_end_matches(',').to_string();
        write!(
            workload_rows,
            concat!(
                "    {{\n",
                "      \"workload\": \"{workload}\",\n",
                "      \"bug\": \"{bug}\",\n",
                "      \"expected_bound\": {eb},\n",
                "      \"expected_faults\": {ef},\n",
                "      \"grid\": [\n{cells}\n      ]\n",
                "    }}{comma}\n",
            ),
            workload = workload,
            bug = bug,
            eb = spec.expected_bound,
            ef = spec.expected_faults,
            cells = cells,
            comma = if w + 1 < WORKLOADS.len() { "," } else { "" },
        )
        .unwrap();
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fault_grid\",\n",
            "  \"strategy\": \"icb\",\n",
            "  \"budget\": {budget},\n",
            "  \"max_preemption_bound\": {mc},\n",
            "  \"max_fault_bound\": {mf},\n",
            "  \"workloads\": [\n{rows}  ]\n",
            "}}\n",
        ),
        budget = BUDGET,
        mc = MAX_PREEMPTION_BOUND,
        mf = MAX_FAULT_BOUND,
        rows = workload_rows,
    );
    let path = "results/BENCH_faults.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::File::create(path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}
