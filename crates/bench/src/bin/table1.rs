//! Regenerates the paper's table1. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::table1();
}
