//! `cache_bench` — the cached-vs-uncached ablation for the fingerprint
//! cache subsystem, written to `results/BENCH_cache.json`.
//!
//! For each explicit-state (VM-modeled) workload it runs the same ICB
//! search three ways:
//!
//! 1. **uncached** — the baseline `Search` with no cache attached;
//! 2. **cold cache** — a fresh on-disk cache directory: the run pays
//!    store traffic and, on completion, certifies its bound into the
//!    ledger;
//! 3. **warm cache** — the same directory again: the certification
//!    ledger answers the whole search without executing anything.
//!
//! The report shows executions pruned by the warm run, the wall-clock
//! delta, and the in-run table hit rate of the cold run. Because these
//! workloads use exact VM fingerprints, every run must agree on final
//! coverage and bug verdict — asserted before anything is reported.
//!
//! ```sh
//! cargo run --release -p icb-bench --bin cache_bench
//! ```

use std::io::Write;
use std::time::Instant;

use icb_cache::CacheStore;
use icb_core::search::{Search, SearchConfig, SearchReport};
use icb_core::ControlledProgram;
use icb_workloads::registry::{all_benchmarks, program_identity, AnyProgram};

const BOUND: usize = 2;
const WORKLOADS: [&str; 2] = ["Transaction Manager", "Work Stealing Q."];

struct Row {
    workload: &'static str,
    uncached: (SearchReport, f64),
    cold: (SearchReport, f64),
    warm: (SearchReport, f64),
}

fn vm_program(name: &str) -> AnyProgram {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("{name} benchmark"));
    let model = bench
        .vm_model
        .unwrap_or_else(|| panic!("{name} has no VM model"))();
    AnyProgram::Vm(model)
}

fn run(program: &AnyProgram, cache: Option<&CacheStore>) -> (SearchReport, f64) {
    let start = Instant::now();
    let mut search = Search::over(program).config(SearchConfig {
        preemption_bound: Some(BOUND),
        ..SearchConfig::default()
    });
    if let Some(store) = cache {
        search = search
            .cache(store)
            .cache_heuristic(!program.fingerprints_are_exact());
    }
    let report = search.run().expect("search");
    (report, start.elapsed().as_secs_f64())
}

fn measure(workload: &'static str) -> Row {
    let program = vm_program(workload);
    let dir = std::env::temp_dir().join(format!("icb-cache-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let id = program_identity(workload, None, &program);

    let uncached = run(&program, None);
    let cold_store = CacheStore::open(&dir, id).expect("open cold cache");
    let cold = run(&program, Some(&cold_store));
    drop(cold_store);
    let warm_store = CacheStore::open(&dir, id).expect("open warm cache");
    let warm = run(&program, Some(&warm_store));
    let _ = std::fs::remove_dir_all(&dir);

    // The ablation is only meaningful if every mode agrees on the answer.
    assert_eq!(uncached.0.distinct_states, cold.0.distinct_states);
    assert_eq!(uncached.0.bugs.len(), cold.0.bugs.len());
    assert_eq!(uncached.0.bugs.len(), warm.0.bugs.len());
    assert!(cold.0.cache.as_ref().is_some_and(|c| c.stores > 0));
    assert!(warm.0.cache.as_ref().is_some_and(|c| c.certified));
    assert_eq!(
        warm.0.executions, 0,
        "warm run must be answered by the ledger"
    );

    Row {
        workload,
        uncached,
        cold,
        warm,
    }
}

/// The runtime (happens-before hash) counterpart: heuristic fingerprints
/// never certify or persist, so the interesting number is the *in-run*
/// table hit rate and the executions it prunes against the uncached
/// baseline.
fn measure_heuristic(workload: &'static str) -> (SearchReport, f64, SearchReport, f64) {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == workload)
        .unwrap_or_else(|| panic!("{workload} benchmark"));
    let program = (bench.correct)();
    assert!(!program.fingerprints_are_exact());
    let dir = std::env::temp_dir().join(format!("icb-cache-bench-h-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let id = program_identity(workload, None, &program);

    let (uncached, uncached_secs) = run(&program, None);
    let store = CacheStore::open(&dir, id).expect("open heuristic cache");
    let (cached, cached_secs) = run(&program, Some(&store));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(uncached.bugs.len(), cached.bugs.len());
    assert!(cached
        .cache
        .as_ref()
        .is_some_and(|c| c.heuristic && !c.certified));

    (uncached, uncached_secs, cached, cached_secs)
}

fn hit_rate(report: &SearchReport) -> f64 {
    let Some(cache) = &report.cache else {
        return 0.0;
    };
    let probes = cache.hits + cache.stores;
    if probes == 0 {
        0.0
    } else {
        100.0 * cache.hits as f64 / probes as f64
    }
}

fn main() {
    let rows: Vec<Row> = WORKLOADS.into_iter().map(measure).collect();

    let mut entries = Vec::new();
    for row in &rows {
        let (uncached, uncached_secs) = &row.uncached;
        let (cold, cold_secs) = &row.cold;
        let (warm, warm_secs) = &row.warm;
        let cold_cache = cold.cache.as_ref().expect("cold run had a cache");
        let pruned = uncached.executions - warm.executions;
        let pruned_pct = 100.0 * pruned as f64 / uncached.executions.max(1) as f64;
        let delta = uncached_secs - warm_secs;

        println!(
            "{}: bound {BOUND}, {} executions, {} states uncached",
            row.workload, uncached.executions, uncached.distinct_states
        );
        println!(
            "  cold cache: {} executions, {} store(s), {:.1}% in-run hit rate ({:.3}s)",
            cold.executions,
            cold_cache.stores,
            hit_rate(cold),
            cold_secs
        );
        println!(
            "  warm cache: {} executions (certified), {} pruned ({pruned_pct:.0}%), {delta:+.3}s saved",
            warm.executions, pruned
        );

        entries.push(format!(
            concat!(
                "  {{\n",
                "    \"workload\": \"{workload}\",\n",
                "    \"preemption_bound\": {bound},\n",
                "    \"uncached\": {{ \"executions\": {u_execs}, \"seconds\": {u_secs:.4} }},\n",
                "    \"cold_cache\": {{ \"executions\": {c_execs}, \"stores\": {c_stores}, ",
                "\"in_run_hit_rate_pct\": {c_rate:.2}, \"seconds\": {c_secs:.4} }},\n",
                "    \"warm_cache\": {{ \"executions\": {w_execs}, \"hits\": {w_hits}, ",
                "\"certified\": true, \"seconds\": {w_secs:.4} }},\n",
                "    \"executions_pruned\": {pruned},\n",
                "    \"executions_pruned_pct\": {pruned_pct:.1},\n",
                "    \"wall_clock_delta_seconds\": {delta:.4},\n",
                "    \"verdicts_match\": true\n",
                "  }}"
            ),
            workload = row.workload,
            bound = BOUND,
            u_execs = uncached.executions,
            u_secs = uncached_secs,
            c_execs = cold.executions,
            c_stores = cold_cache.stores,
            c_rate = hit_rate(cold),
            c_secs = cold_secs,
            w_execs = warm.executions,
            w_hits = warm.cache.as_ref().map_or(0, |c| c.hits),
            w_secs = warm_secs,
            pruned = pruned,
            pruned_pct = pruned_pct,
            delta = delta,
        ));
    }

    let (h_uncached, h_uncached_secs, h_cached, h_cached_secs) = measure_heuristic("Bluetooth");
    let h_pruned = h_uncached.executions.saturating_sub(h_cached.executions);
    println!(
        "Bluetooth (heuristic): bound {BOUND}, {} executions uncached",
        h_uncached.executions
    );
    println!(
        "  in-run cache: {} executions, {} pruned, {:.1}% hit rate ({:.3}s vs {:.3}s), non-exhaustive",
        h_cached.executions,
        h_pruned,
        hit_rate(&h_cached),
        h_cached_secs,
        h_uncached_secs
    );
    entries.push(format!(
        concat!(
            "  {{\n",
            "    \"workload\": \"Bluetooth\",\n",
            "    \"mode\": \"heuristic (happens-before hashes, non-exhaustive)\",\n",
            "    \"preemption_bound\": {bound},\n",
            "    \"uncached\": {{ \"executions\": {u_execs}, \"seconds\": {u_secs:.4} }},\n",
            "    \"in_run_cache\": {{ \"executions\": {c_execs}, \"hits\": {c_hits}, ",
            "\"stores\": {c_stores}, \"in_run_hit_rate_pct\": {c_rate:.2}, \"seconds\": {c_secs:.4} }},\n",
            "    \"executions_pruned\": {pruned},\n",
            "    \"wall_clock_delta_seconds\": {delta:.4},\n",
            "    \"verdicts_match\": true\n",
            "  }}"
        ),
        bound = BOUND,
        u_execs = h_uncached.executions,
        u_secs = h_uncached_secs,
        c_execs = h_cached.executions,
        c_hits = h_cached.cache.as_ref().map_or(0, |c| c.hits),
        c_stores = h_cached.cache.as_ref().map_or(0, |c| c.stores),
        c_rate = hit_rate(&h_cached),
        c_secs = h_cached_secs,
        pruned = h_pruned,
        delta = h_uncached_secs - h_cached_secs,
    ));

    let json = format!(
        "{{\n  \"bench\": \"fingerprint_cache\",\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = "results/BENCH_cache.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::File::create(path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}
