//! Regenerates the paper's theorem1. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::theorem1();
}
