//! Regenerates the paper's table2. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::table2();
}
