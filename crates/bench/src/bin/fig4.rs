//! Regenerates the paper's fig4. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::fig4();
}
