//! `explore` — the command-line front door to the checkers.
//!
//! ```text
//! explore list
//! explore run <benchmark> [--bug <name>] [--strategy icb|dfs|db:N|random|best-first]
//!             [--bound N] [--fault-bound N] [--budget N] [--jobs N] [--shrink]
//!             [--cache <dir>] [--cache-heuristic]
//!             [--checkpoint <path>] [--checkpoint-every N] [--max-wall-time-ms N]
//!             [--telemetry jsonl:<path>] [--progress] [--profile]
//!             [--serve-metrics <addr>]
//! explore resume <checkpoint> [--jobs N] [--checkpoint-every N]
//!                [--cache <dir>] [--cache-heuristic]
//!                [--telemetry jsonl:<path>] [--progress] [--profile]
//!                [--serve-metrics <addr>]
//! explore top <addr> [--interval-ms N] [--once]
//! explore explain <benchmark> [--bug <name>] [--strategy icb|dfs|db:N|random|best-first]
//!                 [--budget N] [--bound N] [--fault-bound N] [--jobs N] [--out <dir>]
//!                 [--from <run.jsonl>] [--wrap N] [--timings]
//! explore replay <benchmark> [--bug <name>] --schedule "T0 T1 T1 …"
//!                [--telemetry jsonl:<path>]
//! explore report <run.jsonl>... [--markdown] [--top N] [--stitch]
//! explore cache stats|ls <dir>
//! explore cache gc <dir>
//! explore cache invalidate <dir> <benchmark> [--bug <name>]
//! explore disasm <benchmark>
//! ```
//!
//! `--telemetry jsonl:<path>` streams every search event as one JSON
//! object per line to `<path>`; `--progress` prints a rate-limited live
//! status line (with a Theorem-1 ETA) to stderr; `--profile` attaches
//! the exploration profiler and prints a paper-style report (per-bound
//! results, hottest preemption sites, phase timing) when the search
//! ends. All three can be combined — with `--profile`, the JSONL stream
//! also carries the per-step `choice-point` / `preemption-taken` /
//! `phase-time` events, so `explore report` can rebuild the same tables
//! offline.
//!
//! `--serve-metrics <addr>` attaches the live metrics registry to the
//! search and serves it as a Prometheus text-exposition page at
//! `http://<addr>/metrics` (bind to port 0 for an ephemeral port; the
//! resolved address is printed to stderr). The page is rendered from
//! lock-free atomics on every scrape, so serving it costs the search
//! nothing between scrapes. `explore top <addr>` polls such an endpoint
//! (or any Prometheus-compatible ICB exporter) and renders a refreshing
//! terminal status board: per-bound progress with the Theorem-1 ETA,
//! per-worker utilization bars, and a throughput sparkline. `--once`
//! prints a single frame and exits (useful in scripts and CI);
//! `--interval-ms` sets the poll cadence. With `--serve-metrics`, the
//! JSONL stream additionally carries periodic `metrics-snapshot` events
//! that `explore report` turns into throughput-over-time and
//! worker-utilization tables.
//!
//! `--jobs N` shards the exploration over `N` worker threads, each with
//! its own runtime engine and race detector, pulling work from a shared
//! frontier with work-stealing rebalance. Results are merged
//! deterministically: the same report at any `N >= 2`, and `--jobs 1`
//! (the default) stays byte-identical to the sequential checker.
//! Checkpoints taken under `--jobs N` resume at any other `--jobs M`.
//!
//! `--cache <dir>` attaches a persistent state-fingerprint cache: a
//! completed bug-free run certifies its result in `<dir>` and records
//! every fully-explored `(state, next-thread)` subtree, so a later run
//! of the same program prunes already-covered work items — or, when the
//! certification ledger already covers the requested bound, skips the
//! search entirely. Exact (and therefore sound) for VM benchmarks;
//! runtime benchmarks use heuristic happens-before fingerprints and
//! require the explicit `--cache-heuristic` opt-in, which marks the
//! report non-exhaustive. `explore cache stats|ls|gc|invalidate`
//! administers a cache directory.
//!
//! `--checkpoint <path>` makes the search crash-resilient: a snapshot of
//! the full search state is written atomically every `--checkpoint-every`
//! executions (default 1000) and on any abort, including Ctrl-C. After a
//! crash, `explore resume <checkpoint>` rebuilds the benchmark from the
//! snapshot's metadata and continues the search; because snapshots sit
//! at execution boundaries and replay is deterministic, the final report
//! matches the uninterrupted run's. `--max-wall-time-ms` arms a
//! per-execution watchdog so a hung execution becomes a recoverable
//! outcome instead of a wedged search. `explore report --stitch` merges
//! the per-segment JSONL logs of a resumed run into one report.
//!
//! `explain` turns the first witness of a search (or of a previously
//! recorded `--telemetry` JSONL log, via `--from`) into a self-contained
//! explanation bundle under `--out <dir>`: `witness.json` (the shrunk,
//! per-step-attributed schedule), `lanes.txt` (the per-thread lane
//! rendering, wrapped at `--wrap` columns), `hb.dot` / `hb.json` (the
//! happens-before relation as a causal graph, racing pair highlighted),
//! `trace.chrome.json` (a Chrome trace-event timeline loadable in
//! Perfetto / `chrome://tracing`), and `EXPLANATION.md` tying them
//! together with the nearest-passing-schedule diff. Every artifact is a
//! pure function of the witness, so `--jobs N` produces byte-identical
//! bundles. `--timings` adds the profiler's wall-clock phase spans to
//! the Chrome trace (opting out of byte-determinism).
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p icb-bench --bin explore -- list
//! cargo run --release -p icb-bench --bin explore -- run "Bluetooth" --bug check-then-increment
//! cargo run --release -p icb-bench --bin explore -- explain "Bluetooth" --out bundle/
//! cargo run --release -p icb-bench --bin explore -- run "Work Stealing Q." --strategy random --budget 5000
//! cargo run --release -p icb-bench --bin explore -- run "Bluetooth" --telemetry jsonl:events.jsonl --profile
//! cargo run --release -p icb-bench --bin explore -- report events.jsonl --markdown
//! cargo run --release -p icb-bench --bin explore -- disasm "Transaction Manager"
//! ```

use std::io::BufWriter;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use icb_cache::CacheStore;
use icb_core::search::{Search, SearchConfig, SearchReport, Strategy};
use icb_core::snapshot::interrupt;
use icb_core::NullSink;
use icb_core::{
    render, shrink, Checkpointer, ControlledProgram, CoverageTracker, ExplainedWitness,
    MetricsRegistry, ReplayScheduler, Schedule, SearchObserver, SearchSnapshot,
};
use icb_race::CausalGraph;
use icb_telemetry::export::chrome::ChromeTrace;
use icb_telemetry::{
    parse_exposition, render_markdown, render_text, scrape, series_value, ExplorationProfiler,
    JsonlSink, MetricsServer, MultiObserver, ProgressReporter, RunReport,
};
use icb_workloads::registry::{all_benchmarks, program_identity, AnyProgram, BenchmarkInfo};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  explore list");
            eprintln!(
                "  explore run <benchmark> [--bug <name>] [--strategy icb|dfs|db:N|random|best-first]"
            );
            eprintln!(
                "              [--bound N] [--fault-bound N] [--budget N] [--jobs N] [--shrink]"
            );
            eprintln!("              [--cache <dir>] [--cache-heuristic]");
            eprintln!(
                "              [--checkpoint <path>] [--checkpoint-every N] [--max-wall-time-ms N]"
            );
            eprintln!("              [--telemetry jsonl:<path>] [--progress] [--profile]");
            eprintln!("              [--serve-metrics <addr>]");
            eprintln!("  explore resume <checkpoint> [--jobs N] [--checkpoint-every N]");
            eprintln!("                 [--cache <dir>] [--cache-heuristic]");
            eprintln!("                 [--telemetry jsonl:<path>] [--progress] [--profile]");
            eprintln!("                 [--serve-metrics <addr>]");
            eprintln!("  explore top <addr> [--interval-ms N] [--once]");
            eprintln!(
                "  explore explain <benchmark> [--bug <name>] [--strategy s] [--budget N] [--bound N]"
            );
            eprintln!("                  [--fault-bound N] [--jobs N] [--out <dir>] [--from <run.jsonl>] [--wrap N] [--timings]");
            eprintln!("  explore replay <benchmark> [--bug <name>] --schedule \"T0 T1 ...\"");
            eprintln!("                 [--telemetry jsonl:<path>]");
            eprintln!("  explore report <run.jsonl>... [--markdown] [--top N] [--stitch]");
            eprintln!("  explore cache stats|ls|gc <dir>");
            eprintln!("  explore cache invalidate <dir> <benchmark> [--bug <name>]");
            eprintln!("  explore disasm <benchmark>");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            Ok(())
        }
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        other => Err(match other {
            Some(cmd) => format!("unknown command `{cmd}`"),
            None => "missing command".to_string(),
        }),
    }
}

fn list() {
    for bench in all_benchmarks() {
        println!("{} ({} threads)", bench.name, bench.paper_threads);
        for bug in &bench.bugs {
            if bug.expected_faults > 0 {
                println!(
                    "    --bug \"{}\" (expected bound {}, fault bound {})",
                    bug.name, bug.expected_bound, bug.expected_faults
                );
            } else {
                println!(
                    "    --bug \"{}\" (expected bound {})",
                    bug.name, bug.expected_bound
                );
            }
        }
    }
}

fn find_benchmark(name: &str) -> Result<BenchmarkInfo, String> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark `{name}` (see `explore list`)"))
}

fn build_program(bench: &BenchmarkInfo, bug: Option<&str>) -> Result<AnyProgram, String> {
    match bug {
        None => Ok((bench.correct)()),
        Some(name) => bench
            .bugs
            .iter()
            .find(|b| b.name.eq_ignore_ascii_case(name))
            .map(|b| (b.build)())
            .ok_or_else(|| format!("unknown bug `{name}` for {}", bench.name)),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Opens the `--telemetry jsonl:<path>` sink, when requested.
fn open_jsonl(
    args: &[String],
    profile: bool,
) -> Result<Option<JsonlSink<BufWriter<std::fs::File>>>, String> {
    match flag_value(args, "--telemetry") {
        Some(spec) => {
            let path = spec
                .strip_prefix("jsonl:")
                .ok_or("unsupported --telemetry sink (expected jsonl:<path>)")?;
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            Ok(Some(
                JsonlSink::new(BufWriter::new(file)).with_profile_events(profile),
            ))
        }
        None => Ok(None),
    }
}

/// Drains a finished JSONL sink, warning if events were lost.
fn close_jsonl(sink: JsonlSink<BufWriter<std::fs::File>>) {
    if sink.failed() {
        eprintln!("warning: telemetry stream hit a write error; events were dropped");
    }
    drop(sink.into_inner()); // flush the BufWriter
}

/// Parses `--jobs`, defaulting to one (sequential) worker.
fn parse_jobs(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--jobs") {
        Some(v) => v.parse().map_err(|_| "invalid --jobs".into()),
        None => Ok(1),
    }
}

/// Parses `--fault-bound`, defaulting to zero (no fault injection).
fn parse_fault_bound(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--fault-bound") {
        Some(v) => v.parse().map_err(|_| "invalid --fault-bound".into()),
        None => Ok(0),
    }
}

/// Maps a `--strategy` name to the session [`Strategy`].
fn parse_strategy(name: &str) -> Result<Strategy, String> {
    match name {
        "icb" => Ok(Strategy::Icb),
        "dfs" => Ok(Strategy::Dfs),
        "random" => Ok(Strategy::Random { seed: 0x1cb }),
        "best-first" => Ok(Strategy::BestFirst),
        other => match other.strip_prefix("db:").map(str::parse) {
            Some(Ok(bound)) => Ok(Strategy::DepthBounded(bound)),
            _ => Err(format!("unknown strategy `{other}`")),
        },
    }
}

/// Parses `--checkpoint-every`, defaulting to one snapshot per 1000
/// executions.
fn checkpoint_every(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--checkpoint-every") {
        Some(v) => v.parse().map_err(|_| "invalid --checkpoint-every".into()),
        None => Ok(1000),
    }
}

/// Arms the per-execution watchdog on a runtime benchmark, so a hung
/// execution becomes a recoverable `watchdog-timeout` outcome.
fn arm_watchdog(program: &mut AnyProgram, ms: u64) -> Result<(), String> {
    match program {
        AnyProgram::Runtime(p) => {
            p.config_mut().max_wall_time = Some(Duration::from_millis(ms));
            Ok(())
        }
        AnyProgram::Vm(_) => Err(
            "--max-wall-time-ms applies to runtime benchmarks only (VM models cannot hang)".into(),
        ),
    }
}

/// Opens the `--cache <dir>` store for this benchmark/bug combination,
/// when requested.
fn open_cache(
    args: &[String],
    bench_name: &str,
    bug: Option<&str>,
    program: &AnyProgram,
) -> Result<Option<CacheStore>, String> {
    match flag_value(args, "--cache") {
        Some(dir) => {
            let id = program_identity(bench_name, bug, program);
            CacheStore::open(Path::new(dir), id)
                .map(Some)
                .map_err(|e| format!("cannot open cache {dir}: {e}"))
        }
        None => Ok(None),
    }
}

/// Warns when a certification could not be persisted (the run itself
/// already succeeded; only the cache write failed).
fn report_cache_errors(cache: &Option<CacheStore>) {
    if let Some(e) = cache.as_ref().and_then(|c| c.last_persist_error()) {
        eprintln!("warning: cache segment could not be written: {e}");
    }
}

/// Opens the `--serve-metrics <addr>` registry and HTTP listener, when
/// requested. The registry comes back alongside the server so `run` /
/// `resume` can wire the same instance into the search (and a shared
/// [`ProgressReporter`]).
fn open_metrics(
    args: &[String],
    paper_threads: usize,
) -> Result<Option<(Arc<MetricsRegistry>, MetricsServer)>, String> {
    match flag_value(args, "--serve-metrics") {
        Some(addr) => {
            let registry = Arc::new(MetricsRegistry::new());
            // Same Theorem-1 parameterization the progress reporter
            // uses, so /metrics and `explore top` carry the ETA too.
            let n = paper_threads as u64;
            registry.set_theorem1(n, n);
            let server = MetricsServer::start(addr, Arc::clone(&registry))
                .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
            eprintln!("serving metrics at http://{}/metrics", server.addr());
            Ok(Some((registry, server)))
        }
        None => Ok(None),
    }
}

/// The observer bundle shared by `run` and `resume`: an optional JSONL
/// event stream, a live progress line, and the exploration profiler.
struct Observers {
    jsonl: Option<JsonlSink<BufWriter<std::fs::File>>>,
    progress: Option<ProgressReporter<std::io::Stderr>>,
    profiler: Option<ExplorationProfiler>,
}

impl Observers {
    fn from_args(
        args: &[String],
        paper_threads: usize,
        metrics: Option<&Arc<MetricsRegistry>>,
    ) -> Result<Self, String> {
        let profile = args.iter().any(|a| a == "--profile");
        Ok(Observers {
            jsonl: open_jsonl(args, profile)?,
            progress: args.iter().any(|a| a == "--progress").then(|| {
                // n from the registry; b ≈ one blocking step
                // (termination) per thread — good enough for an
                // order-of-magnitude ETA.
                let n = paper_threads as u64;
                let reporter = ProgressReporter::stderr();
                match metrics {
                    // The search mirrors its events into a shared
                    // registry (--serve-metrics): the reporter renders
                    // that registry, so the status line, /metrics, and
                    // `explore top` all show the same numbers.
                    Some(registry) => reporter.with_registry(Arc::clone(registry)),
                    None => {
                        reporter.registry().set_theorem1(n, n);
                        reporter
                    }
                }
            }),
            profiler: profile.then(ExplorationProfiler::new),
        })
    }

    fn fan_out(&mut self) -> MultiObserver<'_> {
        let mut observers = MultiObserver::new();
        if let Some(sink) = self.jsonl.as_mut() {
            observers.push(sink);
        }
        if let Some(reporter) = self.progress.as_mut() {
            observers.push(reporter);
        }
        if let Some(p) = self.profiler.as_mut() {
            observers.push(p);
        }
        observers
    }

    /// Flushes the JSONL stream and prints the report, the profiler
    /// tables, and — when a bug was found — the witness.
    fn finish(
        self,
        report: &SearchReport,
        program: &AnyProgram,
        args: &[String],
        registry: Option<&MetricsRegistry>,
    ) -> Result<(), String> {
        let top: usize = match flag_value(args, "--top") {
            Some(v) => v.parse().map_err(|_| "invalid --top")?,
            None => 10,
        };
        if let Some(sink) = self.jsonl {
            close_jsonl(sink);
        }
        println!("{report}");
        if let Some(profiler) = &self.profiler {
            println!();
            print!("{}", render_text(&[profiler.run_report()], top));
        }
        if let Some(bug) = report.first_bug() {
            println!();
            println!("witness: {}", bug.schedule);
            if args.iter().any(|a| a == "--shrink") {
                let shrunk = shrink::minimize_witness(program, &bug.schedule);
                if let Some(r) = registry {
                    r.shrink_replays_add(shrunk.replays);
                }
                println!(
                    "shrunk to {} forced choice(s) in {} replays: {}",
                    shrunk.schedule.len(),
                    shrunk.replays,
                    shrunk.schedule
                );
            }
            let mut replay = ReplayScheduler::new(bug.schedule.clone());
            let result = program.execute(&mut replay, &mut NullSink);
            println!();
            println!("{}", render::lanes(&result.trace));
        }
        Ok(())
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("missing benchmark name")?;
    let bench = find_benchmark(name)?;
    let mut program = build_program(&bench, flag_value(args, "--bug"))?;

    let budget: usize = match flag_value(args, "--budget") {
        Some(v) => v.parse().map_err(|_| "invalid --budget")?,
        None => 200_000,
    };
    let bound: Option<usize> = match flag_value(args, "--bound") {
        Some(v) => Some(v.parse().map_err(|_| "invalid --bound")?),
        None => None,
    };
    let config = SearchConfig {
        max_executions: Some(budget),
        preemption_bound: bound,
        fault_bound: parse_fault_bound(args)?,
        stop_on_first_bug: true,
        ..SearchConfig::default()
    };
    let strat = flag_value(args, "--strategy").unwrap_or("icb");
    let strategy = parse_strategy(strat)?;
    let jobs = parse_jobs(args)?;
    if let Some(ms) = flag_value(args, "--max-wall-time-ms") {
        let ms: u64 = ms.parse().map_err(|_| "invalid --max-wall-time-ms")?;
        arm_watchdog(&mut program, ms)?;
    }

    let cache = open_cache(args, bench.name, flag_value(args, "--bug"), &program)?;
    let metrics = open_metrics(args, bench.paper_threads)?;
    let mut obs =
        Observers::from_args(args, bench.paper_threads, metrics.as_ref().map(|(r, _)| r))?;
    println!("exploring {} with {strat}…", bench.name);

    let report = {
        let mut observers = obs.fan_out();
        let mut search = Search::over(&program)
            .strategy(strategy)
            .config(config)
            .jobs(jobs)
            .observer(&mut observers);
        if let Some((registry, _)) = &metrics {
            search = search.metrics(Arc::clone(registry));
        }
        if let Some(store) = &cache {
            search = search
                .cache(store)
                .cache_heuristic(args.iter().any(|a| a == "--cache-heuristic"));
        }
        if let Some(path) = flag_value(args, "--checkpoint") {
            // Snapshot metadata carries everything `resume` needs to
            // rebuild the same program with the same flags.
            let mut meta = vec![("benchmark".to_string(), bench.name.to_string())];
            for flag in ["--bug", "--max-wall-time-ms"] {
                if let Some(v) = flag_value(args, flag) {
                    meta.push((flag.trim_start_matches('-').to_string(), v.to_string()));
                }
            }
            let ckpt = Checkpointer::new(path, checkpoint_every(args)?).with_meta(meta);
            interrupt::install();
            search = search.checkpoint(ckpt);
        }
        search.run().map_err(|e| e.to_string())?
    };
    let registry = metrics.as_ref().map(|(r, _)| Arc::clone(r));
    if let Some((_, server)) = metrics {
        server.shutdown();
    }
    report_cache_errors(&cache);
    obs.finish(&report, &program, args, registry.as_deref())
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing checkpoint path")?;
    let snapshot = SearchSnapshot::read_from(Path::new(path))
        .map_err(|e| format!("cannot resume from {path}: {e}"))?;

    // Rebuild the program from the snapshot's metadata.
    let bench_name = snapshot
        .meta_value("benchmark")
        .ok_or("checkpoint carries no benchmark metadata (not written by `explore run`?)")?
        .to_string();
    let bug = snapshot.meta_value("bug").map(str::to_string);
    let max_wall_time_ms = snapshot.meta_value("max-wall-time-ms").map(str::to_string);
    let bench = find_benchmark(&bench_name)?;
    let mut program = build_program(&bench, bug.as_deref())?;
    if let Some(ms) = max_wall_time_ms {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "corrupt max-wall-time-ms metadata in checkpoint")?;
        arm_watchdog(&mut program, ms)?;
    }

    // Keep checkpointing to the same file; the first new snapshot is due
    // `--checkpoint-every` executions past the one we resumed from (the
    // resumed drive re-arms the checkpointer from the snapshot).
    let ckpt = Checkpointer::new(path, checkpoint_every(args)?).with_meta(snapshot.meta.clone());
    interrupt::install();

    let jobs = parse_jobs(args)?;
    let cache = open_cache(args, &bench_name, bug.as_deref(), &program)?;
    let metrics = open_metrics(args, bench.paper_threads)?;
    let mut obs =
        Observers::from_args(args, bench.paper_threads, metrics.as_ref().map(|(r, _)| r))?;
    let strat = snapshot.strategy.clone();
    println!(
        "resuming {} with {strat} from {path} ({} executions done)…",
        bench.name, snapshot.base.executions
    );
    let report = {
        let mut observers = obs.fan_out();
        let mut search = Search::over(&program)
            .resume_from(snapshot)
            .jobs(jobs)
            .observer(&mut observers)
            .checkpoint(ckpt);
        if let Some((registry, _)) = &metrics {
            search = search.metrics(Arc::clone(registry));
        }
        if let Some(store) = &cache {
            search = search
                .cache(store)
                .cache_heuristic(args.iter().any(|a| a == "--cache-heuristic"));
        }
        search
            .run()
            .map_err(|e| format!("cannot resume from {path}: {e}"))?
    };
    let registry = metrics.as_ref().map(|(r, _)| Arc::clone(r));
    if let Some((_, server)) = metrics {
        server.shutdown();
    }
    report_cache_errors(&cache);
    obs.finish(&report, &program, args, registry.as_deref())
}

/// One eighth-block per sample, scaled to the window's maximum.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                BARS[0]
            } else {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// A `width`-cell utilization bar: `[██████··············]`.
fn utilization_bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut bar = String::with_capacity(width + 2);
    bar.push('[');
    for i in 0..width {
        bar.push(if i < filled { '█' } else { '·' });
    }
    bar.push(']');
    bar
}

/// Extracts the strategy label from the `icb_info{strategy="…"}` series.
fn exposition_strategy(parsed: &[(String, f64)]) -> Option<String> {
    parsed.iter().find_map(|(name, _)| {
        name.strip_prefix("icb_info{strategy=\"")?
            .strip_suffix("\"}")
            .map(str::to_string)
    })
}

/// Renders one `explore top` frame from a parsed exposition page and the
/// recent per-poll execution rates (newest last). Pure, so the board is
/// testable without a live server.
fn render_top_frame(parsed: &[(String, f64)], rates: &[f64]) -> String {
    let value = |name: &str| series_value(parsed, name);
    let count = |name: &str| value(name).unwrap_or(0.0);
    let mut out = String::new();

    let strategy = exposition_strategy(parsed).unwrap_or_else(|| "?".to_string());
    let rate = rates.last().copied().unwrap_or_else(|| {
        let elapsed = count("icb_elapsed_seconds");
        if elapsed > 0.0 {
            count("icb_executions_total") / elapsed
        } else {
            0.0
        }
    });
    out.push_str(&format!(
        "[{strategy}] {:.0}s elapsed — {} execs ({rate:.0}/s), {} states, {} bugs\n",
        count("icb_elapsed_seconds"),
        count("icb_executions_total"),
        count("icb_distinct_states"),
        count("icb_bugs_reported_total"),
    ));

    if let Some(bound) = value("icb_current_bound") {
        let mut line = format!(
            "bound {bound:.0}: {} execs, queue {}, {} deferred",
            count("icb_bound_executions"),
            count("icb_work_queue_depth"),
            count("icb_work_items_deferred_total"),
        );
        match value("icb_eta_seconds") {
            Some(eta) if eta.is_finite() => line.push_str(&format!(", eta {eta:.1}s")),
            Some(_) => line.push_str(", eta beyond the Theorem-1 horizon"),
            None => {}
        }
        line.push('\n');
        out.push_str(&line);
    }

    let workers = count("icb_workers") as usize;
    if workers > 1 {
        out.push_str(&format!(
            "workers ({workers}): frontier {}, pop waits {}, donations {}, pump depth {}\n",
            count("icb_frontier_queue_depth"),
            count("icb_frontier_pop_waits_total"),
            count("icb_steal_donations_total"),
            count("icb_pump_channel_depth"),
        ));
        for w in 0..workers {
            let busy = count(&format!("icb_worker_busy_seconds_total{{worker=\"{w}\"}}"));
            let idle = count(&format!("icb_worker_idle_seconds_total{{worker=\"{w}\"}}"));
            let execs = count(&format!("icb_worker_executions_total{{worker=\"{w}\"}}"));
            let util = if busy + idle > 0.0 {
                busy / (busy + idle)
            } else {
                0.0
            };
            out.push_str(&format!(
                "  w{w} {} {:3.0}%  {execs:.0} execs\n",
                utilization_bar(util, 20),
                util * 100.0
            ));
        }
    }

    let faults = count("icb_faults_injected_total");
    if faults > 0.0 {
        out.push_str(&format!(
            "faults: {faults:.0} injected at fallible operations\n"
        ));
    }

    let shrink_replays = count("icb_shrink_replays_total");
    if shrink_replays > 0.0 {
        out.push_str(&format!(
            "shrink: {shrink_replays:.0} replays spent minimizing witnesses\n"
        ));
    }

    let probes = count("icb_cache_table_probes_total");
    if probes > 0.0 {
        out.push_str(&format!(
            "cache: {} pruned, {} stored; table {probes:.0} probes, {:.0}% covered\n",
            count("icb_cache_hits_total"),
            count("icb_cache_stores_total"),
            100.0 * count("icb_cache_table_hits_total") / probes,
        ));
    }
    let checkpoints = count("icb_checkpoints_written_total");
    let quarantined = count("icb_quarantined_total");
    if checkpoints > 0.0 || quarantined > 0.0 {
        out.push_str(&format!(
            "resilience: {checkpoints:.0} checkpoints, {quarantined:.0} quarantined, {} watchdog trips\n",
            count("icb_watchdog_trips_total"),
        ));
    }
    if rates.len() > 1 {
        out.push_str(&format!("throughput {}\n", sparkline(rates)));
    }
    out
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let addr = args
        .first()
        .ok_or("missing metrics address (expected `explore top <host:port>`)")?;
    let once = args.iter().any(|a| a == "--once");
    let interval = match flag_value(args, "--interval-ms") {
        Some(v) => Duration::from_millis(v.parse().map_err(|_| "invalid --interval-ms")?),
        None => Duration::from_millis(1000),
    };
    // Rates come from deltas between polls of the cumulative execution
    // counter, keyed on the *server's* clock (icb_elapsed_seconds) so a
    // slow scrape cannot distort them.
    let mut last: Option<(f64, f64)> = None; // (elapsed, executions)
    let mut rates: Vec<f64> = Vec::new();
    let mut connected = false;
    loop {
        let body = match scrape(addr.as_str()) {
            Ok(body) => body,
            Err(e) if connected => {
                println!("metrics endpoint gone ({e}); run finished?");
                return Ok(());
            }
            Err(e) => return Err(format!("cannot scrape {addr}: {e}")),
        };
        connected = true;
        let parsed = parse_exposition(&body);
        let elapsed = series_value(&parsed, "icb_elapsed_seconds").unwrap_or(0.0);
        let executions = series_value(&parsed, "icb_executions_total").unwrap_or(0.0);
        if let Some((prev_elapsed, prev_execs)) = last {
            let dt = elapsed - prev_elapsed;
            if dt > 0.0 {
                rates.push((executions - prev_execs).max(0.0) / dt);
                if rates.len() > 32 {
                    rates.remove(0);
                }
            }
        }
        last = Some((elapsed, executions));
        let frame = render_top_frame(&parsed, &rates);
        if once {
            print!("{frame}");
            return Ok(());
        }
        // Clear + home, then the frame: a flicker-free refresh without
        // pulling in a terminal library.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

/// Extracts the first reported witness schedule from a `--telemetry`
/// JSONL log (the `"schedule":[…]` field of its first `bug-found`
/// event).
fn schedule_from_jsonl(text: &str) -> Result<Schedule, String> {
    let line = text
        .lines()
        .find(|l| l.contains("\"event\":\"bug-found\""))
        .ok_or("log contains no bug-found event")?;
    let start = line
        .find("\"schedule\":[")
        .ok_or("bug-found event carries no schedule")?
        + "\"schedule\":[".len();
    let body = &line[start..];
    let end = body.find(']').ok_or("unterminated schedule array")?;
    body[..end]
        .parse::<Schedule>()
        .map_err(|e| format!("corrupt schedule in bug-found event: {e}"))
}

/// A filesystem-friendly slug of a benchmark name (`Work Stealing Q.` →
/// `work-stealing-q`).
fn slugify(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

/// Writes one bundle artifact, mapping IO errors to a CLI message.
fn write_artifact(dir: &Path, name: &str, contents: &str) -> Result<(), String> {
    let path = dir.join(name);
    std::fs::write(&path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("missing benchmark name")?;
    if name.starts_with("--") {
        return Err(
            "missing benchmark name (explain needs a workload, even with --from, \
                    to rebuild the program for replay)"
                .into(),
        );
    }
    let bench = find_benchmark(name)?;
    // Explaining needs a failing program: unlike `run`, an omitted --bug
    // selects the benchmark's first registered bug rather than the
    // correct implementation.
    let bug_name = match flag_value(args, "--bug") {
        Some(b) => Some(b.to_string()),
        None => bench.bugs.first().map(|b| b.name.to_string()),
    };
    let bug_name = bug_name.ok_or_else(|| {
        format!(
            "{} has no registered bugs; pass --bug to pick a failing variant",
            bench.name
        )
    })?;
    let program = build_program(&bench, Some(&bug_name))?;
    let title = format!("{} --bug {}", bench.name, bug_name);

    let registry = MetricsRegistry::new();
    let mut profiler = ExplorationProfiler::new();
    let (witness_schedule, reported_preemptions) = match flag_value(args, "--from") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            println!("explaining first witness recorded in {path}…");
            (schedule_from_jsonl(&text)?, None)
        }
        None => {
            let budget: usize = match flag_value(args, "--budget") {
                Some(v) => v.parse().map_err(|_| "invalid --budget")?,
                None => 200_000,
            };
            let bound: Option<usize> = match flag_value(args, "--bound") {
                Some(v) => Some(v.parse().map_err(|_| "invalid --bound")?),
                None => None,
            };
            let strat = flag_value(args, "--strategy").unwrap_or("icb");
            let strategy = parse_strategy(strat)?;
            let jobs = parse_jobs(args)?;
            println!("exploring {title} with {strat}…");
            let report = Search::over(&program)
                .strategy(strategy)
                .config(SearchConfig {
                    max_executions: Some(budget),
                    preemption_bound: bound,
                    fault_bound: parse_fault_bound(args)?,
                    stop_on_first_bug: true,
                    ..SearchConfig::default()
                })
                .jobs(jobs)
                .observer(&mut profiler)
                .run()
                .map_err(|e| e.to_string())?;
            let bug = report
                .first_bug()
                .ok_or_else(|| format!("no bug found in {} executions", report.executions))?;
            (bug.schedule.clone(), Some(bug.preemptions))
        }
    };

    let witness = ExplainedWitness::explain_with_metrics(&program, &witness_schedule, &registry);
    if let Some(min) = reported_preemptions {
        // ICB's headline guarantee: the witness the search reports is
        // already preemption-minimal, and shrinking must preserve that.
        if witness.preemptions != min {
            eprintln!(
                "note: shrunk witness has {} preemption(s), search reported {min} \
                 (expected only under non-ICB strategies)",
                witness.preemptions
            );
        }
    }

    let wrap: usize = match flag_value(args, "--wrap") {
        Some(v) => v.parse().map_err(|_| "invalid --wrap")?,
        None => 120,
    };
    let out_dir = flag_value(args, "--out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("explain-{}", slugify(bench.name)));
    let dir = Path::new(&out_dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;

    let graph = CausalGraph::from_execution(&witness.trace, &witness.outcome);
    let mut chrome = ChromeTrace::new().add_execution(&witness.trace, &witness.outcome);
    if args.iter().any(|a| a == "--timings") {
        chrome = chrome.add_phases(&profiler.phase_totals());
    }
    let mut explanation = witness.to_markdown(&title);
    explanation.push_str(
        "\n## Bundle contents\n\n\
         | file | contents |\n|------|----------|\n\
         | `witness.json` | the shrunk schedule with per-step site attribution and enabled sets |\n\
         | `lanes.txt` | per-thread lane rendering of the failing execution |\n\
         | `hb.dot` / `hb.json` | the happens-before causal graph (Graphviz / JSON) |\n\
         | `trace.chrome.json` | Chrome trace-event timeline (open in Perfetto or chrome://tracing) |\n",
    );

    write_artifact(dir, "witness.json", &witness.to_json())?;
    write_artifact(
        dir,
        "lanes.txt",
        &format!("{}\n", render::lanes_wrapped(&witness.trace, wrap)),
    )?;
    write_artifact(dir, "hb.dot", &graph.to_dot())?;
    write_artifact(dir, "hb.json", &graph.to_json())?;
    write_artifact(dir, "trace.chrome.json", &chrome.render())?;
    write_artifact(dir, "EXPLANATION.md", &explanation)?;

    println!("outcome: {}", witness.outcome);
    // The fault clause appears only on faulted witnesses, keeping
    // fault-free output byte-identical to older releases.
    let faults = if witness.faults > 0 {
        format!("{} injected fault(s), ", witness.faults)
    } else {
        String::new()
    };
    println!(
        "witness: {} ({} preemption(s), {faults}{} steps, shrunk in {} replays)",
        witness.schedule,
        witness.preemptions,
        witness.trace.len(),
        witness.shrink_replays,
    );
    println!(
        "bundle: {} (witness.json, lanes.txt, hb.dot, hb.json, trace.chrome.json, EXPLANATION.md)",
        dir.display()
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("missing benchmark name")?;
    let bench = find_benchmark(name)?;
    let program = build_program(&bench, flag_value(args, "--bug"))?;
    let schedule: Schedule = flag_value(args, "--schedule")
        .ok_or("missing --schedule")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let mut replay = ReplayScheduler::new(schedule);

    // A replay is a one-execution "search": when --telemetry is given,
    // wrap the execution in the usual event grammar so `explore report`
    // can digest the log like any other run. Profile events are always
    // on — a single replay is exactly when per-step detail is cheap.
    let result = match open_jsonl(args, true)? {
        Some(mut sink) => {
            let mut coverage = CoverageTracker::new();
            sink.search_started("replay");
            sink.execution_started(1);
            let result = program.execute_observed(&mut replay, &mut coverage, &mut sink);
            coverage.end_execution();
            sink.execution_finished(
                1,
                &result.stats,
                &result.outcome,
                coverage.distinct_states(),
            );
            let buggy = result.outcome.is_bug();
            sink.search_finished(&SearchReport {
                strategy: "replay".to_string(),
                executions: 1,
                distinct_states: coverage.distinct_states(),
                coverage_curve: coverage.into_curve(),
                buggy_executions: usize::from(buggy),
                max_stats: result.stats,
                ..SearchReport::default()
            });
            close_jsonl(sink);
            result
        }
        None => program.execute(&mut replay, &mut NullSink),
    };
    println!("outcome: {}", result.outcome);
    println!(
        "steps: {}, preemptions: {}",
        result.stats.steps, result.stats.preemptions
    );
    println!();
    println!("{}", render::lanes(&result.trace));
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let markdown = args.iter().any(|a| a == "--markdown");
    let stitch = args.iter().any(|a| a == "--stitch");
    let top: usize = match flag_value(args, "--top") {
        Some(v) => v.parse().map_err(|_| "invalid --top")?,
        None => 10,
    };
    // Everything that is not a flag (or a flag's value) is a log path.
    let mut paths: Vec<&str> = Vec::new();
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
            continue;
        }
        match arg.as_str() {
            "--markdown" | "--stitch" => {}
            "--top" => skip = true,
            other => paths.push(other),
        }
    }
    if paths.is_empty() {
        return Err("missing telemetry log path (expected `explore report <run.jsonl>...`)".into());
    }
    let mut runs: Vec<RunReport> = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        runs.push(RunReport::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    if stitch {
        // Segments are passed oldest-first; the stitched report covers
        // the whole resumed run as if it had never been interrupted.
        let merged = RunReport::stitch(&runs).ok_or("nothing to stitch")?;
        runs = vec![merged];
    }
    let rendered = if markdown {
        render_markdown(&runs, top)
    } else {
        render_text(&runs, top)
    };
    print!("{rendered}");
    Ok(())
}

/// Every program the registry can build, with its cache identity —
/// used to label the opaque program-id directories of a cache.
fn known_programs() -> Vec<(u64, String)> {
    let mut out = Vec::new();
    for bench in all_benchmarks() {
        let program = (bench.correct)();
        out.push((
            program_identity(bench.name, None, &program),
            bench.name.to_string(),
        ));
        for bug in &bench.bugs {
            let program = (bug.build)();
            out.push((
                program_identity(bench.name, Some(bug.name), &program),
                format!("{} --bug \"{}\"", bench.name, bug.name),
            ));
        }
    }
    out
}

fn cmd_cache(args: &[String]) -> Result<(), String> {
    let sub = args
        .first()
        .map(String::as_str)
        .ok_or("missing cache subcommand (stats|ls|gc|invalidate)")?;
    let dir = args.get(1).ok_or("missing cache directory")?;
    let root = Path::new(dir);
    let label_of = |id: u64, labels: &[(u64, String)]| {
        labels
            .iter()
            .find(|(known, _)| *known == id)
            .map_or_else(|| "(unknown program)".to_string(), |(_, l)| l.clone())
    };
    match sub {
        "ls" => {
            let labels = known_programs();
            let programs = icb_cache::list_programs(root).map_err(|e| e.to_string())?;
            if programs.is_empty() {
                println!("cache {dir} is empty");
            }
            for p in programs {
                println!(
                    "{:016x}  {} segment(s), {} byte(s)  {}",
                    p.program_id,
                    p.segments,
                    p.bytes,
                    label_of(p.program_id, &labels)
                );
            }
            Ok(())
        }
        "stats" => {
            let labels = known_programs();
            let programs = icb_cache::list_programs(root).map_err(|e| e.to_string())?;
            if programs.is_empty() {
                println!("cache {dir} is empty");
            }
            for p in programs {
                let store = CacheStore::open(root, p.program_id).map_err(|e| {
                    format!("cannot open cached program {:016x}: {e}", p.program_id)
                })?;
                let stats = store.stats();
                println!("{:016x}  {}", p.program_id, label_of(p.program_id, &labels));
                println!(
                    "    {} subtree entries, {} seed states, {} certification(s)",
                    stats.entries,
                    stats.seeds,
                    stats.certifications.len()
                );
                for cert in &stats.certifications {
                    let faults = if cert.fault_bound > 0 {
                        format!(", fault bound <= {}", cert.fault_bound)
                    } else {
                        String::new()
                    };
                    println!(
                        "    certified bug-free: strategy {}, bound {}{faults}, {} executions, {} states",
                        cert.strategy,
                        cert.bound
                            .map_or_else(|| "exhaustive".to_string(), |b| format!("<= {b}")),
                        cert.executions,
                        cert.distinct_states,
                    );
                }
            }
            Ok(())
        }
        "gc" => {
            let (kept, removed) = icb_cache::gc(root).map_err(|e| e.to_string())?;
            println!("kept {kept} program(s), removed {removed} unreadable segment(s)");
            Ok(())
        }
        "invalidate" => {
            let name = args.get(2).ok_or("missing benchmark name")?;
            let bench = find_benchmark(name)?;
            let bug = flag_value(args, "--bug");
            let program = build_program(&bench, bug)?;
            let id = program_identity(bench.name, bug, &program);
            if icb_cache::invalidate(root, id).map_err(|e| e.to_string())? {
                println!("invalidated {id:016x} ({name})");
            } else {
                println!("nothing cached for {id:016x} ({name})");
            }
            Ok(())
        }
        other => Err(format!(
            "unknown cache subcommand `{other}` (expected stats|ls|gc|invalidate)"
        )),
    }
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("missing benchmark name")?;
    let bench = find_benchmark(name)?;
    let model = bench
        .vm_model
        .ok_or_else(|| format!("{} has no VM model", bench.name))?();
    let stats = model.stats();
    println!(
        "; {} threads, {} shared / {} blocking / {} local instructions",
        stats.threads,
        stats.shared_instructions,
        stats.blocking_instructions,
        stats.local_instructions
    );
    println!("{}", model.disasm());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(series: &[(&str, f64)]) -> Vec<(String, f64)> {
        series.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn top_frame_shows_bound_eta_and_workers() {
        let parsed = page(&[
            ("icb_info{strategy=\"icb\"}", 1.0),
            ("icb_elapsed_seconds", 12.5),
            ("icb_executions_total", 5000.0),
            ("icb_distinct_states", 1200.0),
            ("icb_bugs_reported_total", 0.0),
            ("icb_current_bound", 2.0),
            ("icb_bound_executions", 800.0),
            ("icb_work_queue_depth", 40.0),
            ("icb_work_items_deferred_total", 90.0),
            ("icb_eta_seconds", 33.25),
            ("icb_workers", 2.0),
            ("icb_frontier_queue_depth", 7.0),
            ("icb_frontier_pop_waits_total", 3.0),
            ("icb_steal_donations_total", 1.0),
            ("icb_pump_channel_depth", 2.0),
            ("icb_worker_busy_seconds_total{worker=\"0\"}", 9.0),
            ("icb_worker_idle_seconds_total{worker=\"0\"}", 3.0),
            ("icb_worker_executions_total{worker=\"0\"}", 2600.0),
            ("icb_worker_busy_seconds_total{worker=\"1\"}", 6.0),
            ("icb_worker_idle_seconds_total{worker=\"1\"}", 6.0),
            ("icb_worker_executions_total{worker=\"1\"}", 2400.0),
        ]);
        let frame = render_top_frame(&parsed, &[100.0, 200.0, 400.0]);
        assert!(frame.contains("[icb]"), "{frame}");
        assert!(frame.contains("5000 execs (400/s)"), "{frame}");
        assert!(frame.contains("bound 2: 800 execs, queue 40"), "{frame}");
        assert!(frame.contains("eta 33.2s"), "{frame}");
        assert!(frame.contains("w0 [███████████████·····]  75%"), "{frame}");
        assert!(frame.contains("w1 [██████████··········]  50%"), "{frame}");
        assert!(frame.contains("throughput ▃▅█"), "{frame}");
    }

    #[test]
    fn top_frame_degrades_to_a_single_line_for_a_bare_page() {
        // Before the search reaches its first bound (or for a non-ICB
        // strategy) most series are absent: the frame must still render.
        let parsed = page(&[
            ("icb_info{strategy=\"random\"}", 1.0),
            ("icb_elapsed_seconds", 0.5),
            ("icb_executions_total", 10.0),
            ("icb_distinct_states", 4.0),
            ("icb_workers", 1.0),
        ]);
        let frame = render_top_frame(&parsed, &[]);
        assert!(frame.contains("[random]"), "{frame}");
        // Rate falls back to cumulative executions over server elapsed.
        assert!(frame.contains("(20/s)"), "{frame}");
        assert_eq!(frame.lines().count(), 1, "{frame}");
    }

    #[test]
    fn infinite_eta_is_labelled_not_printed_raw() {
        let parsed = page(&[
            ("icb_info{strategy=\"icb\"}", 1.0),
            ("icb_elapsed_seconds", 1.0),
            ("icb_executions_total", 50.0),
            ("icb_current_bound", 4.0),
            ("icb_eta_seconds", f64::INFINITY),
        ]);
        let frame = render_top_frame(&parsed, &[]);
        assert!(frame.contains("beyond the Theorem-1 horizon"), "{frame}");
        assert!(!frame.contains("inf"), "{frame}");
    }

    #[test]
    fn sparkline_scales_to_the_window_maximum() {
        assert_eq!(sparkline(&[0.0, 50.0, 100.0]), "▁▅█");
        assert_eq!(sparkline(&[]), "");
        // An all-zero window stays flat instead of dividing by zero.
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
    }

    #[test]
    fn utilization_bar_clamps() {
        assert_eq!(utilization_bar(0.0, 4), "[····]");
        assert_eq!(utilization_bar(0.5, 4), "[██··]");
        assert_eq!(utilization_bar(7.5, 4), "[████]");
    }
}
