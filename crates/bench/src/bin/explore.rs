//! `explore` — the command-line front door to the checkers.
//!
//! ```text
//! explore list
//! explore run <benchmark> [--bug <name>] [--strategy icb|dfs|random|best-first]
//!             [--bound N] [--budget N] [--shrink]
//!             [--telemetry jsonl:<path>] [--progress]
//! explore replay <benchmark> [--bug <name>] --schedule "T0 T1 T1 …"
//! explore disasm <benchmark>
//! ```
//!
//! `--telemetry jsonl:<path>` streams every search event as one JSON
//! object per line to `<path>`; `--progress` prints a rate-limited live
//! status line (with a Theorem-1 ETA) to stderr. Both can be combined.
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p icb-bench --bin explore -- list
//! cargo run --release -p icb-bench --bin explore -- run "Bluetooth" --bug check-then-increment
//! cargo run --release -p icb-bench --bin explore -- run "Work Stealing Q." --strategy random --budget 5000
//! cargo run --release -p icb-bench --bin explore -- run "Bluetooth" --telemetry jsonl:events.jsonl --progress
//! cargo run --release -p icb-bench --bin explore -- disasm "Transaction Manager"
//! ```

use std::io::BufWriter;
use std::process::ExitCode;

use icb_core::search::{
    BestFirstSearch, DfsSearch, IcbSearch, RandomSearch, SearchConfig, SearchStrategy,
};
use icb_core::{render, shrink, ControlledProgram, NullSink, ReplayScheduler, Schedule};
use icb_telemetry::{JsonlSink, MultiObserver, ProgressReporter};
use icb_workloads::registry::{all_benchmarks, AnyProgram, BenchmarkInfo};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  explore list");
            eprintln!(
                "  explore run <benchmark> [--bug <name>] [--strategy icb|dfs|random|best-first]"
            );
            eprintln!("              [--bound N] [--budget N] [--shrink]");
            eprintln!("              [--telemetry jsonl:<path>] [--progress]");
            eprintln!("  explore replay <benchmark> [--bug <name>] --schedule \"T0 T1 ...\"");
            eprintln!("  explore disasm <benchmark>");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            Ok(())
        }
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        other => Err(match other {
            Some(cmd) => format!("unknown command `{cmd}`"),
            None => "missing command".to_string(),
        }),
    }
}

fn list() {
    for bench in all_benchmarks() {
        println!("{} ({} threads)", bench.name, bench.paper_threads);
        for bug in &bench.bugs {
            println!(
                "    --bug \"{}\" (expected bound {})",
                bug.name, bug.expected_bound
            );
        }
    }
}

fn find_benchmark(name: &str) -> Result<BenchmarkInfo, String> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark `{name}` (see `explore list`)"))
}

fn build_program(bench: &BenchmarkInfo, bug: Option<&str>) -> Result<AnyProgram, String> {
    match bug {
        None => Ok((bench.correct)()),
        Some(name) => bench
            .bugs
            .iter()
            .find(|b| b.name.eq_ignore_ascii_case(name))
            .map(|b| (b.build)())
            .ok_or_else(|| format!("unknown bug `{name}` for {}", bench.name)),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("missing benchmark name")?;
    let bench = find_benchmark(name)?;
    let program = build_program(&bench, flag_value(args, "--bug"))?;

    let budget: usize = match flag_value(args, "--budget") {
        Some(v) => v.parse().map_err(|_| "invalid --budget")?,
        None => 200_000,
    };
    let bound: Option<usize> = match flag_value(args, "--bound") {
        Some(v) => Some(v.parse().map_err(|_| "invalid --bound")?),
        None => None,
    };
    let config = SearchConfig {
        max_executions: Some(budget),
        preemption_bound: bound,
        stop_on_first_bug: true,
        ..SearchConfig::default()
    };
    let strategy: Box<dyn SearchStrategy> = match flag_value(args, "--strategy").unwrap_or("icb") {
        "icb" => Box::new(IcbSearch::new(config)),
        "dfs" => Box::new(DfsSearch::new(config)),
        "random" => Box::new(RandomSearch::new(config, 0x1cb)),
        "best-first" => Box::new(BestFirstSearch::new(config)),
        other => return Err(format!("unknown strategy `{other}`")),
    };

    // Optional observers: a JSONL event stream and/or live progress.
    let mut jsonl = match flag_value(args, "--telemetry") {
        Some(spec) => {
            let path = spec
                .strip_prefix("jsonl:")
                .ok_or("unsupported --telemetry sink (expected jsonl:<path>)")?;
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            Some(JsonlSink::new(BufWriter::new(file)))
        }
        None => None,
    };
    let mut progress = args.iter().any(|a| a == "--progress").then(|| {
        // n from the registry; b ≈ one blocking step (termination) per
        // thread — good enough for an order-of-magnitude ETA.
        let n = bench.paper_threads as u64;
        ProgressReporter::stderr().with_theorem1(n, n)
    });
    let mut observers = MultiObserver::new();
    if let Some(sink) = jsonl.as_mut() {
        observers.push(sink);
    }
    if let Some(reporter) = progress.as_mut() {
        observers.push(reporter);
    }

    println!("exploring {} with {}…", bench.name, strategy.name());
    let report = strategy.search_observed(&program, &mut observers);
    drop(observers);
    if let Some(sink) = jsonl {
        if sink.failed() {
            eprintln!("warning: telemetry stream hit a write error; events were dropped");
        }
        drop(sink.into_inner()); // flush the BufWriter
    }
    println!("{report}");
    if let Some(bug) = report.first_bug() {
        println!();
        println!("witness: {}", bug.schedule);
        let schedule = if args.iter().any(|a| a == "--shrink") {
            let shrunk = shrink::minimize_witness(&program, &bug.schedule);
            println!(
                "shrunk to {} forced choice(s) in {} replays: {}",
                shrunk.schedule.len(),
                shrunk.replays,
                shrunk.schedule
            );
            bug.schedule.clone()
        } else {
            bug.schedule.clone()
        };
        let mut replay = ReplayScheduler::new(schedule);
        let result = program.execute(&mut replay, &mut NullSink);
        println!();
        println!("{}", render::lanes(&result.trace));
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("missing benchmark name")?;
    let bench = find_benchmark(name)?;
    let program = build_program(&bench, flag_value(args, "--bug"))?;
    let schedule: Schedule = flag_value(args, "--schedule")
        .ok_or("missing --schedule")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let mut replay = ReplayScheduler::new(schedule);
    let result = program.execute(&mut replay, &mut NullSink);
    println!("outcome: {}", result.outcome);
    println!(
        "steps: {}, preemptions: {}",
        result.stats.steps, result.stats.preemptions
    );
    println!();
    println!("{}", render::lanes(&result.trace));
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("missing benchmark name")?;
    let bench = find_benchmark(name)?;
    let model = bench
        .vm_model
        .ok_or_else(|| format!("{} has no VM model", bench.name))?();
    let stats = model.stats();
    println!(
        "; {} threads, {} shared / {} blocking / {} local instructions",
        stats.threads,
        stats.shared_instructions,
        stats.blocking_instructions,
        stats.local_instructions
    );
    println!("{}", model.disasm());
    Ok(())
}
