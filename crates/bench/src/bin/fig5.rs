//! Regenerates the paper's fig5. See `icb_bench::experiments`.
fn main() {
    icb_bench::experiments::fig5();
}
