//! The live metrics registry, re-exported from `icb-core`.
//!
//! The registry type itself lives in `icb_core::metrics` so the search
//! drivers, the [`Frontier`](icb_core::search::Frontier) and the cache
//! table can feed it without a dependency on this crate. The telemetry
//! crate is where the registry becomes *visible*: [`render_prometheus`]
//! (crate::render_prometheus) turns it into a text-exposition page and
//! [`MetricsServer`](crate::MetricsServer) serves that page over HTTP.
//!
//! A typical wiring, mirroring what `explore run --serve-metrics` does:
//!
//! ```no_run
//! use std::sync::Arc;
//! use icb_core::MetricsRegistry;
//! use icb_telemetry::MetricsServer;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
//! println!("metrics at http://{}/metrics", server.addr());
//! // ... Search::over(&program).metrics(Arc::clone(&registry)).run() ...
//! server.shutdown();
//! ```

pub use icb_core::metrics::{CACHE_SHARDS, MAX_WORKERS, STEP_BUCKETS};
pub use icb_core::{MetricsBridge, MetricsRegistry, MetricsSnapshot, WorkerStats};
